"""Shim for legacy editable installs (offline environments without the
``wheel`` package cannot use PEP 517 editable wheels)."""

from setuptools import setup

setup()
