"""Tests for templates, the miner and the block parser (static patterns)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticparse import (
    BlockParser,
    Template,
    TemplateMiner,
    VAR_MARK,
    mine_templates,
)


class TestTemplate:
    def test_display(self):
        t = Template(0, ["write", "to", None])
        assert t.display() == f"write to {VAR_MARK}"

    def test_matches(self):
        t = Template(0, ["a", None, "c"])
        assert t.matches(["a", "x", "c"])
        assert not t.matches(["a", "x", "d"])
        assert not t.matches(["a", "x"])

    def test_extract_render_roundtrip(self):
        t = Template(0, ["a", None, "c", None])
        tokens = ["a", "V1", "c", "V2"]
        values = t.extract(tokens)
        assert values == ["V1", "V2"]
        assert t.render(values) == "a V1 c V2"

    def test_render_wrong_arity(self):
        t = Template(0, ["a", None])
        with pytest.raises(ValueError):
            t.render([])

    def test_match_score(self):
        t = Template(0, ["a", None, "c"])
        assert t.match_score(["a", "x", "c"]) == 2
        assert t.match_score(["b", "x", "c"]) == -1

    def test_all_variable_template(self):
        t = Template(0, [None, None])
        assert t.num_variables == 2
        assert t.matches(["anything", "goes"])


class TestMiner:
    def test_merges_digit_variants(self):
        miner = TemplateMiner()
        miner.observe(["job", "42", "done"])
        miner.observe(["job", "43", "done"])
        templates = miner.templates()
        assert len(templates) == 1
        assert templates[0].tokens == ["job", None, "done"]

    def test_keeps_distinct_shapes_apart(self):
        miner = TemplateMiner()
        miner.observe(["connect", "from", "10.0.0.1"])
        miner.observe(["disk", "full", "warning"])
        assert len(miner.templates()) == 2

    def test_token_count_buckets(self):
        miner = TemplateMiner()
        miner.observe(["a", "b"])
        miner.observe(["a", "b", "c"])
        assert len(miner.templates()) == 2

    def test_similarity_threshold_validation(self):
        with pytest.raises(ValueError):
            TemplateMiner(similarity=0.0)

    def test_mine_templates_samples(self):
        lines = [f"req {i} ok" for i in range(500)]
        templates = mine_templates(lines, sample_rate=0.05, seed=1)
        assert len(templates) == 1
        assert templates[0].tokens == ["req", None, "ok"]


class TestBlockParser:
    def test_groups_and_vectors(self, mixed_lines):
        parsed = BlockParser().parse(mixed_lines)
        assert sum(g.num_entries for g in parsed.groups) == len(mixed_lines)
        for group in parsed.groups:
            for vector in group.variable_vectors:
                assert len(vector) == group.num_entries

    def test_exact_reconstruction(self, mixed_lines):
        parsed = BlockParser().parse(mixed_lines)
        rebuilt = {}
        for group in parsed.groups:
            for row, line_id in enumerate(group.line_ids):
                rebuilt[line_id] = group.render_entry(row)
        assert [rebuilt[i] for i in range(len(mixed_lines))] == mixed_lines

    def test_line_ids_increasing_within_group(self, mixed_lines):
        parsed = BlockParser().parse(mixed_lines)
        for group in parsed.groups:
            assert group.line_ids == sorted(group.line_ids)

    def test_unsampled_shapes_still_parsed(self):
        # One exotic line that a 5% sample will likely miss.
        lines = [f"metric {i} recorded" for i in range(400)]
        lines.append("PANIC unexpected shutdown in module 7 now")
        parsed = BlockParser(sample_rate=0.05, seed=0).parse(lines)
        assert sum(g.num_entries for g in parsed.groups) == len(lines)

    def test_empty_block(self):
        parsed = BlockParser().parse([])
        assert parsed.groups == []
        assert parsed.num_lines == 0

    def test_empty_lines_parse(self):
        parsed = BlockParser().parse(["", "", "x y"])
        assert sum(g.num_entries for g in parsed.groups) == 3

    def test_deterministic(self, mixed_lines):
        a = BlockParser(seed=5).parse(mixed_lines)
        b = BlockParser(seed=5).parse(mixed_lines)
        assert [g.template.tokens for g in a.groups] == [
            g.template.tokens for g in b.groups
        ]

    @settings(max_examples=25)
    @given(
        st.lists(
            st.sampled_from(
                ["put 1 ok", "put 2 ok", "get 9 miss", "node down", "node up"]
            ),
            max_size=40,
        )
    )
    def test_reconstruction_property(self, lines):
        parsed = BlockParser().parse(lines)
        rebuilt = {}
        for group in parsed.groups:
            for row, line_id in enumerate(group.line_ids):
                rebuilt[line_id] = group.render_entry(row)
        assert [rebuilt[i] for i in range(len(lines))] == lines

    def test_group_for(self, mixed_lines):
        parsed = BlockParser().parse(mixed_lines)
        first = parsed.groups[0]
        assert parsed.group_for(first.template.template_id) is first
        with pytest.raises(KeyError):
            parsed.group_for(999999)


class TestSlctMiner:
    def test_frequent_tokens_are_static(self):
        from repro.staticparse.slct import SlctMiner

        miner = SlctMiner(support_fraction=0.5)
        for i in range(40):
            miner.observe(["job", str(i), "done"])
        templates = miner.templates()
        assert len(templates) == 1
        assert templates[0].tokens == ["job", None, "done"]

    def test_distinct_shapes_stay_apart(self):
        from repro.staticparse.slct import SlctMiner

        miner = SlctMiner()
        for i in range(30):
            miner.observe(["put", str(i), "ok"])
            miner.observe(["get", str(i), "ok"])
        displays = {t.display() for t in miner.templates()}
        assert displays == {"put <*> ok", "get <*> ok"}

    def test_support_validation(self):
        from repro.staticparse.slct import SlctMiner

        import pytest as _pytest

        with _pytest.raises(ValueError):
            SlctMiner(support_fraction=0.0)

    def test_blockparser_slct_roundtrip(self, mixed_lines):
        parsed = BlockParser(miner="slct").parse(mixed_lines)
        rebuilt = {}
        for group in parsed.groups:
            for row, line_id in enumerate(group.line_ids):
                rebuilt[line_id] = group.render_entry(row)
        assert [rebuilt[i] for i in range(len(mixed_lines))] == mixed_lines

    def test_unknown_miner_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            BlockParser(miner="magic")
