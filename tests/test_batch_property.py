"""Property tests for the shared-scan batch executor.

The invariant: for ANY mix of grep/count/aggregate plans, ANY admission
interleaving and ANY warm/cold fragment-cache state — including across a
concurrent ``lifecycle demote`` generation bump — batched execution is
result-identical to sequential execution.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LogGrep, LogGrepConfig
from repro.query.aggregate import AggregateSpec
from repro.query.modes import AggregateKind
from repro.query.plan import (
    OutputMode,
    build_aggregate_plan,
    build_plan,
)
from tests.conftest import make_mixed_lines

QUERIES = [
    "ERROR",
    "read",
    "state: ERR",
    "code=3",
    "ERROR OR read",
    "read NOT bk.0F",
    "bk.?F.1*",
    "no-such-needle-xyz",
]

SPECS = [
    AggregateSpec(AggregateKind.COUNT_BY, "2"),
    AggregateSpec(AggregateKind.TOP_K, "2", k=3),
]


@st.composite
def plan_mixes(draw):
    """A random batch: (kind, query) pairs over the shared vocabulary."""
    n = draw(st.integers(min_value=1, max_value=6))
    mix = []
    for _ in range(n):
        kind = draw(st.sampled_from(["lines", "count", "aggregate"]))
        query = draw(st.sampled_from(QUERIES))
        spec = draw(st.sampled_from(SPECS))
        mix.append((kind, query, spec))
    return mix


def build(kind, query, spec):
    if kind == "lines":
        return build_plan(query, OutputMode.LINES)
    if kind == "count":
        return build_plan(query, OutputMode.COUNT)
    return build_aggregate_plan(
        spec, None if query == "no-such-needle-xyz" else query
    )


def outcome(plan, result):
    """A comparable projection of one ExecutionResult."""
    if plan.aggregate is not None:
        partial = result.aggregate
        return (
            "agg",
            partial.finalize(plan.aggregate) if partial else None,
            result.count,
        )
    if plan.mode is OutputMode.COUNT:
        return ("count", result.count)
    return ("lines", result.entries)


class TestBatchProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan_mixes(), st.integers(min_value=0, max_value=10_000))
    def test_batched_equals_sequential(self, mix, seed):
        lines = make_mixed_lines(250, seed=seed % 7)
        lg = LogGrep(config=LogGrepConfig(block_bytes=2 * 1024))
        lg.compress(lines)
        plans = [build(*entry) for entry in mix]
        want = [outcome(p, lg._executor.run(p)) for p in plans]
        # Any admission interleaving: batches are order-insensitive, so
        # executing a shuffled batch and unshuffling must change nothing.
        order = list(range(len(plans)))
        random.Random(seed).shuffle(order)
        results, _ = lg.batch_executor.run_batch([plans[i] for i in order])
        got = [None] * len(plans)
        for pos, i in enumerate(order):
            got[i] = outcome(plans[i], results[pos])
        assert got == want
        # Warm rerun (fragment cache fully populated) stays identical.
        rerun, _ = lg.batch_executor.run_batch(plans)
        assert [outcome(p, r) for p, r in zip(plans, rerun)] == want

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan_mixes(), st.sampled_from(["warm", "cold"]))
    def test_batched_equals_sequential_across_demote(self, mix, tier_name):
        """A lifecycle demotion between two batches rewrites blocks in
        place; the generation bump must keep the second batch exact."""
        from repro.core.lifecycle import LifecycleManager, Tier

        lines = make_mixed_lines(250, seed=23)
        lg = LogGrep(config=LogGrepConfig(block_bytes=2 * 1024))
        lg.compress(lines)
        plans = [build(*entry) for entry in mix]
        # Warm the fragment cache pre-demotion.
        lg.batch_executor.run_batch(plans)
        manager = LifecycleManager(lg.store, lg.config)
        manager.demote(Tier(tier_name))
        # Same store, same (now stale-keyed) fragment cache.
        reader = LogGrep(
            store=lg.store, config=lg.config, fragments=lg.fragments
        )
        want = [outcome(p, reader._executor.run(p)) for p in plans]
        results, _ = reader.batch_executor.run_batch(plans)
        assert [outcome(p, r) for p, r in zip(plans, results)] == want
