"""Round-trip tests for the binary record I/O."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.binio import BinaryReader, BinaryWriter
from repro.common.errors import FormatError


class TestScalars:
    def test_u8_u32_u64(self):
        w = BinaryWriter()
        w.write_u8(200)
        w.write_u32(1 << 30)
        w.write_u64(1 << 60)
        r = BinaryReader(w.getvalue())
        assert r.read_u8() == 200
        assert r.read_u32() == 1 << 30
        assert r.read_u64() == 1 << 60
        assert r.at_end()

    @given(st.integers(min_value=0, max_value=(1 << 63) - 1))
    def test_varint_roundtrip(self, value):
        w = BinaryWriter()
        w.write_varint(value)
        assert BinaryReader(w.getvalue()).read_varint() == value

    def test_varint_negative_rejected(self):
        with pytest.raises(ValueError):
            BinaryWriter().write_varint(-1)

    def test_varint_small_is_one_byte(self):
        w = BinaryWriter()
        w.write_varint(100)
        assert len(w.getvalue()) == 1


class TestComposites:
    @given(st.binary(max_size=200))
    def test_bytes_roundtrip(self, data):
        w = BinaryWriter()
        w.write_bytes(data)
        assert BinaryReader(w.getvalue()).read_bytes() == data

    @given(st.text(max_size=100))
    def test_str_roundtrip(self, text):
        w = BinaryWriter()
        w.write_str(text)
        assert BinaryReader(w.getvalue()).read_str() == text

    @given(st.lists(st.text(max_size=20), max_size=20))
    def test_str_list_roundtrip(self, items):
        w = BinaryWriter()
        w.write_str_list(items)
        assert BinaryReader(w.getvalue()).read_str_list() == items

    @given(st.lists(st.integers(min_value=0, max_value=1 << 31), max_size=30))
    def test_u32_list_roundtrip(self, items):
        w = BinaryWriter()
        w.write_u32_list(items)
        assert BinaryReader(w.getvalue()).read_u32_list() == items

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 32) - 1), max_size=50))
    def test_u32_array_roundtrip(self, items):
        w = BinaryWriter()
        w.write_u32_array(items)
        assert BinaryReader(w.getvalue()).read_u32_array() == items

    def test_interleaved_sequence(self):
        w = BinaryWriter()
        w.write_str("hello")
        w.write_varint(7)
        w.write_u32_array([1, 2, 3])
        w.write_bytes(b"\x00\xff")
        r = BinaryReader(w.getvalue())
        assert r.read_str() == "hello"
        assert r.read_varint() == 7
        assert r.read_u32_array() == [1, 2, 3]
        assert r.read_bytes() == b"\x00\xff"


class TestErrors:
    def test_truncated_read(self):
        with pytest.raises(FormatError):
            BinaryReader(b"\x01").read_u32()

    def test_runaway_varint(self):
        with pytest.raises(FormatError):
            BinaryReader(b"\xff" * 11).read_varint()

    def test_remaining(self):
        r = BinaryReader(b"abcd")
        assert r.remaining() == 4
        r.read_u8()
        assert r.remaining() == 3
