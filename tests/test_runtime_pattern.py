"""Tests for the runtime-pattern model (§2.3, §4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.binio import BinaryReader, BinaryWriter
from repro.runtime.pattern import (
    Const,
    RuntimePattern,
    SubVar,
    pattern_from_fragments,
)


class TestNormalization:
    def test_adjacent_constants_merge(self):
        p = RuntimePattern([Const("a"), Const("b"), SubVar(0)])
        assert p.display() == "ab<*>"
        assert len(p.elements) == 2

    def test_empty_constants_dropped(self):
        p = RuntimePattern([Const(""), SubVar(0), Const("")])
        assert p.display() == "<*>"

    def test_subvars_renumbered(self):
        p = RuntimePattern([SubVar(7), Const("-"), SubVar(3)])
        indices = [el.index for el in p.elements if isinstance(el, SubVar)]
        assert indices == [0, 1]


class TestProperties:
    def test_trivial(self):
        assert RuntimePattern([SubVar(0)]).is_trivial
        assert not RuntimePattern([Const("x"), SubVar(0)]).is_trivial

    def test_constant_pattern(self):
        p = RuntimePattern([Const("block")])
        assert p.is_constant
        assert p.num_subvars == 0
        assert p.constant_text() == "block"

    def test_display_paper_example(self):
        p = pattern_from_fragments(["block_", None, "F8", None])
        assert p.display() == "block_<*>F8<*>"


class TestMatch:
    def setup_method(self):
        # Fig 4's extracted pattern.
        self.p = pattern_from_fragments(["block_", None, "F8", None])

    def test_match_paper_values(self):
        assert self.p.match("block_1F81F") == ["1", "1F"]
        assert self.p.match("block_8F8F8FE") == ["8", "F8FE"]
        assert self.p.match("block_2F8E") == ["2", "E"]

    def test_outlier_rejected(self):
        assert self.p.match("Failed") is None

    def test_prefix_anchor(self):
        assert self.p.match("xblock_1F8Y") is None

    def test_leading_subvar(self):
        p = pattern_from_fragments([None, "#16", None])
        assert p.match("SUC#1604") == ["SUC", "04"]
        assert p.match("#16") == ["", ""]

    def test_trailing_constant_anchor(self):
        p = pattern_from_fragments(["T", None, ".log"])
        assert p.match("T99.log") == ["99"]
        assert p.match("T99.logx") is None

    def test_constant_only_pattern(self):
        p = RuntimePattern([Const("read")])
        assert p.match("read") == []
        assert p.match("reads") is None

    def test_empty_pattern_matches_empty(self):
        p = RuntimePattern([])
        assert p.match("") == []
        assert p.match("x") is None

    def test_render_inverse(self):
        assert self.p.render(["1", "1F"]) == "block_1F81F"

    @given(
        st.text(alphabet="0123456789ABCDEF", max_size=6),
        st.text(alphabet="0123456789ABCDEF", max_size=6),
    )
    def test_match_render_roundtrip(self, a, b):
        """render(match(v)) == v whenever match succeeds."""
        value = f"block_{a}F8{b}"
        parts = self.p.match(value)
        assert parts is not None
        assert self.p.render(parts) == value

    @given(st.text(alphabet="abF8_#.0123456789", max_size=20))
    def test_match_never_lies(self, value):
        """Whatever match returns must reproduce the input exactly."""
        parts = self.p.match(value)
        if parts is not None:
            assert self.p.render(parts) == value


class TestSerialization:
    @pytest.mark.parametrize(
        "fragments",
        [
            ["block_", None, "F8", None],
            [None],
            ["just-const"],
            [None, ":", None, ":", None, ".", None],
        ],
    )
    def test_roundtrip(self, fragments):
        p = pattern_from_fragments(fragments)
        w = BinaryWriter()
        p.write(w)
        q = RuntimePattern.read(BinaryReader(w.getvalue()))
        assert p == q
        assert p.display() == q.display()

    def test_equality_and_hash(self):
        a = pattern_from_fragments(["x", None])
        b = pattern_from_fragments(["x", None])
        assert a == b
        assert hash(a) == hash(b)
