"""Property tests for the aggregation pushdown.

The invariant: an aggregate executed by the Aggregate pipeline operator
(index-cell counting, per-block partials, no reconstruction) must equal
the naive oracle — reconstruct the matching lines, extract the field with
a regex, and aggregate in plain Python.  And the result must not depend
on who executes it: serial ≡ parallel thread pool ≡ cluster scatter/gather.
"""

import random
import re
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.cluster import ClusterLogGrep
from repro.query.aggregate import numeric_stats

WHERE_FILTERS = [None, "ERROR", "INFO", "Project:1", "zz_nothing_zz"]

FIELD_RE = {
    "Project": re.compile(r"Project:(\S+)"),
    "latency": re.compile(r"latency:(\S+)"),
}


def make_lines(seed: int, n: int):
    """Structured lines whose fields a regex oracle can re-extract."""
    rng = random.Random(seed)
    lines = []
    for i in range(n):
        level = "ERROR" if rng.randrange(5) == 0 else "INFO"
        project = rng.randrange(4)
        # Occasionally an unparsable latency so stats see nulls.
        latency = "NaNus" if rng.randrange(29) == 0 else f"{rng.randrange(9000)}us"
        lines.append(
            f"2024-01-01 00:00:{i % 60:02d} {level} svc "
            f"Project:{project} latency:{latency} req done"
        )
    return lines


def oracle_lines(lines, where):
    return grep_lines(where, lines) if where else list(lines)


def oracle_counts(lines, where, field):
    pattern = FIELD_RE[field]
    counts = Counter()
    for line in oracle_lines(lines, where):
        match = pattern.search(line)
        if match:
            counts[match.group(1)] += 1
    return counts


def assert_stats_equal(ours, reference):
    assert ours.count == reference.count
    assert ours.nulls == reference.nulls
    for name in ("minimum", "maximum", "mean", "p50", "p95", "p99"):
        a, b = getattr(ours, name), getattr(reference, name)
        if a != a:  # NaN
            assert b != b
        else:
            assert a == pytest.approx(b)


class TestPushdownEqualsOracle:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=300),
        st.sampled_from(WHERE_FILTERS),
    )
    def test_count_by_and_stats(self, seed, n, where):
        lines = make_lines(seed, n)
        lg = LogGrep(config=LogGrepConfig(block_bytes=2048))
        lg.compress(lines)

        assert lg.count_by("Project", where) == oracle_counts(
            lines, where, "Project"
        )

        raw_values = [
            FIELD_RE["latency"].search(line).group(1)
            for line in oracle_lines(lines, where)
            if FIELD_RE["latency"].search(line)
        ]
        assert_stats_equal(
            lg.stats_of("latency", where), numeric_stats(raw_values)
        )

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=300),
        st.sampled_from(["ERROR", "Project:2"]),
        st.integers(min_value=1, max_value=9),
    )
    def test_timeseries_buckets(self, seed, n, where, buckets):
        lines = make_lines(seed, n)
        lg = LogGrep(config=LogGrepConfig(block_bytes=2048))
        lg.compress(lines)

        timeline = lg.timeseries(where, buckets=buckets)
        hits = {
            i for i, line in enumerate(lines) if line in set(grep_lines(where, lines))
        }
        # Oracle: bucket the matching global line ids the same way.
        width = max(1, -(-len(lines) // buckets))
        expected = Counter(min(buckets - 1, i // width) for i in hits)
        assert sum(c for _, _, c in timeline) == len(hits)
        for idx, (low, high, count) in enumerate(timeline):
            assert count == expected.get(idx, 0)
            assert low == idx * width
        # Buckets tile the id space without gaps.
        for (_, a_hi, _), (b_lo, _, _) in zip(timeline, timeline[1:]):
            assert b_lo == a_hi + 1


class TestExecutionEquivalence:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=20, max_value=250),
        st.sampled_from(WHERE_FILTERS),
    )
    def test_serial_parallel_cluster_agree(self, seed, n, where):
        lines = make_lines(seed, n)
        serial = LogGrep(config=LogGrepConfig(block_bytes=2048))
        serial.compress(lines)
        parallel = LogGrep(
            config=LogGrepConfig(block_bytes=2048, query_parallelism=4)
        )
        parallel.compress(lines)

        expected_counts = serial.count_by("Project", where)
        expected_stats = serial.stats_of("latency", where)
        expected_ts = serial.timeseries(where or "req", buckets=5)

        assert parallel.count_by("Project", where) == expected_counts
        assert_stats_equal(parallel.stats_of("latency", where), expected_stats)
        assert parallel.timeseries(where or "req", buckets=5) == expected_ts

        with ClusterLogGrep(
            num_nodes=3,
            replication=2,
            config=LogGrepConfig(block_bytes=2048),
        ) as cluster:
            cluster.compress(lines)
            assert cluster.count_by("Project", where) == expected_counts
            assert_stats_equal(
                cluster.stats_of("latency", where), expected_stats
            )
            assert cluster.timeseries(where or "req", buckets=5) == expected_ts
