"""Focused tests for query-engine internals: evaluation order, stats
merging, and anchored locator corner cases."""

import pytest

from repro.capsule.stamp import CapsuleStamp
from repro.query.language import parse_query
from repro.query.locator import locate
from repro.query.modes import MatchMode
from repro.query.plan import PlannedDisjunct
from repro.query.stats import QueryStats
from repro.runtime.pattern import pattern_from_fragments


class TestEvaluationOrder:
    # Term ordering moved from the engine into the planner: the engine
    # now receives disjuncts with their terms already sorted.
    def test_most_selective_positive_first(self):
        command = parse_query("a AND longer-and-rarer-token AND bb")
        ordered = PlannedDisjunct.from_terms(command.disjuncts[0]).terms
        assert [t.search.text for t in ordered] == [
            "longer-and-rarer-token",
            "bb",
            "a",
        ]

    def test_negated_terms_last(self):
        command = parse_query("a NOT zzzzzzzzzz AND bb")
        ordered = PlannedDisjunct.from_terms(command.disjuncts[0]).terms
        assert [t.negated for t in ordered] == [False, False, True]

    def test_wildcards_ranked_by_literal(self):
        command = parse_query("ab*xy AND qqqqqqq")
        ordered = PlannedDisjunct.from_terms(command.disjuncts[0]).terms
        # "qqqqqqq" (7 literal chars) beats "ab*xy" (longest run 2).
        assert ordered[0].search.text == "qqqqqqq"


class TestStatsMerge:
    def test_merge_adds_all_fields(self):
        a = QueryStats(capsules_considered=1, capsules_decompressed=2, cache_hits=3)
        b = QueryStats(capsules_considered=10, blocks_pruned=4, entries_matched=5)
        a.merge(b)
        assert a.capsules_considered == 11
        assert a.capsules_decompressed == 2
        assert a.cache_hits == 3
        assert a.blocks_pruned == 4
        assert a.entries_matched == 5


class TestLocatorAnchoredCorners:
    def setup_method(self):
        # block_<sv>F8<sv> with realistic stamps.
        self.pattern = pattern_from_fragments(["block_", None, "F8", None])
        self.stamps = [CapsuleStamp(0b1, 1), CapsuleStamp(0b101, 4)]

    def test_prefix_through_constant(self):
        candidates = locate(self.pattern, self.stamps, "block_9F81", MatchMode.PREFIX)
        assert candidates
        # Must pin sv0 == "9" exactly and sv1 prefix "1".
        flat = {c for cand in candidates for c in cand}
        assert (0, "9", MatchMode.EXACT) in flat

    def test_prefix_longer_than_any_value_dies(self):
        # sv0 max len is 1, so "block_123F8" (sv0 = "123") is impossible.
        candidates = locate(self.pattern, self.stamps, "block_123F8", MatchMode.PREFIX)
        assert candidates == []

    def test_suffix_through_constant(self):
        candidates = locate(self.pattern, self.stamps, "F8AB", MatchMode.SUFFIX)
        assert candidates
        flat = {c for cand in candidates for c in cand}
        # Crossing the "F8" constant pins sv1 to exactly "AB"; "F8AB"
        # entirely inside sv1 remains a second possible match.
        assert (1, "AB", MatchMode.EXACT) in flat
        assert (1, "F8AB", MatchMode.SUFFIX) in flat

    def test_exact_whole_value(self):
        candidates = locate(self.pattern, self.stamps, "block_1F8FF", MatchMode.EXACT)
        assert candidates
        for candidate in candidates:
            constraints = dict(
                ((sv, mode), frag) for sv, frag, mode in candidate
            )
            assert constraints.get((0, MatchMode.EXACT)) == "1"
            assert constraints.get((1, MatchMode.EXACT)) == "FF"

    def test_exact_wrong_prefix_dies(self):
        assert locate(self.pattern, self.stamps, "clock_1F8F", MatchMode.EXACT) == []

    def test_empty_fragment_matches_all(self):
        assert locate(self.pattern, self.stamps, "", MatchMode.SUBSTRING) == [()]
        assert locate(self.pattern, self.stamps, "", MatchMode.PREFIX) == [()]


class TestExplain:
    def test_explain_reports_filtering(self, tmp_path):
        from repro import LogGrep, LogGrepConfig
        from tests.conftest import make_mixed_lines

        lg = LogGrep(config=LogGrepConfig(block_bytes=1 << 20))
        lines = make_mixed_lines(400, seed=92)
        lg.compress(lines)
        text = lg.explain("ERR#1623 AND read")
        assert "filtered" in text
        assert "candidates" in text
        assert "template hit" in text
        # The plan must not execute anything destructive: grep still works.
        from repro.baselines.evalutil import grep_lines

        assert lg.grep("ERR#1623 AND read").lines == grep_lines(
            "ERR#1623 AND read", lines
        )

    def test_explain_wildcards_marked(self):
        from repro import LogGrep, LogGrepConfig
        from tests.conftest import make_mixed_lines

        lg = LogGrep(config=LogGrepConfig(block_bytes=1 << 20))
        lg.compress(make_mixed_lines(200, seed=93))
        assert "regex-scan" in lg.explain("bk.F?.1*")

    def test_cli_explain(self, tmp_path, capsys):
        from repro import LogGrep, LogGrepConfig
        from repro.blockstore.store import ArchiveStore
        from repro.cli import main
        from tests.conftest import make_mixed_lines

        store = ArchiveStore(str(tmp_path / "arch"))
        lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=1 << 20))
        lg.compress(make_mixed_lines(200, seed=94))
        assert main(["explain", "ERROR", "-a", str(tmp_path / "arch")]) == 0
        assert "keyword-vector pairs filtered" in capsys.readouterr().out
