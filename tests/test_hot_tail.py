"""Hot-tail query path: lines are queryable the moment append returns.

The invariants under test:

* a tail-inclusive reader sees every appended line immediately — the
  union ``sealed ∪ tail`` is exactly the appended stream, with no line
  duplicated or dropped across the seal boundary;
* tail-inclusive grep results are byte-for-byte identical to running
  the same grep after ``flush()`` (same lines, same line ids);
* the property holds for any append/seal interleaving (hypothesis) and
  under concurrent append from another thread.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import make_mixed_lines
from repro.core.config import LogGrepConfig
from repro.core.streaming import StreamingCompressor
from repro.obs.metrics import get_registry

# Every generated line contains "EV", so grep("EV") is a full-stream
# scan whose hits must be exactly the appended prefix.
def _event_lines(n, seed=0):
    import random

    rng = random.Random(seed)
    out = []
    for i in range(n):
        kind = rng.randrange(3)
        if kind == 0:
            out.append(f"EV {i} read bk.{rng.randrange(256):02X}")
        elif kind == 1:
            out.append(f"EV {i} state: {'ERR' if rng.randrange(4) == 0 else 'SUC'}#16{rng.randrange(100):02d}")
        else:
            out.append(f"EV {i} gc pause {rng.randrange(1, 500)}ms")
    return out


def _tiny_config(**overrides):
    # Small blocks force many seals, so the tail straddles pending
    # scheduler blocks and the append buffer constantly.
    return LogGrepConfig(block_bytes=512, **overrides)


class TestImmediateVisibility:
    def test_line_visible_after_first_append(self):
        with StreamingCompressor(config=_tiny_config()) as stream:
            reader = stream.open_reader(tail=True)
            stream.append("EV 0 hello tail")
            result = reader.grep("hello")
            assert result.lines == ["EV 0 hello tail"]
            assert result.line_ids == [0]
            assert reader.total_lines() == 1

    def test_every_prefix_is_complete(self):
        lines = _event_lines(120, seed=1)
        with StreamingCompressor(config=_tiny_config()) as stream:
            reader = stream.open_reader(tail=True)
            for i, line in enumerate(lines):
                stream.append(line)
                if i % 17 == 0:
                    result = reader.grep("EV")
                    assert result.lines == lines[: i + 1]
                    assert result.line_ids == list(range(i + 1))

    def test_sealed_only_reader_lags(self):
        # The default reader still shows only committed blocks — the
        # tail is an explicit opt-in.
        with StreamingCompressor(config=_tiny_config()) as stream:
            stream.append("EV 0 solo")
            sealed = stream.open_reader()
            tail = stream.open_reader(tail=True)
            assert sealed.grep("solo").count == 0
            assert tail.grep("solo").count == 1

    def test_visible_seconds_gauge_set(self):
        gauge = get_registry().gauge("loggrep_ingest_visible_seconds", "")
        with StreamingCompressor(config=_tiny_config()) as stream:
            reader = stream.open_reader(tail=True)
            stream.append("EV 0 gauge probe")
            assert reader.grep("probe").count == 1
            assert gauge.value() > 0.0


class TestSealBoundaryEquivalence:
    def test_tail_grep_equals_post_flush_grep(self):
        lines = make_mixed_lines(400, seed=7)
        stream = StreamingCompressor(config=_tiny_config())
        reader = stream.open_reader(tail=True)
        stream.extend(lines)
        before = reader.grep("read")
        before_err = reader.grep("state: ERR")
        stream.flush()
        after = stream.open_reader().grep("read")
        after_err = stream.open_reader().grep("state: ERR")
        assert before.lines == after.lines
        assert before.line_ids == after.line_ids
        assert before_err.lines == after_err.lines
        assert before_err.line_ids == after_err.line_ids
        stream.close()

    def test_tail_reader_still_correct_after_flush(self):
        lines = _event_lines(60, seed=3)
        with StreamingCompressor(config=_tiny_config()) as stream:
            reader = stream.open_reader(tail=True)
            stream.extend(lines)
            stream.flush()
            result = reader.grep("EV")
            assert result.lines == lines
            # More appends after the flush are visible again.
            stream.append("EV 60 post-flush line")
            assert reader.grep("EV").count == 61

    def test_aggregates_cover_tail(self):
        lines = make_mixed_lines(300, seed=11)
        stream = StreamingCompressor(config=_tiny_config())
        reader = stream.open_reader(tail=True)
        stream.extend(lines)
        tail_counts = reader.count_by("state")
        tail_total = reader.total_lines()
        stream.flush()
        sealed = stream.open_reader()
        assert tail_counts == sealed.count_by("state")
        assert tail_total == sealed.total_lines()
        stream.close()

    def test_count_matches_grep_over_tail(self):
        lines = _event_lines(100, seed=5)
        with StreamingCompressor(config=_tiny_config()) as stream:
            reader = stream.open_reader(tail=True)
            stream.extend(lines)
            assert reader.count("EV") == reader.grep("EV").count == 100


class TestInterleavingProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ops=st.lists(
            st.one_of(
                st.integers(min_value=1, max_value=25),  # append a run
                st.just("flush"),
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_any_interleaving_is_exact(self, seed, ops):
        """For any append/flush interleaving, the tail-inclusive view is
        exactly the appended stream, and after the final flush it equals
        the sealed-only view byte for byte."""
        stream = StreamingCompressor(config=_tiny_config())
        reader = stream.open_reader(tail=True)
        appended = []
        counter = 0
        try:
            for op in ops:
                if op == "flush":
                    stream.flush()
                else:
                    for _ in range(op):
                        line = f"EV {counter} item {(seed + counter) % 97}"
                        stream.append(line)
                        appended.append(line)
                        counter += 1
                result = reader.grep("EV")
                assert result.lines == appended
                assert result.line_ids == list(range(len(appended)))
            stream.flush()
            sealed_only = stream.open_reader().grep("EV")
            with_tail = reader.grep("EV")
            assert sealed_only.lines == with_tail.lines == appended
            assert sealed_only.line_ids == with_tail.line_ids
        finally:
            stream.close()


class TestConcurrentAppend:
    def test_no_duplicates_or_drops_under_concurrent_append(self):
        """Queries racing a writer thread must always see an exact
        prefix of the stream: contiguous ids from 0, each line intact."""
        total = 400
        lines = [f"EV {i} concurrent payload {i % 13}" for i in range(total)]
        stream = StreamingCompressor(config=_tiny_config())
        reader = stream.open_reader(tail=True)
        errors = []
        done = threading.Event()

        def writer():
            try:
                for line in lines:
                    stream.append(line)
            finally:
                done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            observed = 0
            deadline = time.monotonic() + 60.0
            while not done.is_set() or observed < total:
                if time.monotonic() > deadline:
                    errors.append(f"timed out at n={observed}/{total}")
                    break
                result = reader.grep("EV")
                n = result.count
                if result.line_ids != list(range(n)):
                    errors.append(f"non-contiguous ids at n={n}")
                    break
                if result.lines != lines[:n]:
                    errors.append(f"content mismatch at n={n}")
                    break
                if n < observed:
                    errors.append(f"went backwards: {observed} -> {n}")
                    break
                observed = n
                if done.is_set() and observed >= total:
                    break
        finally:
            thread.join()
            stream.close()
        assert not errors, errors
        assert observed == total


class TestTailInternals:
    def test_snapshot_partition_is_exact(self):
        stream = StreamingCompressor(config=_tiny_config())
        lines = _event_lines(80, seed=2)
        stream.extend(lines)
        snap = stream.tail_snapshot()
        # Sealed blocks + tail lines partition the appended stream.
        sealed_lines = sum(
            stream.open_reader()._load_box(name).num_lines
            for name in snap.sealed_names
        )
        assert sealed_lines + len(snap.lines) == len(lines)
        assert snap.first_line_id == sealed_lines
        stream.close()

    def test_tail_box_cached_per_version(self):
        stream = StreamingCompressor(config=_tiny_config())
        stream.append("EV 0 cache me")
        snap = stream.tail_snapshot()
        box1 = stream._tail_box(snap)
        assert stream._tail_box(snap) is box1
        stream.append("EV 1 new version")
        snap2 = stream.tail_snapshot()
        assert snap2.version != snap.version
        assert stream._tail_box(snap2) is not box1
        stream.close()

    def test_closed_stream_rejects_append(self):
        stream = StreamingCompressor(config=_tiny_config())
        stream.close()
        with pytest.raises(RuntimeError):
            stream.append("EV too late")
