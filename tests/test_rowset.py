"""Unit + property tests for bitmap row sets."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.rowset import RowSet

rows_strategy = st.sets(st.integers(min_value=0, max_value=63))


class TestConstruction:
    def test_empty(self):
        rs = RowSet.empty(10)
        assert len(rs) == 0
        assert not rs

    def test_full(self):
        rs = RowSet.full(5)
        assert len(rs) == 5
        assert rs.rows() == [0, 1, 2, 3, 4]
        assert rs.is_full()

    def test_full_zero_universe(self):
        assert not RowSet.full(0)

    def test_from_rows(self):
        rs = RowSet.from_rows(10, [3, 7, 3])
        assert rs.rows() == [3, 7]

    def test_from_rows_out_of_range(self):
        with pytest.raises(IndexError):
            RowSet.from_rows(4, [4])

    def test_negative_universe(self):
        with pytest.raises(ValueError):
            RowSet(-1)

    def test_bits_truncated_to_universe(self):
        rs = RowSet(3, 0b11111)
        assert rs.rows() == [0, 1, 2]


class TestOperations:
    def test_add_and_contains(self):
        rs = RowSet.empty(8)
        rs.add(5)
        assert 5 in rs
        assert 4 not in rs
        assert 100 not in rs

    def test_add_out_of_range(self):
        with pytest.raises(IndexError):
            RowSet.empty(4).add(4)

    def test_universe_mismatch(self):
        with pytest.raises(ValueError):
            RowSet.empty(4) & RowSet.empty(5)

    def test_equality_and_hash(self):
        a = RowSet.from_rows(8, [1, 2])
        b = RowSet.from_rows(8, [2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != RowSet.from_rows(9, [1, 2])


class TestSetAlgebra:
    @given(rows_strategy, rows_strategy)
    def test_and_matches_set_intersection(self, a, b):
        ra, rb = RowSet.from_rows(64, a), RowSet.from_rows(64, b)
        assert set((ra & rb).rows()) == a & b

    @given(rows_strategy, rows_strategy)
    def test_or_matches_set_union(self, a, b):
        ra, rb = RowSet.from_rows(64, a), RowSet.from_rows(64, b)
        assert set((ra | rb).rows()) == a | b

    @given(rows_strategy, rows_strategy)
    def test_sub_matches_set_difference(self, a, b):
        ra, rb = RowSet.from_rows(64, a), RowSet.from_rows(64, b)
        assert set((ra - rb).rows()) == a - b

    @given(rows_strategy)
    def test_invert(self, a):
        ra = RowSet.from_rows(64, a)
        assert set(ra.invert().rows()) == set(range(64)) - a

    @given(rows_strategy)
    def test_iteration_sorted(self, a):
        ra = RowSet.from_rows(64, a)
        assert ra.rows() == sorted(a)

    @given(rows_strategy)
    def test_len(self, a):
        assert len(RowSet.from_rows(64, a)) == len(a)
