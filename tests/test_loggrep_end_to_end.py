"""End-to-end tests of the LogGrep facade: compress → grep → reconstruct."""

import pytest

from repro import ABLATIONS, LogGrep, LogGrepConfig, ablated, sp_config
from repro.baselines.evalutil import grep_lines
from repro.blockstore.store import ArchiveStore
from tests.conftest import make_mixed_lines

QUERIES = [
    "ERROR",
    "state: ERR",
    "ERR#1623",
    "read AND bk.FF",
    "state: NOT SUC",
    "ERROR OR read",
    "bk.F?.1* AND read",
    "write to file: AND code=3",
]


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(900)


@pytest.fixture(scope="module")
def store(corpus):
    lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
    lg.compress(corpus)
    return lg


class TestRoundTrip:
    def test_decompress_all_exact(self, store, corpus):
        assert store.decompress_all() == corpus

    def test_multiple_blocks_created(self, store):
        assert len(store.store.names()) > 1

    def test_compression_report(self, corpus):
        lg = LogGrep()
        report = lg.compress(corpus)
        assert report.blocks >= 1
        assert report.ratio > 1.0
        assert report.raw_bytes == sum(len(l) + 1 for l in corpus)
        assert lg.storage_bytes() == report.compressed_bytes

    def test_incremental_compress(self, corpus):
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(corpus[:400])
        lg.compress(corpus[400:])
        assert lg.decompress_all() == corpus


class TestGrep:
    @pytest.mark.parametrize("command", QUERIES)
    def test_matches_reference(self, store, corpus, command):
        result = store.grep(command)
        assert result.lines == grep_lines(command, corpus)

    def test_results_in_global_order(self, store, corpus):
        result = store.grep("read")
        assert result.line_ids == sorted(result.line_ids)
        for line_id, text in zip(result.line_ids, result.lines):
            assert corpus[line_id] == text

    def test_stats_populated(self, store):
        store.clear_query_cache()
        result = store.grep("ERR#1623")
        assert result.stats.blocks_visited == len(store.store.names())
        assert result.stats.entries_matched == result.count
        assert result.elapsed > 0

    def test_empty_result(self, store):
        assert store.grep("absent_keyword_xyz").count == 0

    def test_query_cache_hit(self, store):
        store.clear_query_cache()
        store.grep("state: ERR")
        second = store.grep("state: ERR")
        assert second.stats.cache_hits > 0

    def test_cache_composes_across_commands(self, store, corpus):
        store.clear_query_cache()
        store.grep("ERROR")
        refined = store.grep("ERROR AND code=3")
        assert refined.stats.cache_hits > 0
        assert refined.lines == grep_lines("ERROR AND code=3", corpus)


class TestAblations:
    """Every ablated configuration must stay *correct* — the §6.3 versions
    trade performance only."""

    @pytest.mark.parametrize("name", ABLATIONS)
    @pytest.mark.parametrize("command", ["ERROR", "read AND bk.FF", "state: NOT SUC"])
    def test_ablated_results_identical(self, corpus, name, command):
        lg = LogGrep(config=ablated(name, LogGrepConfig(block_bytes=16 * 1024)))
        lg.compress(corpus)
        assert lg.grep(command).lines == grep_lines(command, corpus)

    @pytest.mark.parametrize("name", ABLATIONS)
    def test_ablated_roundtrip(self, corpus, name):
        lg = LogGrep(config=ablated(name, LogGrepConfig(block_bytes=16 * 1024)))
        lg.compress(corpus)
        assert lg.decompress_all() == corpus

    def test_sp_config(self, corpus):
        lg = LogGrep(config=sp_config(LogGrepConfig(block_bytes=16 * 1024)))
        lg.compress(corpus)
        assert lg.decompress_all() == corpus
        assert lg.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_unknown_ablation(self):
        with pytest.raises(ValueError):
            ablated("w/o everything")


class TestEngines:
    @pytest.mark.parametrize("engine", ["boyer-moore", "kmp", "native"])
    def test_engine_choice_does_not_change_results(self, corpus, engine):
        lg = LogGrep(config=LogGrepConfig(engine=engine, block_bytes=16 * 1024))
        lg.compress(corpus)
        assert lg.grep("read AND bk.FF").lines == grep_lines(
            "read AND bk.FF", corpus
        )


class TestPersistence:
    def test_filesystem_store_roundtrip(self, corpus, tmp_path):
        store = ArchiveStore(str(tmp_path / "archive"))
        lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=16 * 1024))
        lg.compress(corpus)

        # A fresh instance over the same directory sees the data.
        lg2 = LogGrep(store=ArchiveStore(str(tmp_path / "archive")))
        assert lg2.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_pin_blocks_in_memory(self, corpus):
        lg = LogGrep(config=LogGrepConfig(block_bytes=16 * 1024))
        lg.compress(corpus)
        lg.pin_blocks_in_memory()
        assert lg.grep("ERROR").lines == grep_lines("ERROR", corpus)
