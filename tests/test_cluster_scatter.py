"""Tests for the scatter/gather engine: deadlines, retries, hedges,
partial gathers and membership changes."""

import pytest

from repro.baselines.evalutil import grep_lines
from repro.blockstore.remote import FaultProfile
from repro.cluster import (
    ClusterError,
    ClusterLogGrep,
    LatencyTracker,
    ScatterConfig,
)
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=8 * 1024)


def make_cluster(corpus, **kwargs):
    kwargs.setdefault("num_nodes", 4)
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("config", CONFIG)
    cluster = ClusterLogGrep(**kwargs)
    cluster.compress(corpus)
    return cluster


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(900, seed=33)


class TestLatencyTracker:
    def test_quantile(self):
        tracker = LatencyTracker()
        for ms in range(1, 101):
            tracker.observe(ms / 1000.0)
        assert tracker.quantile(0.5) == pytest.approx(0.051)
        assert tracker.quantile(0.95) == pytest.approx(0.096)

    def test_cold_start_uses_min_delay(self):
        config = ScatterConfig(hedge_min_s=0.02, hedge_min_samples=8)
        tracker = LatencyTracker()
        for _ in range(7):
            tracker.observe(0.5)
        assert tracker.hedge_delay(config) == 0.02

    def test_warm_delay_tracks_percentile_with_clamp(self):
        config = ScatterConfig(
            hedge_min_s=0.01, hedge_max_s=0.1, hedge_min_samples=4
        )
        tracker = LatencyTracker()
        for _ in range(16):
            tracker.observe(0.05)
        assert tracker.hedge_delay(config) == pytest.approx(0.05)
        for _ in range(64):
            tracker.observe(5.0)  # way above the clamp
        assert tracker.hedge_delay(config) == 0.1


class TestTimeoutRetry:
    def test_deadline_abandons_straggler_and_retries_replica(self, corpus):
        scatter = ScatterConfig(
            shard_deadline_s=0.05,
            max_attempts=4,
            hedge=False,  # isolate the deadline path
        )
        with make_cluster(corpus, scatter=scatter) as cluster:
            straggler = cluster._placement[sorted(cluster._placement)[0]][0]
            cluster.set_straggler(straggler, 0.5)  # 10x the deadline
            assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)
            report = cluster.last_report
            timed_out = [s for s in report.shards if s.timeouts > 0]
            assert timed_out, "no shard hit the straggler as primary"
            for shard in timed_out:
                assert shard.node != straggler  # a replica answered
                assert shard.retries >= 1

    def test_attempt_budget_exhaustion_raises(self, corpus):
        scatter = ScatterConfig(shard_deadline_s=0.03, max_attempts=2, hedge=False)
        with make_cluster(corpus, scatter=scatter) as cluster:
            for node in cluster.nodes.values():
                node.rpc_latency_s = 0.5
            with pytest.raises(ClusterError):
                cluster.count("ERROR")


class TestHedgedReads:
    def test_hedge_routes_around_straggler(self, corpus):
        scatter = ScatterConfig(
            shard_deadline_s=None,
            hedge=True,
            hedge_min_s=0.01,
            hedge_min_samples=10_000,  # pin the cold-start delay
        )
        with make_cluster(corpus, scatter=scatter) as cluster:
            straggler = cluster._placement[sorted(cluster._placement)[0]][0]
            cluster.set_straggler(straggler, 0.4)
            assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)
            report = cluster.last_report
            wins = [s for s in report.shards if s.hedged and s.hedge_won]
            assert wins, "no hedge fired and won against the straggler"
            for shard in wins:
                assert shard.node != straggler
                # The hedge returned long before the straggler would have.
                assert shard.elapsed_ms < 400

    def test_no_hedge_when_disabled(self, corpus):
        scatter = ScatterConfig(shard_deadline_s=None, hedge=False)
        with make_cluster(corpus, scatter=scatter) as cluster:
            cluster.count("ERROR")
            assert all(not s.hedged for s in cluster.last_report.shards)


class TestStoreFailover:
    def test_store_failure_retries_next_replica(self, corpus):
        scatter = ScatterConfig(hedge=False, max_attempts=4)
        with make_cluster(
            corpus, scatter=scatter, remote_profile=FaultProfile()
        ) as cluster:
            victim = cluster._placement[sorted(cluster._placement)[0]][0]
            cluster.node(victim).store.set_profile(
                FaultProfile(failure_rate=1.0)
            )
            assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)
            report = cluster.last_report
            assert any(s.retries >= 1 for s in report.shards)
            assert all(s.node != victim for s in report.shards)

    def test_every_store_broken_raises(self, corpus):
        scatter = ScatterConfig(hedge=False, max_attempts=3)
        with make_cluster(
            corpus, scatter=scatter, remote_profile=FaultProfile()
        ) as cluster:
            for node in cluster.nodes.values():
                node.store.set_profile(FaultProfile(failure_rate=1.0))
            with pytest.raises(ClusterError):
                cluster.count("ERROR")


class TestGatherProtocol:
    def test_limit_returns_prefix(self, corpus):
        with make_cluster(corpus) as cluster:
            expected = grep_lines("ERROR", corpus)
            limited = cluster.grep("ERROR", limit=5)
            assert limited.lines == expected[:5]
            # The bounded fetch reconstructed only a prefix of the blocks.
            fetch = [s for s in cluster.last_report.shards if s.phase == "lines"]
            locate = [s for s in cluster.last_report.shards if s.phase == "rows"]
            assert len(fetch) < len(locate)

    def test_partial_gather_smaller_than_line_shipping(self, corpus):
        with make_cluster(corpus) as cluster:
            cluster.grep("T1*")  # matches most lines
            line_bytes = sum(
                s.wire_bytes
                for s in cluster.last_report.shards
                if s.phase == "lines"
            )
            cluster.count_by("state", where="T1*")
            partial_bytes = cluster.last_report.wire_bytes
            assert partial_bytes < line_bytes

    def test_report_covers_every_block(self, corpus):
        with make_cluster(corpus) as cluster:
            cluster.count("ERROR")
            report = cluster.last_report
            assert {s.block for s in report.shards} == set(cluster._placement)
            assert report.elapsed_ms > 0
            rendered = report.render()
            assert "shard(s)" in rendered and "block-" in rendered


class TestMembership:
    def test_add_node_rebalances(self, corpus):
        with make_cluster(corpus) as cluster:
            new_id = cluster.add_node()
            assert new_id in cluster.nodes
            # Rendezvous placement gave the new node some replicas.
            assert cluster.node(new_id).block_names()
            for name, replicas in cluster._placement.items():
                assert len(replicas) == cluster.replication
                for nid in replicas:
                    assert cluster.node(nid).has_block(name)
            assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_remove_node_drains_replicas(self, corpus):
        with make_cluster(corpus, num_nodes=5) as cluster:
            victim = cluster._placement[sorted(cluster._placement)[0]][0]
            cluster.remove_node(victim)
            assert victim not in cluster.nodes
            for name, replicas in cluster._placement.items():
                assert victim not in replicas
                assert len(replicas) == cluster.replication
                for nid in replicas:
                    assert cluster.node(nid).has_block(name)
            assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_remove_below_replication_raises(self, corpus):
        with make_cluster(corpus, num_nodes=2, replication=2) as cluster:
            with pytest.raises(ValueError):
                cluster.remove_node("node-0")

    def test_rebalance_trims_over_replication(self, corpus):
        with make_cluster(corpus) as cluster:
            cluster.node("node-2").fail()
            cluster.repair()  # re-replicates onto survivors
            cluster.node("node-2").recover()
            moves = cluster.rebalance()
            assert moves > 0  # extra copies dropped / placement restored
            for name, replicas in cluster._placement.items():
                assert len(replicas) == cluster.replication
            assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)


class TestScheduleEquivalence:
    """Property: any delivery schedule yields the single-node answer."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_cluster_equals_single_node_under_chaos(self, corpus, seed):
        single = LogGrep(config=CONFIG)
        single.compress(corpus)
        scatter = ScatterConfig(
            shard_deadline_s=None,
            max_attempts=10,
            hedge=True,
            hedge_min_s=0.002,
            hedge_min_samples=4,
        )
        with make_cluster(
            corpus, scatter=scatter, remote_profile=FaultProfile()
        ) as cluster:
            # Ingest cleanly, then let every store misbehave (each on its
            # own deterministic schedule) for the query phase.
            for i, node in enumerate(cluster.nodes.values()):
                node.store.set_profile(
                    FaultProfile(
                        jitter_s=0.003, failure_rate=0.02, seed=seed * 101 + i
                    )
                )
            for command in ("ERROR", "state: SUC#163*", "read AND bk.0*"):
                assert cluster.grep(command).lines == single.grep(command).lines
                assert cluster.count(command) == single.count(command)
            assert cluster.count_by("state") == single.count_by("state")
