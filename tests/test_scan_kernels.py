"""Byte-level scan kernels vs the legacy python path (§5.2).

The bytes kernels must be observationally identical to the original
per-position matcher on every layout and every mode — the python path is
kept selectable precisely to serve as the differential-testing oracle
here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsule import scan
from repro.capsule.capsule import Capsule
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep
from repro.query.matcher import search_capsule
from repro.query.modes import MatchMode, value_matches

values_strategy = st.lists(
    st.text(alphabet="ab1F#", max_size=6), min_size=0, max_size=24
)
fragment_strategy = st.text(alphabet="ab1F#", max_size=4)
mode_strategy = st.sampled_from(list(MatchMode))


def naive_rows(values, fragment, mode):
    return {r for r, v in enumerate(values) if value_matches(v, fragment, mode)}


class TestKernelEquivalence:
    """bytes kernel ≡ python kernel ≡ naive matching, property-checked."""

    @given(values_strategy, fragment_strategy, mode_strategy)
    @settings(max_examples=300)
    def test_fixed_layout(self, values, fragment, mode):
        capsule = Capsule.pack_fixed(values)
        expected = naive_rows(values, fragment, mode)
        py = set(search_capsule(capsule, fragment, mode, kernel="python"))
        by = set(search_capsule(capsule, fragment, mode, kernel="bytes"))
        assert by == py == expected

    @given(values_strategy, fragment_strategy, mode_strategy)
    @settings(max_examples=300)
    def test_variable_layout(self, values, fragment, mode):
        capsule = Capsule.pack_variable(values)
        expected = naive_rows(values, fragment, mode)
        py = set(search_capsule(capsule, fragment, mode, kernel="python"))
        by = set(search_capsule(capsule, fragment, mode, kernel="bytes"))
        assert by == py == expected

    @given(
        st.lists(
            st.lists(st.text(alphabet="ab1F#", max_size=4), max_size=6),
            max_size=4,
        ),
        fragment_strategy,
        mode_strategy,
    )
    @settings(max_examples=300)
    def test_region_layout(self, regions, fragment, mode):
        widths = [
            max((len(v.encode("utf-8")) for v in region), default=1) or 1
            for region in regions
        ]
        capsule = Capsule.pack_regions(regions, widths)
        flat = [v for region in regions for v in region]
        expected = naive_rows(flat, fragment, mode)
        got = set(
            scan.scan_regions(
                capsule.plain(),
                [(len(r), w) for r, w in zip(regions, widths)],
                fragment.encode("utf-8"),
                mode.value,
            )
        )
        assert got == expected

    @given(values_strategy, fragment_strategy, mode_strategy)
    @settings(max_examples=300)
    def test_direct_checking_subset(self, values, fragment, mode):
        """check_rows_fixed over a hint equals the scan ∩ hint."""
        capsule = Capsule.pack_fixed(values)
        hint = list(range(0, len(values), 2))
        got = set(
            search_capsule(
                capsule, fragment, mode, rows_hint=hint, kernel="bytes"
            )
        )
        assert got == naive_rows(values, fragment, mode) & set(hint)


class TestKernelValidation:
    def test_unknown_kernel_rejected(self):
        capsule = Capsule.pack_fixed(["a"])
        with pytest.raises(ValueError, match="scan kernel"):
            search_capsule(capsule, "a", MatchMode.EXACT, kernel="simd")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="scan mode"):
            scan.scan_fixed(b"a", 1, 1, b"a", "glob")
        with pytest.raises(ValueError, match="scan mode"):
            scan.scan_variable(b"a", [0], 1, b"a", "glob")
        with pytest.raises(ValueError, match="scan mode"):
            scan.check_rows_fixed(b"a", 1, [0], b"a", "glob")

    def test_config_rejects_unknown_kernel(self):
        with pytest.raises(ValueError, match="scan kernel"):
            LogGrepConfig(scan_kernel="simd").query_settings()


class TestZeroWidthAndEmpty:
    def test_zero_width_column(self):
        capsule = Capsule.pack_fixed(["", "", ""])
        assert capsule.width == 0
        assert set(search_capsule(capsule, "", MatchMode.EXACT, kernel="bytes")) == {
            0,
            1,
            2,
        }
        assert not search_capsule(capsule, "x", MatchMode.SUBSTRING, kernel="bytes")

    def test_empty_exact_matches_only_empty_values(self):
        capsule = Capsule.pack_fixed(["", "a", ""])
        assert set(search_capsule(capsule, "", MatchMode.EXACT, kernel="bytes")) == {
            0,
            2,
        }


CORPUS = [
    f"T{1000 + i} state: {'SUC' if i % 3 else 'ERR'}#{1600 + (i * 37) % 100}"
    for i in range(120)
] + [f"T{2000 + i} bk.{i % 7:02X}.{i % 5} read" for i in range(60)]

QUERIES = ["ERR", "read AND bk.03", "state: NOT SUC", "T1003", "bk.*.4"]


class TestEndToEndEquivalence:
    """Both kernels return identical grep results on a full archive."""

    @pytest.mark.parametrize("query", QUERIES)
    def test_grep_identical(self, query):
        results = {}
        for kernel in ("bytes", "python"):
            lg = LogGrep(
                config=LogGrepConfig(block_bytes=4 * 1024, scan_kernel=kernel)
            )
            lg.compress(CORPUS)
            results[kernel] = lg.grep(query).lines
        assert results["bytes"] == results["python"]

    def test_reconstruction_identical(self):
        lg = LogGrep(config=LogGrepConfig(block_bytes=4 * 1024))
        lg.compress(CORPUS)
        assert lg.grep("T").lines == CORPUS
