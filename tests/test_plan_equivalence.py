"""Property test: one plan, every execution strategy, one answer.

For randomly composed query commands, ``grep`` and ``count`` must agree
with each other and with a reference Python grep over the decompressed
corpus — regardless of scheduler (serial vs thread pool) and of whether
the match memo is enabled.  This pins the planner/executor refactor to
the observable semantics of the original per-method query paths.
"""

import pytest

try:
    from hypothesis import HealthCheck, assume, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is in the dev env
    pytest.skip("hypothesis not installed", allow_module_level=True)

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.common.errors import QuerySyntaxError
from tests.conftest import make_mixed_lines

CORPUS = make_mixed_lines(400, seed=23)

#: Fragments that hit every structure of the mixed corpus: template
#: constants, real-vector ids, nominal states, paths, wildcards, and a
#: keyword that matches nothing.
VOCAB = [
    "ERROR",
    "read",
    "state:",
    "SUC",
    "bk.",
    "T1*",
    "write to file:",
    "code=",
    "/root/usr",
    "zzz_absent",
    "bk.F?.*",
]


@pytest.fixture(scope="module")
def archive():
    lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
    lg.compress(CORPUS)
    return lg


def test_round_trip_is_the_reference(archive):
    # decompress_all() is the oracle the property below greps against.
    assert archive.decompress_all() == CORPUS


@st.composite
def query_strings(draw):
    parts = [draw(st.sampled_from(VOCAB))]
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        parts.append(draw(st.sampled_from(["AND", "OR", "NOT"])))
        parts.append(draw(st.sampled_from(VOCAB)))
    return " ".join(parts)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    command=query_strings(),
    parallelism=st.sampled_from([1, 3]),
    use_cache=st.booleans(),
    ignore_case=st.booleans(),
)
def test_grep_count_and_reference_agree(
    archive, command, parallelism, use_cache, ignore_case
):
    archive.config.query_parallelism = parallelism
    archive.config.use_query_cache = use_cache
    try:
        expected = grep_lines(command, CORPUS, ignore_case)
    except QuerySyntaxError:
        assume(False)
    result = archive.grep(command, ignore_case=ignore_case)
    assert result.lines == expected
    assert result.count == archive.count(command, ignore_case=ignore_case)
    assert result.count == len(expected)
