"""Tests for the distributed cluster layer (§8 future work)."""

import pytest

from repro.baselines.evalutil import grep_lines
from repro.cluster import (
    ClusterError,
    ClusterLogGrep,
    primary_node,
    replica_nodes,
)
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=8 * 1024)


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(900, seed=21)


@pytest.fixture()
def cluster(corpus):
    with ClusterLogGrep(num_nodes=4, replication=2, config=CONFIG) as c:
        c.compress(corpus)
        yield c


class TestPlacement:
    NODES = [f"node-{i}" for i in range(5)]

    def test_replicas_distinct(self):
        replicas = replica_nodes("block-7", self.NODES, 3)
        assert len(replicas) == len(set(replicas)) == 3

    def test_deterministic(self):
        assert replica_nodes("b", self.NODES, 2) == replica_nodes("b", self.NODES, 2)

    def test_stability_under_node_removal(self):
        """Removing a node only moves blocks that lived on it."""
        blocks = [f"block-{i}" for i in range(200)]
        before = {b: primary_node(b, self.NODES) for b in blocks}
        smaller = [n for n in self.NODES if n != "node-2"]
        moved = 0
        for block in blocks:
            after = primary_node(block, smaller)
            if after != before[block]:
                assert before[block] == "node-2"
                moved += 1
        assert moved > 0

    def test_roughly_balanced(self):
        blocks = [f"block-{i}" for i in range(500)]
        counts = {n: 0 for n in self.NODES}
        for block in blocks:
            counts[primary_node(block, self.NODES)] += 1
        assert min(counts.values()) > 500 / len(self.NODES) / 3

    def test_replication_validation(self):
        with pytest.raises(ValueError):
            replica_nodes("b", self.NODES, 0)


class TestClusterQueries:
    QUERIES = ["ERROR", "read AND bk.FF", "state: NOT SUC", "ERROR OR read"]

    def test_grep_matches_reference(self, cluster, corpus):
        for command in self.QUERIES:
            assert cluster.grep(command).lines == grep_lines(command, corpus)

    def test_count(self, cluster, corpus):
        assert cluster.count("ERROR") == len(grep_lines("ERROR", corpus))

    def test_results_in_global_order(self, cluster):
        result = cluster.grep("read")
        assert result.line_ids == sorted(result.line_ids)

    def test_ignore_case(self, cluster, corpus):
        expected = grep_lines("error", corpus, ignore_case=True)
        assert cluster.grep("error", ignore_case=True).lines == expected


class TestReplicationAndBalance:
    def test_every_block_replicated(self, cluster):
        for name, replicas in cluster._placement.items():
            assert len(replicas) == 2
            for replica_id in replicas:
                assert cluster.node(replica_id).has_block(name)

    def test_blocks_spread_over_nodes(self, cluster):
        stats = cluster.stats()
        holders = [n for n, count in stats.blocks_per_node.items() if count > 0]
        assert len(holders) >= 2
        assert stats.blocks > 1
        assert stats.replication == 2

    def test_storage_counts_replicas(self, cluster):
        per_node = sum(cluster.stats().bytes_per_node.values())
        assert cluster.storage_bytes() == per_node


class TestFailures:
    def test_single_node_failure_transparent(self, cluster, corpus):
        cluster.node("node-1").fail()
        assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_two_node_failure_may_lose_quorum(self, corpus):
        with ClusterLogGrep(num_nodes=3, replication=2, config=CONFIG) as c:
            c.compress(corpus)
            c.node("node-0").fail()
            c.node("node-1").fail()
            # Some block almost surely had both replicas on the dead pair.
            doomed = [
                name
                for name, replicas in c._placement.items()
                if set(replicas) <= {"node-0", "node-1"}
            ]
            if doomed:
                with pytest.raises(ClusterError):
                    c.grep("ERROR")
            else:  # pragma: no cover - placement-dependent
                assert c.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_recovery_restores_service(self, cluster, corpus):
        cluster.node("node-0").fail()
        cluster.node("node-0").recover()
        assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_repair_restores_replication(self, cluster, corpus):
        victim = cluster.node("node-2")
        victim.fail()
        created = cluster.repair()
        degraded = any(
            "node-2" in replicas for replicas in cluster._placement.values()
        )
        if created:
            # After repair, every reachable block is fully replicated on
            # alive nodes.
            for name, replicas in cluster._placement.items():
                holders = [
                    nid
                    for nid in replicas
                    if cluster.node(nid).alive and cluster.node(nid).has_block(name)
                ]
                assert len(holders) >= min(2, len(cluster._alive_ids()))
        # Queries keep working either way.
        assert cluster.grep("ERROR").lines == grep_lines("ERROR", corpus)

    def test_ingest_with_dead_node(self, corpus):
        with ClusterLogGrep(num_nodes=4, replication=2, config=CONFIG) as c:
            c.node("node-3").fail()
            c.compress(corpus)
            assert c.grep("ERROR").lines == grep_lines("ERROR", corpus)
            assert not c.node("node-3").block_names()


class TestClusterAggregation:
    """Distributed aggregates: one shipped plan, merged partials."""

    @pytest.fixture(scope="class")
    def structured(self):
        lines = []
        for i in range(1500):
            level = "ERROR" if i % 5 == 0 else "INFO"
            lines.append(
                f"2024-01-01 00:00:{i % 60:02d} {level} svc "
                f"Project:{i % 3} latency:{i * 7}us req done"
            )
        single = LogGrep(config=CONFIG)
        single.compress(lines)
        cluster = ClusterLogGrep(num_nodes=4, replication=2, config=CONFIG)
        cluster.compress(lines)
        yield single, cluster
        cluster.close()

    def test_count_by_matches_single_node(self, structured):
        single, cluster = structured
        assert cluster.count_by("Project") == single.count_by("Project")
        assert cluster.count_by("Project", where="ERROR") == single.count_by(
            "Project", where="ERROR"
        )

    def test_top_k_matches_single_node(self, structured):
        single, cluster = structured
        assert cluster.top_k("Project", k=2) == single.top_k("Project", k=2)

    def test_stats_match_single_node(self, structured):
        single, cluster = structured
        assert cluster.stats_of("latency") == single.stats_of("latency")

    def test_timeseries_matches_single_node(self, structured):
        single, cluster = structured
        assert cluster.timeseries("ERROR", buckets=6) == single.timeseries(
            "ERROR", buckets=6
        )

    def test_aggregate_survives_node_failure(self, structured):
        single, cluster = structured
        expected = single.count_by("Project", where="ERROR")
        cluster.node("node-1").fail()
        try:
            assert cluster.count_by("Project", where="ERROR") == expected
        finally:
            cluster.node("node-1").recover()

    def test_matched_count_is_merged(self, structured):
        from repro.query.aggregate import AggregateSpec
        from repro.query.modes import AggregateKind

        single, cluster = structured
        spec = AggregateSpec(AggregateKind.COUNT_BY, "Project")
        result = cluster.aggregate(spec, where="ERROR")
        assert result.matched == single.count("ERROR")


class TestValidation:
    def test_zero_nodes(self):
        with pytest.raises(ValueError):
            ClusterLogGrep(num_nodes=0)

    def test_replication_exceeds_nodes(self):
        with pytest.raises(ValueError):
            ClusterLogGrep(num_nodes=2, replication=3)
