"""Tests for log-block splitting and the archive stores."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blockstore import (
    ArchiveStore,
    LogBlock,
    MemoryStore,
    block_from_text,
    split_lines,
)


class TestSplitLines:
    def test_single_block(self):
        blocks = list(split_lines(["a", "b"], max_bytes=1000))
        assert len(blocks) == 1
        assert blocks[0].lines == ["a", "b"]
        assert blocks[0].first_line_id == 0

    def test_budgeted_split(self):
        lines = ["x" * 10] * 10  # 11 bytes each with newline
        blocks = list(split_lines(lines, max_bytes=34))
        assert all(block.raw_bytes <= 34 for block in blocks)
        assert sum(block.num_lines for block in blocks) == 10

    def test_block_ids_and_line_ids_contiguous(self):
        lines = [f"line-{i}" for i in range(20)]
        blocks = list(split_lines(lines, max_bytes=30))
        assert [b.block_id for b in blocks] == list(range(len(blocks)))
        expected_first = 0
        for block in blocks:
            assert block.first_line_id == expected_first
            expected_first += block.num_lines

    def test_oversized_line_gets_own_block(self):
        blocks = list(split_lines(["short", "x" * 100, "short"], max_bytes=20))
        assert any(block.lines == ["x" * 100] for block in blocks)

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            list(split_lines(["a"], max_bytes=0))

    @given(st.lists(st.text(alphabet="ab", max_size=10), max_size=50))
    def test_no_line_lost_or_reordered(self, lines):
        blocks = list(split_lines(lines, max_bytes=16))
        rejoined = [line for block in blocks for line in block.lines]
        assert rejoined == lines


class TestLogBlock:
    def test_text_roundtrip(self):
        block = LogBlock(0, 0, ["a", "b"])
        assert block.text() == "a\nb\n"
        assert block_from_text(block.text()).lines == ["a", "b"]

    def test_empty(self):
        assert LogBlock(0, 0, []).text() == ""
        assert block_from_text("").lines == []

    def test_raw_bytes(self):
        assert LogBlock(0, 0, ["ab", "c"]).raw_bytes == 5


@pytest.mark.parametrize("store_factory", [MemoryStore, None])
class TestStores:
    def _make(self, store_factory, tmp_path):
        if store_factory is None:
            return ArchiveStore(str(tmp_path / "arch"))
        return store_factory()

    def test_put_get(self, store_factory, tmp_path):
        store = self._make(store_factory, tmp_path)
        store.put("a.bin", b"hello")
        assert store.get("a.bin") == b"hello"
        assert store.exists("a.bin")
        assert not store.exists("b.bin")

    def test_names_sorted(self, store_factory, tmp_path):
        store = self._make(store_factory, tmp_path)
        store.put("b", b"2")
        store.put("a", b"1")
        assert store.names() == ["a", "b"]

    def test_total_bytes(self, store_factory, tmp_path):
        store = self._make(store_factory, tmp_path)
        store.put("a", b"12345")
        store.put("b", b"123")
        assert store.total_bytes() == 8

    def test_overwrite(self, store_factory, tmp_path):
        store = self._make(store_factory, tmp_path)
        store.put("a", b"old")
        store.put("a", b"new!")
        assert store.get("a") == b"new!"

    def test_delete(self, store_factory, tmp_path):
        store = self._make(store_factory, tmp_path)
        store.put("a", b"1")
        store.delete("a")
        assert not store.exists("a")


class TestArchiveStorePaths:
    def test_rejects_path_traversal(self, tmp_path):
        store = ArchiveStore(str(tmp_path))
        with pytest.raises(ValueError):
            store.put("../evil", b"x")
        with pytest.raises(ValueError):
            store.put(".hidden", b"x")
