"""Failure injection: corrupted archives must fail loudly, never return
wrong data or leak non-library exceptions where corruption is detectable
at the format layer."""

import random
import zlib

import pytest

from repro import LogGrep, LogGrepConfig
from repro.capsule.box import CapsuleBox
from repro.common.errors import ReproError
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def archive_bytes():
    lg = LogGrep(config=LogGrepConfig())
    lg.compress(make_mixed_lines(400, seed=17))
    name = lg.store.names()[0]
    return lg.store.get(name)


ACCEPTABLE = (ReproError, zlib.error, EOFError, OverflowError, MemoryError)


class TestCorruption:
    def test_truncations_detected(self, archive_bytes):
        for fraction in (0.01, 0.3, 0.7, 0.95):
            data = archive_bytes[: int(len(archive_bytes) * fraction)]
            with pytest.raises(ACCEPTABLE):
                box = CapsuleBox.deserialize(data)
                # Payloads are lazy: force them.
                for group in box.groups:
                    for vector in group.vectors:
                        from repro.capsule.box import _capsules_of

                        for capsule in _capsules_of(vector):
                            capsule.plain()

    def test_header_flips_detected(self, archive_bytes):
        for pos in range(0, 13):
            data = bytearray(archive_bytes)
            data[pos] ^= 0xFF
            with pytest.raises(ACCEPTABLE):
                CapsuleBox.deserialize(bytes(data))

    def test_random_metadata_flips_never_crash_weirdly(self, archive_bytes):
        """Flipping metadata bytes must either still round-trip (the flip
        hit slack space) or raise a recognizable error — never e.g.
        TypeError from deep inside the decoder."""
        rng = random.Random(99)
        weird = []
        for _ in range(60):
            data = bytearray(archive_bytes)
            pos = rng.randrange(13, min(len(data), 4000))
            data[pos] ^= 1 << rng.randrange(8)
            try:
                box = CapsuleBox.deserialize(bytes(data))
                from repro.core.reconstructor import BlockReconstructor

                BlockReconstructor(box).all_lines()
            except ACCEPTABLE:
                pass
            except (UnicodeDecodeError, IndexError, ValueError, KeyError):
                # Corruption inside decompressed content: detected at the
                # decoding layer; acceptable failure modes.
                pass
            except Exception as exc:  # pragma: no cover - the assertion
                weird.append((pos, type(exc).__name__))
        assert not weird, weird

    def test_empty_input(self):
        with pytest.raises(ACCEPTABLE):
            CapsuleBox.deserialize(b"")

    def test_wrong_magic(self):
        with pytest.raises(ReproError):
            CapsuleBox.deserialize(b"ZZZZ" + b"\x00" * 64)


class TestVerify:
    def test_healthy_archive_verifies(self, archive_bytes):
        box = CapsuleBox.deserialize(archive_bytes)
        assert box.verify() == []

    def test_payload_flip_caught(self, archive_bytes):
        # Flip one byte deep in the payload area (past header + metadata).
        data = bytearray(archive_bytes)
        data[-10] ^= 0xFF
        box = CapsuleBox.deserialize(bytes(data))
        assert box.verify()  # at least one problem reported

    def test_in_memory_box_verifies(self):
        from repro.blockstore.block import LogBlock
        from repro.core.compressor import compress_block
        from repro.core.config import LogGrepConfig

        box = compress_block(LogBlock(0, 0, make_mixed_lines(120)), LogGrepConfig())
        assert box.verify() == []

    def test_cli_verify(self, tmp_path, capsys):
        from repro import LogGrep, LogGrepConfig
        from repro.blockstore.store import ArchiveStore
        from repro.cli import main

        store = ArchiveStore(str(tmp_path / "arch"))
        lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(make_mixed_lines(300))
        assert main(["verify", "-a", str(tmp_path / "arch")]) == 0
        out = capsys.readouterr().out
        assert "healthy" in out

        # Corrupt one block: verify must fail with exit code 1.
        name = store.names()[0]
        blob = bytearray(store.get(name))
        blob[-5] ^= 0x55
        store.put(name, bytes(blob))
        assert main(["verify", "-a", str(tmp_path / "arch")]) == 1
