"""Shared-scan batch executor + predicate-fragment cache tests.

Acceptance coverage for the multi-query layer: batched execution must be
result-identical to sequential execution for every mode mix, the
fragment cache must never serve stale rows across append/seal, lifecycle
demotion and cold shared-store merges, the batch ledger must reconcile
exactly against the store's ranged-read counter, and the admission queue
must coalesce bursts into fewer passes.
"""

import threading

import pytest

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.obs.metrics import get_registry
from repro.query.aggregate import AggregateSpec
from repro.query.batch import AdmissionQueue, BatchExecutor
from repro.query.fragcache import (
    GENERATION_AUX_NAME,
    FragmentCache,
    bump_generation,
    load_generation,
)
from repro.query.modes import AggregateKind
from repro.query.plan import OutputMode, build_plan
from tests.conftest import make_mixed_lines

QUERIES = [
    "ERROR",
    "read",
    "state: ERR",
    "code=3",
    "ERROR OR read",
    "read NOT bk.0F",
    "no-such-needle-xyz",
]


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(800, seed=7)


def make_lg(corpus, **overrides):
    overrides.setdefault("block_bytes", 4 * 1024)
    # Pin the fragment-cache capacity: the CI batch-scans leg shrinks
    # LOGGREP_FRAGMENT_CACHE_ENTRIES to force eviction churn, which
    # would invalidate the warm-path assertions (zero loads / zero
    # bytes on repeat) that assume the working set fits.
    overrides.setdefault("fragment_cache_entries", 4096)
    lg = LogGrep(config=LogGrepConfig(**overrides))
    lg.compress(corpus)
    return lg


def counter_value(name: str) -> float:
    return get_registry().counter(name).value()


# ----------------------------------------------------------------------
# batched == sequential
# ----------------------------------------------------------------------
class TestBatchEquivalence:
    def test_grep_many_matches_sequential(self, corpus):
        lg = make_lg(corpus)
        sequential = [lg.grep(q) for q in QUERIES]
        batched = lg.grep_many(QUERIES)
        assert len(batched) == len(QUERIES)
        for got, want in zip(batched, sequential):
            assert got.lines == want.lines
            assert got.line_ids == want.line_ids
            assert got.count == want.count

    def test_grep_many_matches_reference(self, corpus):
        lg = make_lg(corpus)
        for query, result in zip(QUERIES, lg.grep_many(QUERIES)):
            assert result.lines == grep_lines(query, corpus)

    def test_count_many_matches_sequential(self, corpus):
        lg = make_lg(corpus)
        assert lg.count_many(QUERIES) == [lg.count(q) for q in QUERIES]

    def test_aggregate_many_matches_sequential(self, corpus):
        lg = make_lg(corpus)
        spec = AggregateSpec(AggregateKind.COUNT_BY, "2")
        top = AggregateSpec(AggregateKind.TOP_K, "2", k=3)
        specs = [(spec, "read"), (spec, None), (top, "ERROR")]
        sequential = [lg.aggregate(s, where=w) for s, w in specs]
        batched = lg.aggregate_many(specs)
        for got, want in zip(batched, sequential):
            assert got.value == want.value
            assert got.matched == want.matched

    def test_single_plan_batch_equals_sequential(self, corpus):
        """batch_scans=1 routes every query through a batch of one."""
        plain = make_lg(corpus)
        routed = LogGrep(
            store=plain.store,
            config=LogGrepConfig(block_bytes=4 * 1024, batch_scans=True),
        )
        for query in QUERIES:
            assert routed.grep(query).lines == plain.grep(query).lines
            assert routed.count(query) == plain.count(query)

    def test_batch_metrics_move(self, corpus):
        lg = make_lg(corpus)
        queries_before = counter_value("loggrep_batch_queries_total")
        runs_before = counter_value("loggrep_batch_runs_total")
        loads_before = counter_value("loggrep_batch_shared_block_loads_total")
        lg.grep_many(["ERROR", "read"])
        assert counter_value("loggrep_batch_queries_total") == queries_before + 2
        assert counter_value("loggrep_batch_runs_total") == runs_before + 1
        assert counter_value("loggrep_batch_shared_block_loads_total") > loads_before
        report = lg.last_batch_report
        assert report.queries == 2
        assert report.blocks == len(lg.store.names())
        assert report.shared_loads <= report.blocks

    def test_parallel_batch_equals_serial_batch(self, corpus):
        serial = make_lg(corpus)
        parallel = LogGrep(
            store=serial.store,
            config=LogGrepConfig(block_bytes=4 * 1024, query_parallelism=4),
        )
        want = serial.grep_many(QUERIES)
        got = parallel.grep_many(QUERIES)
        for g, w in zip(got, want):
            assert g.lines == w.lines

    def test_explain_stays_sequential(self, corpus):
        """EXPLAIN/ANALYZE render private-pass reports; run_batch must
        fall back to the sequential pipeline for them."""
        lg = make_lg(corpus)
        plan = build_plan("ERROR", OutputMode.EXPLAIN)
        results, report = lg.batch_executor.run_batch([plan])
        assert len(results) == 1
        assert results[0].renderings  # the operator walk was rendered
        assert report.shared_loads == 0


# ----------------------------------------------------------------------
# plan-level dedupe (satellite: "a AND a" collapses to one term)
# ----------------------------------------------------------------------
class TestPlanDedup:
    def test_duplicate_literals_collapse(self):
        plan = build_plan("ERROR AND ERROR")
        (disjunct,) = plan.disjuncts
        assert len(disjunct.terms) == 1

    def test_negated_duplicate_kept_separate(self):
        plan = build_plan("ERROR NOT ERROR")
        (disjunct,) = plan.disjuncts
        assert len(disjunct.terms) == 2

    def test_deduped_plan_equivalent(self, corpus):
        lg = make_lg(corpus)
        assert (
            lg.grep("ERROR AND ERROR AND code=3").lines
            == lg.grep("ERROR AND code=3").lines
            == grep_lines("ERROR AND code=3", corpus)
        )


# ----------------------------------------------------------------------
# fragment cache: warm path, eviction, metrics
# ----------------------------------------------------------------------
class TestFragmentCache:
    def test_warm_count_skips_box_loads(self, corpus):
        lg = make_lg(corpus)
        lg.count_many(["ERROR", "read"])
        assert lg.last_batch_report.shared_loads > 0
        lg.count_many(["ERROR", "read"])
        assert lg.last_batch_report.shared_loads == 0
        assert lg.fragments.hits > 0

    def test_warm_count_reads_zero_store_bytes(self, corpus):
        lg = make_lg(corpus, use_query_cache=False)
        lg.count_many(["ERROR"])
        counter = get_registry().counter("loggrep_store_range_read_bytes_total")
        before = counter.value()
        warm = lg.count_many(["ERROR"])[0]
        assert counter.value() == before  # pure row-set algebra
        assert warm == lg.count("ERROR")

    def test_overlapping_queries_share_fragments(self, corpus):
        lg = make_lg(corpus, use_query_cache=False)
        lg.count_many(["ERROR"])
        hits_before = lg.fragments.hits
        # A different query over the same term reuses its fragments.
        lg.count_many(["ERROR AND code=3"])
        assert lg.fragments.hits > hits_before

    def test_fragcache_metrics_move(self, corpus):
        lg = make_lg(corpus, use_query_cache=False)
        misses_before = counter_value("loggrep_fragcache_misses_total")
        hits_before = counter_value("loggrep_fragcache_hits_total")
        lg.count_many(["ERROR"])
        assert counter_value("loggrep_fragcache_misses_total") > misses_before
        lg.count_many(["ERROR"])
        assert counter_value("loggrep_fragcache_hits_total") > hits_before

    def test_tiny_capacity_evicts_and_stays_correct(self, corpus):
        evictions_before = counter_value("loggrep_fragcache_evictions_total")
        lg = make_lg(corpus, fragment_cache_entries=4, use_query_cache=False)
        sequential = [lg.count(q) for q in QUERIES]
        for _ in range(3):
            assert lg.count_many(QUERIES) == sequential
        assert len(lg.fragments) <= 4
        assert counter_value("loggrep_fragcache_evictions_total") > evictions_before

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FragmentCache(0)


# ----------------------------------------------------------------------
# staleness: every rewrite path must bump the generation
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_generation_bumps_on_compress(self, corpus):
        lg = make_lg(corpus)
        gen = load_generation(lg.store)
        assert gen > 0  # one bump per committed block
        lg.compress(["extra line one", "extra line two"])
        assert load_generation(lg.store) > gen

    def test_append_invalidates_fragments(self, corpus):
        lg = make_lg(corpus)
        warm = lg.count_many(["ERROR"])[0]
        inv_before = counter_value("loggrep_fragcache_invalidations_total")
        lg.compress(["ERROR fresh appended line"])
        assert lg.count_many(["ERROR"])[0] == warm + 1
        assert lg.count_many(["ERROR"])[0] == lg.count("ERROR")
        assert (
            counter_value("loggrep_fragcache_invalidations_total") > inv_before
        )

    def test_streaming_seal_bumps_generation(self):
        from repro.core.streaming import StreamingCompressor

        config = LogGrepConfig(block_bytes=2 * 1024)
        with StreamingCompressor(config=config) as stream:
            for i in range(400):
                stream.append(f"streamed ERROR line {i} payload {i % 13}")
            store = stream.store
        assert load_generation(store) > 0

    def test_demote_warm_invalidates_shared_cache(self, corpus):
        """The demotion is performed by a *separate* LifecycleManager;
        the handle's fragment cache must still notice via the persisted
        generation token."""
        from repro.core.lifecycle import LifecycleManager, Tier

        lg = make_lg(corpus)
        warm = lg.count_many(["ERROR", "read"])
        manager = LifecycleManager(lg.store, lg.config)
        report = manager.demote(Tier.WARM)
        assert report.blocks_after > 0
        reader = LogGrep(
            store=lg.store, config=lg.config, fragments=lg.fragments
        )
        assert reader.count_many(["ERROR", "read"]) == warm
        assert reader.count_many(["ERROR", "read"]) == [
            reader.count("ERROR"), reader.count("read"),
        ]

    def test_demote_cold_shared_store_merge_invalidates(self, corpus):
        from repro.blockstore.shared import SharedTemplateStore
        from repro.blockstore.store import MemoryStore
        from repro.core.lifecycle import LifecycleManager, Tier

        lg = make_lg(corpus)
        warm = lg.count_many(["ERROR", "read"])
        gen_before = load_generation(lg.store)
        shared = SharedTemplateStore(MemoryStore())
        manager = LifecycleManager(lg.store, lg.config, shared=shared)
        report = manager.demote(Tier.COLD)
        assert report.blocks_after < report.blocks_before  # merged
        assert load_generation(lg.store) > gen_before
        reader = manager.open_reader()
        reader.fragments = lg.fragments  # carry the stale cache over
        reader._batch = BatchExecutor(reader._executor, lg.fragments)
        assert reader.count_many(["ERROR", "read"]) == warm
        assert reader.count_many(["ERROR", "read"]) == warm  # warm rerun

    def test_missing_generation_blob_reads_as_zero(self):
        class Auxless:
            pass

        assert load_generation(Auxless()) == 0
        bump_generation(Auxless())  # best-effort, must not raise

    def test_generation_blob_is_aux(self, corpus):
        lg = make_lg(corpus)
        assert lg.store.aux_exists(GENERATION_AUX_NAME)
        # Aux blobs never pollute the block namespace.
        assert GENERATION_AUX_NAME not in lg.store.names()


# ----------------------------------------------------------------------
# ledger: batched accounting reconciles exactly
# ----------------------------------------------------------------------
class TestBatchLedger:
    def test_batch_ledger_reconciles_with_store_counter(self, corpus):
        lg = make_lg(corpus, lazy_io=True)
        counter = get_registry().counter("loggrep_store_range_read_bytes_total")
        before = counter.value()
        results = lg.grep_many(["ERROR", "read", "code=3"], ledgered=True)
        delta = counter.value() - before
        assert delta > 0
        per_query = sum(
            result.ledger.totals().read_bytes for result in results
        )
        shared = lg.last_batch_report.ledger.totals().read_bytes
        assert per_query + shared == delta

    def test_single_plan_batch_bills_the_plan(self, corpus):
        """A batch of one charges everything to the plan's own ledger —
        identical accounting to the sequential executor."""
        lg = make_lg(corpus, lazy_io=True)
        counter = get_registry().counter("loggrep_store_range_read_bytes_total")
        before = counter.value()
        results = lg.grep_many(["ERROR"], ledgered=True)
        delta = counter.value() - before
        assert lg.last_batch_report.ledger.totals().read_bytes == 0
        assert results[0].ledger.totals().read_bytes == delta

    def test_budget_aborts_batched_query(self, corpus):
        from repro.common.errors import BudgetExceeded

        lg = make_lg(corpus, lazy_io=True, max_read_bytes=64)
        with pytest.raises(BudgetExceeded) as excinfo:
            lg.grep_many(["ERROR"])
        assert excinfo.value.ledger is not None


# ----------------------------------------------------------------------
# admission queue
# ----------------------------------------------------------------------
class TestAdmissionQueue:
    def test_burst_coalesces_and_results_match(self, corpus):
        lg = make_lg(corpus)
        sequential = {q: lg.grep(q).lines for q in QUERIES}
        queue = lg.admission_queue(window_s=0.02)
        try:
            futures = [
                (q, queue.submit(build_plan(q, OutputMode.LINES)))
                for q in QUERIES
            ]
            for query, future in futures:
                result = future.result(timeout=30)
                assert [t for _, t in result.entries] == sequential[query]
        finally:
            queue.close()
        assert queue.batches < len(QUERIES)  # the burst coalesced

    def test_concurrent_submitters(self, corpus):
        lg = make_lg(corpus)
        sequential = {q: lg.count(q) for q in QUERIES}
        queue = lg.admission_queue(window_s=0.01)
        errors = []

        def worker(query):
            try:
                future = queue.submit(build_plan(query, OutputMode.COUNT))
                assert future.result(timeout=30).count == sequential[query]
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(q,)) for q in QUERIES * 3
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        queue.close()
        assert not errors

    def test_submit_after_close_raises(self, corpus):
        lg = make_lg(corpus)
        queue = lg.admission_queue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.submit(build_plan("ERROR", OutputMode.COUNT))

    def test_max_batch_bounds_one_pass(self, corpus):
        lg = make_lg(corpus)
        queue = AdmissionQueue(
            lg.batch_executor.run_batch, window_s=0.02, max_batch=2
        )
        try:
            futures = [
                queue.submit(build_plan(q, OutputMode.COUNT))
                for q in QUERIES[:4]
            ]
            counts = [f.result(timeout=30).count for f in futures]
        finally:
            queue.close()
        assert counts == [lg.count(q) for q in QUERIES[:4]]
        assert queue.batches >= 2


# ----------------------------------------------------------------------
# cluster: one multi-plan batch per shard
# ----------------------------------------------------------------------
class TestClusterBatch:
    def test_cluster_grep_many_matches_sequential(self):
        from repro.cluster.coordinator import ClusterLogGrep

        lines = make_mixed_lines(400, seed=3)
        config = LogGrepConfig(block_bytes=4 * 1024)
        with ClusterLogGrep(num_nodes=3, replication=2, config=config) as c:
            c.compress(lines)
            commands = ["ERROR", "read", "state: ERR"]
            sequential = [c.grep(cmd) for cmd in commands]
            served_before = sum(
                n.queries_served for n in c.nodes.values()
            )
            batched = c.grep_many(commands)
            locate_rpcs = sum(
                1
                for shard in c.last_report.shards
                if shard.phase == "rows"
            )
            for got, want in zip(batched, sequential):
                assert got.lines == want.lines
                assert got.count == want.count
            # One locate RPC per block for the whole batch, not per plan.
            assert locate_rpcs == len(c._placement)
            assert sum(
                n.queries_served for n in c.nodes.values()
            ) > served_before

    def test_cluster_aggregate_many_matches_sequential(self):
        from repro.cluster.coordinator import ClusterLogGrep

        lines = make_mixed_lines(400, seed=5)
        config = LogGrepConfig(block_bytes=4 * 1024)
        spec = AggregateSpec(AggregateKind.COUNT_BY, "2")
        with ClusterLogGrep(num_nodes=3, replication=2, config=config) as c:
            c.compress(lines)
            specs = [(spec, "read"), (spec, None)]
            sequential = [c.aggregate(s, where=w) for s, w in specs]
            batched = c.aggregate_many(specs)
            for got, want in zip(batched, sequential):
                assert got.value == want.value
                assert got.matched == want.matched

    def test_cluster_grep_many_limit(self):
        from repro.cluster.coordinator import ClusterLogGrep

        lines = make_mixed_lines(400, seed=9)
        config = LogGrepConfig(block_bytes=4 * 1024)
        with ClusterLogGrep(num_nodes=2, replication=1, config=config) as c:
            c.compress(lines)
            want = c.grep("read", limit=5)
            got = c.grep_many(["read"], limit=5)[0]
            assert got.lines == want.lines


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestBatchCLI:
    def test_grep_batch_file(self, tmp_path, capsys):
        from repro.cli import main

        corpus = make_mixed_lines(300, seed=13)
        raw = tmp_path / "raw.log"
        raw.write_text("\n".join(corpus) + "\n", encoding="utf-8")
        archive = tmp_path / "arch"
        assert main(
            [
                "compress", "-a", str(archive), "--block-bytes", "4096",
                str(raw),
            ]
        ) == 0
        capsys.readouterr()
        batch = tmp_path / "queries.txt"
        batch.write_text("# burst\nERROR\nread\n\n", encoding="utf-8")
        assert main(
            ["grep", "--batch-file", str(batch), "-a", str(archive)]
        ) == 0
        out = capsys.readouterr().out
        assert "# query: ERROR" in out
        assert "# query: read" in out
        for line in grep_lines("ERROR", corpus):
            assert line in out

    def test_grep_batch_file_count(self, tmp_path, capsys):
        from repro.cli import main

        corpus = make_mixed_lines(200, seed=17)
        raw = tmp_path / "raw.log"
        raw.write_text("\n".join(corpus) + "\n", encoding="utf-8")
        archive = tmp_path / "arch"
        main(["compress", "-a", str(archive), str(raw)])
        capsys.readouterr()
        batch = tmp_path / "queries.txt"
        batch.write_text("ERROR\nread\n", encoding="utf-8")
        assert main(
            ["grep", "--batch-file", str(batch), "-a", str(archive), "-c"]
        ) == 0
        out = capsys.readouterr().out
        want = [
            f"{len(grep_lines(q, corpus))}\t{q}" for q in ("ERROR", "read")
        ]
        assert out.splitlines() == want

    def test_grep_requires_query_xor_batch_file(self, tmp_path, capsys):
        from repro.cli import main

        archive = tmp_path / "arch"
        assert main(["grep", "-a", str(archive)]) == 2
        capsys.readouterr()
