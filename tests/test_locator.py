"""Tests for Capsule locating and filtering — the Fig 6 recursion (§5.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsule.stamp import CapsuleStamp
from repro.query.locator import TOO_COMPLEX, locate
from repro.query.modes import MatchMode, value_matches
from repro.runtime.pattern import pattern_from_fragments


def stamps_for(columns):
    return [CapsuleStamp.of_values(column) for column in columns]


def evaluate(pattern, columns, candidates):
    """Reference evaluation of locator candidates against real columns."""
    n = len(columns[0]) if columns else 0
    matched = set()
    for candidate in candidates:
        rows = set(range(n))
        for subvar, frag, mode in candidate:
            rows &= {
                r for r in range(n) if value_matches(columns[subvar][r], frag, mode)
            }
        matched |= rows
    return matched


def naive(pattern, columns, fragment, mode):
    n = len(columns[0]) if columns else 0
    out = set()
    for r in range(n):
        value = pattern.render([col[r] for col in columns])
        if value_matches(value, fragment, mode):
            out.add(r)
    return out


class TestFig6Cases:
    """The five possible matches of keyword 8F8F on block_<sv1>F8<sv2>."""

    def setup_method(self):
        self.pattern = pattern_from_fragments(["block_", None, "F8", None])
        # <sv1> holds single hex chars, <sv2> holds up to 4 hex chars.
        self.columns = [
            ["1", "8", "2", "8"],
            ["1F", "F8FE", "E", "8F8F"],
        ]
        self.stamps = stamps_for(self.columns)

    def test_substring_candidates_cover_paper_cases(self):
        candidates = locate(self.pattern, self.stamps, "8F8F", MatchMode.SUBSTRING)
        assert candidates is not TOO_COMPLEX
        got = evaluate(self.pattern, self.columns, candidates)
        assert got == naive(self.pattern, self.columns, "8F8F", MatchMode.SUBSTRING)
        # Row 1: block_8F8F8FE contains 8F8F twice; row 3: inside <sv2>.
        assert got == {1, 3}

    def test_stamp_filters_case2(self):
        # Case ②: requires <sv1> = "8F8", impossible since len(<sv1>) = 1;
        # no surviving candidate may constrain sv 0 with a 3-char EXACT.
        candidates = locate(self.pattern, self.stamps, "8F8F", MatchMode.SUBSTRING)
        for candidate in candidates:
            for subvar, frag, mode in candidate:
                if subvar == 0 and mode is MatchMode.EXACT:
                    assert len(frag) <= 1

    def test_keyword_inside_constant_matches_all(self):
        candidates = locate(self.pattern, self.stamps, "lock", MatchMode.SUBSTRING)
        assert candidates == [()]

    def test_impossible_keyword(self):
        candidates = locate(self.pattern, self.stamps, "zzz", MatchMode.SUBSTRING)
        assert candidates == []


class TestAnchoredModes:
    def setup_method(self):
        self.pattern = pattern_from_fragments([None, "#16", None])
        self.columns = [["SUC", "ERR", "SUC"], ["04", "23", "11"]]
        self.stamps = stamps_for(self.columns)

    @pytest.mark.parametrize(
        "fragment,mode,expected",
        [
            ("SUC", MatchMode.PREFIX, {0, 2}),
            ("SUC#16", MatchMode.PREFIX, {0, 2}),
            ("SUC#1604", MatchMode.PREFIX, {0}),
            ("23", MatchMode.SUFFIX, {1}),
            ("#1623", MatchMode.SUFFIX, {1}),
            ("ERR#1623", MatchMode.EXACT, {1}),
            ("ERR#16", MatchMode.EXACT, set()),
            ("#16", MatchMode.SUBSTRING, {0, 1, 2}),
        ],
    )
    def test_against_naive(self, fragment, mode, expected):
        candidates = locate(self.pattern, self.stamps, fragment, mode)
        assert candidates is not TOO_COMPLEX
        got = evaluate(self.pattern, self.columns, candidates)
        assert got == naive(self.pattern, self.columns, fragment, mode) == expected


@st.composite
def pattern_and_columns(draw):
    """A random small pattern plus conforming sub-value columns."""
    shape = draw(
        st.sampled_from(
            [
                ["pre_", None],
                [None, "-", None],
                ["a", None, "bb", None],
                [None, ".", None, ".", None],
            ]
        )
    )
    pattern = pattern_from_fragments(shape)
    n = draw(st.integers(min_value=1, max_value=8))
    columns = [
        [
            draw(st.text(alphabet="ab1", max_size=3))
            for _ in range(n)
        ]
        for _ in range(pattern.num_subvars)
    ]
    return pattern, columns


class TestLocatorProperty:
    @settings(max_examples=80, deadline=None)
    @given(
        pattern_and_columns(),
        st.text(alphabet="ab1_.-", min_size=1, max_size=5),
        st.sampled_from(list(MatchMode)),
    )
    def test_candidates_equal_naive_scan(self, pc, fragment, mode):
        """The union-of-intersections over candidates must equal a full
        scan — the core correctness claim of §5.1."""
        pattern, columns = pc
        candidates = locate(pattern, stamps_for(columns), fragment, mode)
        if candidates is TOO_COMPLEX:
            return
        got = evaluate(pattern, columns, candidates)
        assert got == naive(pattern, columns, fragment, mode)

    @settings(max_examples=40, deadline=None)
    @given(
        pattern_and_columns(),
        st.text(alphabet="ab1_.-", min_size=1, max_size=5),
        st.sampled_from(list(MatchMode)),
    )
    def test_no_stamps_is_superset(self, pc, fragment, mode):
        """Disabling stamps may add candidates but never lose matches."""
        pattern, columns = pc
        with_stamps = locate(pattern, stamps_for(columns), fragment, mode)
        without = locate(pattern, stamps_for(columns), fragment, mode, use_stamps=False)
        if with_stamps is TOO_COMPLEX or without is TOO_COMPLEX:
            return
        assert evaluate(pattern, columns, with_stamps) <= evaluate(
            pattern, columns, without
        ) or evaluate(pattern, columns, with_stamps) == evaluate(
            pattern, columns, without
        )


class TestComplexityGuard:
    def test_explosion_returns_sentinel(self):
        # Many adjacent sub-variables with permissive stamps force the
        # enumeration over the budget.
        fragments = []
        for _ in range(10):
            fragments.extend([None, "-"])
        pattern = pattern_from_fragments(fragments)
        stamps = [CapsuleStamp.permissive()] * pattern.num_subvars
        result = locate(
            pattern, stamps, "a-a-a-a-a-a-a-a", MatchMode.SUBSTRING, use_stamps=False
        )
        assert result is TOO_COMPLEX

    def test_budget_is_tunable(self):
        # The same enumeration succeeds with the default budget but trips
        # a tiny one — lets tests force the fallback on small vectors.
        pattern = pattern_from_fragments(["block_", None, "F8", None])
        stamps = [CapsuleStamp.permissive()] * 2
        ok = locate(pattern, stamps, "8F8F", MatchMode.SUBSTRING)
        assert ok is not TOO_COMPLEX and ok
        tiny = locate(
            pattern, stamps, "8F8F", MatchMode.SUBSTRING, max_candidates=1
        )
        assert tiny is TOO_COMPLEX
