"""Tests for the extensions: trigram Bloom block pruning and sessions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.common.binio import BinaryReader, BinaryWriter
from repro.common.bloom import BloomFilter, trigrams
from repro.query.blockfilter import command_might_match
from repro.query.language import parse_query
from tests.conftest import make_mixed_lines

BLOOM_CONFIG = LogGrepConfig(block_bytes=8 * 1024, use_block_bloom=True)


class TestBloomFilter:
    def test_trigrams(self):
        assert trigrams("abcd") == {"abc", "bcd"}
        assert trigrams("ab") == set()

    def test_membership(self):
        bloom = BloomFilter.build(["abc", "bcd"])
        assert bloom.might_contain("abc")
        assert not bloom.might_contain("zzz")

    def test_substring_check_sound(self):
        text = "ERROR write to file: /root/usr/admin/7.log"
        bloom = BloomFilter.build(trigrams(text))
        # Every actual substring must pass.
        for start in range(0, len(text) - 4):
            assert bloom.might_contain_text(text[start : start + 5])

    def test_substring_check_prunes(self):
        bloom = BloomFilter.build(trigrams("all systems nominal"))
        assert not bloom.might_contain_text("EXPLOSION")

    def test_short_fragments_pass(self):
        bloom = BloomFilter.build(["xyz"])
        assert bloom.might_contain_text("ab")
        assert bloom.might_contain_text("")

    def test_serialization(self):
        bloom = BloomFilter.build(trigrams("hello bloom world"))
        w = BinaryWriter()
        bloom.write(w)
        assert BloomFilter.read(BinaryReader(w.getvalue())) == bloom

    @settings(max_examples=30)
    @given(st.text(alphabet="abcdef 123", min_size=3, max_size=40))
    def test_never_lossy(self, text):
        bloom = BloomFilter.build(trigrams(text))
        for length in (3, 4, 6):
            for start in range(0, max(0, len(text) - length) + 1):
                fragment = text[start : start + length]
                if fragment and fragment in text:
                    assert bloom.might_contain_text(fragment)


class TestBloomShortLines:
    """Lines shorter than three characters produce no trigrams at all.

    The resulting filter is the MIN_BITS all-zero bloom, which must stay
    *sound*: it may (and does) prune every keyword of length ≥ 3, while
    shorter keywords — which trigram pruning cannot check — pass through
    to the exact match stages.
    """

    SHORT_LINES = ["a", "ab", "x", "yz", "q", "no"] * 40

    def test_empty_bloom_from_short_lines(self):
        grams = set()
        for line in self.SHORT_LINES:
            grams |= trigrams(line)
        assert grams == set()
        bloom = BloomFilter.build(grams)
        assert not bloom.might_contain_text("ERROR")  # sound prune
        assert bloom.might_contain_text("ab")  # too short to check

    @pytest.fixture(scope="class")
    def store(self):
        lg = LogGrep(config=BLOOM_CONFIG)
        lg.compress(self.SHORT_LINES)
        return lg

    def test_long_keyword_prunes_every_block(self, store):
        result = store.grep("ERROR")
        assert result.count == 0
        assert result.stats.blocks_pruned == len(store.store.names())
        assert result.stats.capsules_decompressed == 0

    def test_short_keyword_still_matches(self, store):
        for keyword in ("ab", "yz", "a"):
            assert store.grep(keyword).lines == grep_lines(
                keyword, self.SHORT_LINES
            )

    def test_round_trip_exact(self, store):
        assert store.decompress_all() == self.SHORT_LINES

    def test_mixed_block_keeps_long_lines_findable(self):
        """Short lines sharing a block with normal lines must not mask
        the normal lines' trigrams."""
        lines = ["a", "ERROR write failed", "ab", "all systems nominal"] * 30
        lg = LogGrep(config=BLOOM_CONFIG)
        lg.compress(lines)
        assert lg.grep("ERROR").lines == grep_lines("ERROR", lines)
        assert lg.grep("nominal").count == 30
        assert lg.decompress_all() == lines


class TestCommandFilter:
    BLOOM = BloomFilter.build(trigrams("ERROR write failed code=3"))

    def test_positive_literal_checked(self):
        assert command_might_match(self.BLOOM, parse_query("ERROR"))
        assert not command_might_match(self.BLOOM, parse_query("WARNING"))

    def test_disjunct_semantics(self):
        assert command_might_match(self.BLOOM, parse_query("WARNING or ERROR"))
        assert not command_might_match(self.BLOOM, parse_query("WARNING or PANIC"))

    def test_negated_terms_cannot_prune(self):
        assert command_might_match(self.BLOOM, parse_query("ERROR not MISSING"))
        assert command_might_match(self.BLOOM, parse_query("not MISSING"))

    def test_wildcard_literal_runs(self):
        assert command_might_match(self.BLOOM, parse_query("ERR*iled"))
        assert not command_might_match(self.BLOOM, parse_query("PAN*iled"))

    def test_ignore_case_passes(self):
        command = parse_query("warning", ignore_case=True)
        assert command_might_match(self.BLOOM, command)


class TestBloomIntegration:
    @pytest.fixture(scope="class")
    def corpus(self):
        return make_mixed_lines(900, seed=31)

    @pytest.fixture(scope="class")
    def store(self, corpus):
        lg = LogGrep(config=BLOOM_CONFIG)
        lg.compress(corpus)
        return lg

    def test_results_unchanged(self, store, corpus):
        for command in ["ERROR", "read AND bk.FF", "state: NOT SUC"]:
            assert store.grep(command).lines == grep_lines(command, corpus)

    def test_miss_prunes_blocks(self, store):
        result = store.grep("keyword_that_never_occurs")
        assert result.count == 0
        assert result.stats.blocks_pruned == len(store.store.names())
        assert result.stats.capsules_decompressed == 0

    def test_partial_prune(self, store, corpus):
        # ERR#16 codes are spread over blocks; some rare id occurs in few.
        rare = next(l for l in corpus if "ERR#16" in l)
        token = next(t for t in rare.split(" ") if "ERR#16" in t)
        result = store.grep(token)
        assert result.lines == grep_lines(token, corpus)

    def test_bloom_survives_roundtrip(self, store):
        from repro.capsule.box import CapsuleBox

        name = store.store.names()[0]
        data = store.store.get(name)
        assert CapsuleBox.read_bloom(data) is not None
        assert CapsuleBox.deserialize(data).bloom is not None

    def test_no_bloom_by_default(self, corpus):
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(corpus)
        from repro.capsule.box import CapsuleBox

        data = lg.store.get(lg.store.names()[0])
        assert CapsuleBox.read_bloom(data) is None
        result = lg.grep("keyword_that_never_occurs")
        assert result.stats.blocks_pruned == 0


class TestSession:
    def test_session_results_and_reuse(self):
        corpus = make_mixed_lines(600, seed=33)
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(corpus)
        with lg.open_session() as session:
            first = session.grep("ERROR")
            assert first.lines == grep_lines("ERROR", corpus)
            # Boxes are pinned: repeated queries skip deserialization.
            assert lg._box_cache
            refined = session.grep("ERROR AND code=3")
            assert refined.lines == grep_lines("ERROR AND code=3", corpus)
            assert session.queries_run == 2
        assert not lg._box_cache  # unpinned on close

    def test_session_count(self):
        corpus = make_mixed_lines(400, seed=34)
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(corpus)
        with lg.open_session() as session:
            assert session.count("ERROR") == len(grep_lines("ERROR", corpus))
