"""Lifecycle tier engine: hot → warm → cold demotion, the cross-archive
shared template store, and the sidecar-rewrite guarantees.

The load-bearing regression here is the zero-read property: after a cold
demotion merges blocks, a time-pruned query against the rewritten archive
must cost **zero** block reads — the sidecar was rewritten with fresh v2
summaries (timestamps included) and the merged-away names discarded.
"""

from __future__ import annotations

import pytest

from tests.conftest import make_mixed_lines
from repro.blockstore.index import load_index
from repro.blockstore.shared import SharedTemplateStore, as_resolver
from repro.blockstore.store import MemoryStore
from repro.capsule.box import FLAG_SHARED_TEMPLATES, CapsuleBox
from repro.common.errors import FormatError
from repro.common.timeparse import parse_age_arg
from repro.core.config import LogGrepConfig
from repro.core.lifecycle import (
    LifecycleManager,
    Tier,
    TierPolicy,
    archive_offline,
    load_tiers,
    tier_config,
)
from repro.core.loggrep import LogGrep
from repro.staticparse.cache import template_signature

DAY = 86400.0
#: 2024-01-01 00:00:00 UTC.
EPOCH_JAN1 = 1704067200.0


def _ts_lines(n, day, seed=0):
    """Timestamped mixed lines, all within 2024-01-<day>."""
    import random

    rng = random.Random(seed)
    out = []
    for i in range(n):
        stamp = f"2024-01-{day:02d} {i // 3600:02d}:{(i // 60) % 60:02d}:{i % 60:02d}"
        if i % 3 == 0:
            out.append(f"{stamp} T{1000 + rng.randrange(40)} bk.{rng.randrange(256):02X}.n read")
        elif i % 3 == 1:
            out.append(f"{stamp} T{1000 + rng.randrange(40)} state: "
                       f"{'ERR' if rng.randrange(4) == 0 else 'SUC'}#16{rng.randrange(100):02d}")
        else:
            out.append(f"{stamp} gc pause {rng.randrange(1, 500)}ms")
    return out


def _build(lines, store=None, **overrides):
    store = store if store is not None else MemoryStore()
    lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=2048, **overrides))
    lg.compress(lines)
    return lg


class CountingStore(MemoryStore):
    """MemoryStore that counts block reads (aux sidecar reads are free —
    the sidecar is the thing that *saves* reads)."""

    def __init__(self):
        super().__init__()
        self.reads = 0

    def get(self, name):
        self.reads += 1
        return super().get(name)

    def get_range(self, name, offset, length):
        self.reads += 1
        return super().get_range(name, offset, length)


# ======================================================================
# tier configs and the age parser
# ======================================================================
class TestTierConfig:
    def test_hot_uses_speed_tier_codec(self):
        base = LogGrepConfig(block_bytes=2048)
        assert tier_config(Tier.HOT, base).codec_speed_tier is True

    def test_warm_is_archive_default(self):
        base = LogGrepConfig(block_bytes=2048, codec_speed_tier=True)
        warm = tier_config(Tier.WARM, base)
        assert warm.codec_speed_tier is False
        assert warm.preset == base.preset
        assert warm.block_bytes == base.block_bytes

    def test_cold_merges_and_maxes_preset(self):
        base = LogGrepConfig(block_bytes=2048)
        cold = tier_config(Tier.COLD, base)
        assert cold.preset == 9
        assert cold.block_bytes == 4 * base.block_bytes
        assert cold.use_block_bloom is False

    def test_tier_ranks_order(self):
        assert Tier.HOT.rank < Tier.WARM.rank < Tier.COLD.rank


class TestParseAgeArg:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("3600", 3600.0),
            ("3600s", 3600.0),
            ("45m", 2700.0),
            ("12h", 43200.0),
            ("30d", 30 * 86400.0),
            ("2w", 2 * 604800.0),
            (" 5D ", 5 * 86400.0),
            ("0s", 0.0),
            ("1.5h", 5400.0),
        ],
    )
    def test_values(self, text, expected):
        assert parse_age_arg(text) == expected

    @pytest.mark.parametrize("text", ["", "soon", "d", "-1h", "3x"])
    def test_rejects(self, text):
        with pytest.raises(ValueError):
            parse_age_arg(text)


class TestTierPolicy:
    def test_age_thresholds(self):
        policy = TierPolicy()
        assert policy.tier_for(0.0) is Tier.HOT
        assert policy.tier_for(6 * DAY) is Tier.HOT
        assert policy.tier_for(7 * DAY) is Tier.WARM
        assert policy.tier_for(29 * DAY) is Tier.WARM
        assert policy.tier_for(30 * DAY) is Tier.COLD

    def test_query_rate_holds_at_warm(self):
        policy = TierPolicy(max_cold_queries_per_day=1.0)
        assert policy.tier_for(60 * DAY, queries_per_day=5.0) is Tier.WARM
        assert policy.tier_for(60 * DAY, queries_per_day=0.5) is Tier.COLD

    def test_recommend_applies_equation_1(self):
        policy = TierPolicy()
        # A real ratio gain: recompression pays off, COLD stands.
        assert (
            policy.recommend(
                60 * DAY,
                nearline_ratio=10.0,
                offline_ratio=20.0,
                recompress_speed_mb_s=50.0,
            )
            is Tier.COLD
        )
        # No ratio gain: break-even is infinite, held at WARM.
        assert (
            policy.recommend(
                60 * DAY,
                nearline_ratio=20.0,
                offline_ratio=20.0,
                recompress_speed_mb_s=50.0,
            )
            is Tier.WARM
        )
        # Without measured ratios the age decision stands unchecked.
        assert policy.recommend(60 * DAY) is Tier.COLD


# ======================================================================
# in-place demotion
# ======================================================================
class TestWarmDemotion:
    def test_rewrites_in_place_preserving_names_and_results(self):
        lines = make_mixed_lines(400, seed=3)
        lg = _build(lines, codec_speed_tier=True)
        names_before = list(lg.store.names())
        hits_before = lg.grep("state: ERR")
        manager = LifecycleManager(lg.store, lg.config)
        report = manager.demote(Tier.WARM)
        assert report.blocks_before == report.blocks_after == len(names_before)
        assert list(lg.store.names()) == names_before
        assert manager.tiers == {name: Tier.WARM for name in names_before}
        after = manager.open_reader().grep("state: ERR")
        assert after.lines == hits_before.lines
        assert after.line_ids == hits_before.line_ids

    def test_demote_hot_rejected(self):
        manager = LifecycleManager(MemoryStore())
        with pytest.raises(ValueError):
            manager.demote(Tier.HOT)

    def test_warm_is_idempotent(self):
        lg = _build(make_mixed_lines(200, seed=4))
        manager = LifecycleManager(lg.store, lg.config)
        manager.demote(Tier.WARM)
        bytes_after_first = manager.status().total_bytes()
        report = manager.demote(Tier.WARM)  # nothing left below WARM
        assert report.bytes_after == bytes_after_first


class TestColdDemotion:
    def test_merges_blocks_and_preserves_results(self):
        lines = make_mixed_lines(600, seed=5)
        lg = _build(lines)
        hits_before = lg.grep("read")
        blocks_before = len(lg.store.names())
        assert blocks_before >= 3
        manager = LifecycleManager(lg.store, lg.config)
        report = manager.demote(Tier.COLD)
        assert report.blocks_after < blocks_before
        reader = manager.open_reader()
        after = reader.grep("read")
        assert after.lines == hits_before.lines
        assert after.line_ids == hits_before.line_ids
        assert reader.decompress_all() == lines
        assert all(tier is Tier.COLD for tier in manager.tiers.values())

    def test_status_accounts_every_block(self):
        lg = _build(make_mixed_lines(400, seed=6))
        manager = LifecycleManager(lg.store, lg.config)
        status = manager.status()
        assert status.blocks[Tier.HOT] == len(lg.store.names())
        manager.demote(Tier.COLD)
        status = manager.status()
        assert status.blocks[Tier.HOT] == status.blocks[Tier.WARM] == 0
        assert status.blocks[Tier.COLD] == len(lg.store.names())
        assert status.total_bytes() == sum(
            lg.store.size(n) for n in lg.store.names()
        )

    def test_tier_map_persists(self):
        lg = _build(make_mixed_lines(300, seed=7))
        LifecycleManager(lg.store, lg.config).demote(Tier.COLD)
        # A fresh manager over the same store reloads the map from the
        # tiers.json aux blob.
        reloaded = load_tiers(lg.store)
        assert reloaded == {n: Tier.COLD for n in lg.store.names()}
        assert LifecycleManager(lg.store).tiers == reloaded


class TestEligiblePrefix:
    def test_old_prefix_only(self):
        lines = _ts_lines(150, day=1) + _ts_lines(150, day=8, seed=1)
        lg = _build(lines)
        manager = LifecycleManager(lg.store, lg.config)
        now = EPOCH_JAN1 + 9 * DAY  # 2024-01-10
        eligible = manager.eligible_prefix(5 * DAY, now=now)
        names = list(lg.store.names())
        # Day-1 blocks qualify (age ≥ 9 days); day-8 blocks do not.
        assert 0 < len(eligible) < len(names)
        assert eligible == names[: len(eligible)]
        index = load_index(lg.store)
        for name in eligible:
            assert index.get(name).max_ts <= now - 5 * DAY
        assert index.get(names[len(eligible)]).max_ts > now - 5 * DAY

    def test_demote_respects_age_cutoff(self):
        lines = _ts_lines(150, day=1) + _ts_lines(150, day=8, seed=1)
        lg = _build(lines)
        hits = lg.grep("state: ERR")
        manager = LifecycleManager(lg.store, lg.config)
        now = EPOCH_JAN1 + 9 * DAY
        manager.demote(Tier.COLD, older_than_seconds=5 * DAY, now=now)
        status = manager.status()
        assert status.blocks[Tier.COLD] > 0
        assert status.blocks[Tier.HOT] > 0  # the young suffix stayed put
        after = manager.open_reader().grep("state: ERR")
        assert after.lines == hits.lines and after.line_ids == hits.line_ids

    def test_untimestamped_blocks_are_eligible(self):
        lg = _build(make_mixed_lines(200, seed=8))  # no timestamps at all
        manager = LifecycleManager(lg.store, lg.config)
        assert manager.eligible_prefix(365 * DAY) == list(lg.store.names())


# ======================================================================
# the sidecar-rewrite regression (satellite 1)
# ======================================================================
class TestSidecarRewrite:
    def test_cold_demote_rewrites_sidecar(self):
        lines = _ts_lines(400, day=1)
        lg = _build(lines)
        stale_names = set(lg.store.names())
        manager = LifecycleManager(lg.store, lg.config)
        manager.demote(Tier.COLD)
        index = load_index(lg.store)
        live_names = set(lg.store.names())
        # Exactly the live blocks are indexed; merged-away names are gone.
        assert set(index.blocks) == live_names
        assert not (stale_names - live_names) & set(index.blocks)
        # Fresh v2 summaries carry the merged blocks' time ranges.
        for name in live_names:
            summary = index.get(name)
            assert summary.min_ts is not None and summary.max_ts is not None
            assert EPOCH_JAN1 <= summary.min_ts <= summary.max_ts < EPOCH_JAN1 + DAY
            assert summary.num_lines > 0

    def test_pruned_query_costs_zero_reads_after_demote(self):
        """The satellite-1 acceptance test: a time-pruned query against a
        recompressed archive performs zero store reads."""
        lines = _ts_lines(400, day=1)
        store = CountingStore()
        _build(lines, store=store)
        LifecycleManager(store, LogGrepConfig(block_bytes=2048)).demote(Tier.COLD)
        store.reads = 0
        reader = LogGrep(store=store, config=LogGrepConfig(block_bytes=2048))
        # A window a month after every line: all blocks time-pruned.
        result = reader.grep(
            "state", from_time=EPOCH_JAN1 + 30 * DAY, to_time=EPOCH_JAN1 + 31 * DAY
        )
        assert result.count == 0
        assert store.reads == 0

    def test_pruned_query_costs_zero_reads_after_archive_offline(self):
        lines = _ts_lines(400, day=1)
        lg = _build(lines)
        store = CountingStore()
        offline, _ = archive_offline(lg, store=store)
        store.reads = 0
        reader = LogGrep(store=store, config=offline.config)
        result = reader.grep(
            "state", from_time=EPOCH_JAN1 + 30 * DAY, to_time=EPOCH_JAN1 + 31 * DAY
        )
        assert result.count == 0
        assert store.reads == 0

    def test_in_window_query_still_correct_after_demote(self):
        lines = _ts_lines(400, day=1)
        lg = _build(lines)
        want = lg.grep("state: ERR", from_time=EPOCH_JAN1, to_time=EPOCH_JAN1 + DAY)
        manager = LifecycleManager(lg.store, lg.config)
        manager.demote(Tier.COLD)
        got = manager.open_reader().grep(
            "state: ERR", from_time=EPOCH_JAN1, to_time=EPOCH_JAN1 + DAY
        )
        assert got.lines == want.lines and got.line_ids == want.line_ids


# ======================================================================
# the cross-archive shared template store
# ======================================================================
class TestSharedStore:
    def _cold_with_shared(self, lines, shared):
        lg = _build(lines)
        manager = LifecycleManager(lg.store, lg.config, shared=shared)
        manager.demote(Tier.COLD)
        return lg.store, manager

    def test_cold_boxes_carry_the_shared_flag(self):
        shared = SharedTemplateStore(MemoryStore())
        store, _ = self._cold_with_shared(make_mixed_lines(300, seed=9), shared)
        resolver = as_resolver(shared, store)
        for name in store.names():
            data = store.get(name)
            box = CapsuleBox.deserialize(data, templates=resolver)
            assert box.num_lines > 0
        # Flag byte is set in the container header.
        assert shared.total_bytes() > 0

    def test_second_identical_archive_dedups_fully(self):
        lines = make_mixed_lines(400, seed=10)
        shared = SharedTemplateStore(MemoryStore())
        self._cold_with_shared(lines, shared)
        bytes_after_first = shared.total_bytes()
        assert bytes_after_first > 0
        self._cold_with_shared(lines, shared)
        # Identical content → identical content ids → zero new bytes.
        assert shared.total_bytes() == bytes_after_first

    def test_shared_archive_queries_match_plain(self):
        lines = make_mixed_lines(400, seed=11)
        plain = _build(lines)
        want = plain.grep("read")
        shared = SharedTemplateStore(MemoryStore())
        store, manager = self._cold_with_shared(lines, shared)
        got = manager.open_reader().grep("read")
        assert got.lines == want.lines
        reader = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=2048), templates=shared
        )
        assert reader.grep("read").lines == want.lines

    def test_opening_without_resolver_fails_actionably(self):
        shared = SharedTemplateStore(MemoryStore())
        store, _ = self._cold_with_shared(make_mixed_lines(300, seed=12), shared)
        name = store.names()[0]
        with pytest.raises(FormatError, match="resolver"):
            CapsuleBox.deserialize(store.get(name))
        # A resolver with neither store nor bank fails at resolve time
        # with a message that names the missing content.
        with pytest.raises(FormatError):
            CapsuleBox.deserialize(
                store.get(name), templates=as_resolver(None, store)
            ).groups  # resolution is eager: deserialize itself raises

    def test_export_bank_makes_archive_self_contained(self):
        shared = SharedTemplateStore(MemoryStore())
        lines = make_mixed_lines(300, seed=13)
        store, manager = self._cold_with_shared(lines, shared)
        size = manager.export_bank()
        assert size > 0
        # No shared store attached: the bank alone resolves everything.
        reader = LogGrep(store=store, config=LogGrepConfig(block_bytes=2048))
        assert reader.decompress_all() == lines


class TestTemplateSignature:
    def test_deterministic_and_content_addressed(self):
        key = ("worker", None, "read")
        assert template_signature(key) == template_signature(("worker", None, "read"))
        assert len(template_signature(key)) == 16
        assert template_signature(key) != template_signature(("worker", None, "write"))
        # None (a variable slot) and the empty string are distinct tokens.
        assert template_signature((None,)) != template_signature(("",))
