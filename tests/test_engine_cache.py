"""Tests for the per-block query engine and the Query Cache."""

import pytest

from repro.baselines.evalutil import grep_lines
from repro.blockstore.block import LogBlock
from repro.core.compressor import compress_block
from repro.core.config import LogGrepConfig
from repro.query.cache import QueryCache
from repro.query.engine import BlockEngine
from repro.query.language import parse_query
from repro.common.rowset import RowSet
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def engine_and_lines():
    lines = make_mixed_lines(500)
    box = compress_block(LogBlock(0, 0, lines), LogGrepConfig())
    return BlockEngine(box), lines


def hits_to_line_ids(box, hits):
    ids = []
    for group_idx, rows in hits.items():
        group = box.groups[group_idx]
        ids.extend(group.line_ids[row] for row in rows)
    return sorted(ids)


def reference_ids(lines, command):
    matched = set(grep_lines(command, lines))
    # grep_lines returns lines; map back to ids (duplicates share text, so
    # compare via per-line evaluation instead).
    from repro.baselines.evalutil import line_matches

    parsed = parse_query(command)
    return [i for i, line in enumerate(lines) if line_matches(parsed, line)]


QUERIES = [
    "ERROR",
    "read",
    "state: ERR",
    "ERR#16",
    "read AND bk.FF",
    "state: NOT SUC",
    "ERROR OR read",
    "write to file: AND code=3",
    "bk.F?.1*",
    "T1* AND read",
]


class TestEngine:
    @pytest.mark.parametrize("command", QUERIES)
    def test_matches_reference(self, engine_and_lines, command):
        engine, lines = engine_and_lines
        hits = engine.execute(parse_query(command))
        assert hits_to_line_ids(engine.box, hits) == reference_ids(lines, command)

    def test_no_hits(self, engine_and_lines):
        engine, _ = engine_and_lines
        assert engine.execute(parse_query("nosuchtoken")) == {}

    def test_template_hit_returns_full_groups(self, engine_and_lines):
        engine, lines = engine_and_lines
        hits = engine.execute(parse_query("read"))
        expected = reference_ids(lines, "read")
        assert hits_to_line_ids(engine.box, hits) == expected

    def test_resolver_hook_used(self, engine_and_lines):
        engine, _ = engine_and_lines
        calls = []

        def resolver(search):
            calls.append(search.text)
            return engine.search_string_rows(search)

        engine.execute(parse_query("ERROR AND read"), resolver)
        assert calls == ["ERROR", "read"]


class TestQueryCache:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get("b0", "ERROR") is None
        rows = {0: RowSet.from_rows(4, [1])}
        cache.put("b0", "ERROR", rows)
        assert cache.get("b0", "ERROR") == rows
        assert cache.hits == 1 and cache.misses == 1

    def test_keyed_per_block(self):
        cache = QueryCache()
        cache.put("b0", "q", {})
        assert cache.get("b1", "q") is None

    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put("b", "q1", {})
        cache.put("b", "q2", {})
        cache.get("b", "q1")  # refresh q1
        cache.put("b", "q3", {})  # evicts q2
        assert cache.get("b", "q2") is None
        assert cache.get("b", "q1") is not None

    def test_invalidate_block(self):
        cache = QueryCache()
        cache.put("b0", "q", {})
        cache.put("b1", "q", {})
        cache.invalidate_block("b0")
        assert cache.get("b0", "q") is None
        assert cache.get("b1", "q") is not None

    def test_clear(self):
        cache = QueryCache()
        cache.put("b", "q", {})
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            QueryCache(capacity=0)


class TestCapsuleValueCache:
    def _capsule(self, values):
        from repro.capsule.capsule import Capsule

        return Capsule.pack_fixed(values)

    def test_decode_happens_once(self):
        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=100)
        capsule = self._capsule(["a", "bb", "ccc"])
        calls = []

        def loader():
            calls.append(1)
            return capsule.values()

        assert cache.get(capsule, loader) == ["a", "bb", "ccc"]
        assert cache.get(capsule, loader) == ["a", "bb", "ccc"]
        assert len(calls) == 1

    def test_value_at_uses_cached_column(self):
        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=100)
        capsule = self._capsule(["x", "y"])
        assert cache.value_at(capsule, 1) == "y"  # no column cached yet
        cache.get(capsule)
        assert cache.value_at(capsule, 0) == "x"

    def test_capacity_counts_values_not_entries(self):
        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=5)
        big = self._capsule(["v"] * 4)
        small = self._capsule(["w"] * 2)
        cache.get(big)
        cache.get(small)  # 4 + 2 > 5 → big (LRU) must go
        assert cache.peek(big) is None
        assert cache.peek(small) is not None
        assert cache.cached_values == 2

    def test_oversized_column_not_cached(self):
        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=3)
        capsule = self._capsule(["v"] * 10)
        assert cache.get(capsule) == ["v"] * 10
        assert len(cache) == 0

    def test_entry_dies_with_capsule(self):
        import gc

        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=100)
        capsule = self._capsule(["a", "b"])
        cache.get(capsule)
        assert len(cache) == 1
        del capsule
        gc.collect()
        assert len(cache) == 0
        assert cache.cached_values == 0

    def test_set_capacity_shrinks(self):
        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=100)
        keep = [self._capsule([str(i)] * 4) for i in range(5)]
        for capsule in keep:
            cache.get(capsule)
        cache.set_capacity(8)
        assert cache.cached_values <= 8
        assert cache.peek(keep[-1]) is not None  # most recent survives

    def test_capacity_validation(self):
        from repro.query.cache import CapsuleValueCache

        with pytest.raises(ValueError):
            CapsuleValueCache(capacity_values=0)

    def test_discard_reentrant_while_lock_held(self):
        """_discard is a weakref.finalize callback, so the GC can run it
        on the SAME thread while _store holds the cache lock (any
        allocation in the critical section may trigger a collection).
        With a non-reentrant lock that self-deadlocks; this pins the
        reentrant behavior without depending on GC timing."""
        import threading

        from repro.query.cache import CapsuleValueCache

        cache = CapsuleValueCache(capacity_values=10)
        capsule = self._capsule(["a", "b"])
        cache.get(capsule)

        done = threading.Event()

        def reenter():
            with cache._lock:  # what _store holds when GC fires
                cache._discard(id(capsule))
            done.set()

        worker = threading.Thread(target=reenter, daemon=True)
        worker.start()
        worker.join(timeout=5)
        assert done.is_set(), "ValueCache._discard deadlocked under its own lock"
        assert cache.peek(capsule) is None
