"""Tests for the query-language extensions: parentheses, ignore-case,
count-only queries, and DNF normalization."""

import pytest

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines, line_matches
from repro.common.errors import QuerySyntaxError
from repro.query.language import parse_query
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(800, seed=5)


@pytest.fixture(scope="module")
def store(corpus):
    lg = LogGrep(config=LogGrepConfig(block_bytes=16 * 1024))
    lg.compress(corpus)
    return lg


class TestParentheses:
    def test_grouping_changes_meaning(self):
        # Without parens: a OR (b AND c); with parens: (a OR b) AND c.
        flat = parse_query("aa or bb and cc")
        grouped = parse_query("( aa or bb ) and cc")
        assert [[t.search.text for t in d] for d in flat.disjuncts] == [
            ["aa"],
            ["bb", "cc"],
        ]
        assert [[t.search.text for t in d] for d in grouped.disjuncts] == [
            ["aa", "cc"],
            ["bb", "cc"],
        ]

    def test_nested(self):
        q = parse_query("( ( aa or bb ) and ( cc or dd ) )")
        assert len(q.disjuncts) == 4

    def test_negated_group_de_morgan(self):
        q = parse_query("xx not ( aa or bb )")
        # ¬(a ∨ b) = ¬a ∧ ¬b
        (disjunct,) = q.disjuncts
        assert [(t.search.text, t.negated) for t in disjunct] == [
            ("xx", False),
            ("aa", True),
            ("bb", True),
        ]

    def test_unbalanced_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("( aa or bb")
        with pytest.raises(QuerySyntaxError):
            parse_query("aa )")

    def test_too_complex_rejected(self):
        branches = " and ".join(f"( a{i} or b{i} )" for i in range(10))
        with pytest.raises(QuerySyntaxError):
            parse_query(branches)

    def test_grouped_evaluation_matches_reference(self, store, corpus):
        command = "( ERROR or read ) and T1* not bk.FF"

        def reference(line):
            import re

            tokens = line.split(" ")
            has = lambda frag: any(frag in t for t in tokens)  # noqa: E731
            t1 = any(re.search(r"T1[^ ]*", t) for t in tokens)
            return (has("ERROR") or has("read")) and t1 and not has("bk.FF")

        expected = [l for l in corpus if reference(l)]
        assert store.grep(command).lines == expected


class TestIgnoreCase:
    def test_reference_semantics(self):
        parsed = parse_query("error", ignore_case=True)
        assert line_matches(parsed, "an ERROR happened")
        assert line_matches(parsed, "an Error happened")
        assert not line_matches(parsed, "all fine")

    def test_grep_ignore_case(self, store, corpus):
        result = store.grep("error", ignore_case=True)
        expected = [l for l in corpus if "error" in l.lower()]
        assert result.lines == expected
        # And sanity: it differs from the case-sensitive result.
        assert result.count > store.grep("error").count

    def test_ignore_case_multi_token(self, store, corpus):
        expected = grep_lines("WRITE TO FILE:", corpus, ignore_case=True)
        assert store.grep("WRITE TO FILE:", ignore_case=True).lines == expected
        assert expected  # the corpus has lowercase "write to file:" lines

    def test_cache_keys_distinct(self, store):
        store.clear_query_cache()
        sensitive = store.grep("error")
        insensitive = store.grep("error", ignore_case=True)
        assert insensitive.count != sensitive.count

    def test_wildcard_plus_ignore_case(self, store, corpus):
        import re

        regex = re.compile(r"bk\.f.\.1[^ ]*", re.IGNORECASE)
        expected = [
            l for l in corpus if any(regex.search(t) for t in l.split(" "))
        ]
        assert store.grep("BK.F?.1*", ignore_case=True).lines == expected


class TestCount:
    def test_count_matches_grep(self, store, corpus):
        for command in ["ERROR", "read AND bk.FF", "state: NOT SUC"]:
            assert store.count(command) == store.grep(command).count

    def test_count_zero(self, store):
        assert store.count("absent_keyword_zzz") == 0

    def test_count_cheaper_than_grep(self, corpus):
        lg = LogGrep(config=LogGrepConfig(block_bytes=16 * 1024))
        lg.compress(corpus)
        from repro.query.plan import OutputMode

        # count() must not touch more capsules than grep() does.
        lg.clear_query_cache()
        grep_stats = lg.grep("read").stats
        lg.clear_query_cache()
        result = lg._executor.run("read", OutputMode.COUNT)
        assert result.count == grep_stats.entries_matched
        assert (
            result.stats.capsules_decompressed
            <= grep_stats.capsules_decompressed
        )
