"""Tests for streaming ingestion and the compression profiler."""

import pytest

from repro.baselines.evalutil import grep_lines
from repro.bench.profile import profile_compression
from repro.blockstore.store import MemoryStore
from repro.core.config import LogGrepConfig, ablated
from repro.core.streaming import StreamingCompressor
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=8 * 1024)


class TestStreamingCompressor:
    def test_stream_then_query(self):
        lines = make_mixed_lines(700, seed=3)
        with StreamingCompressor(config=CONFIG) as stream:
            for line in lines:
                stream.append(line)
            report = stream.flush()
            assert report.blocks > 1
            assert report.raw_bytes == sum(len(l) + 1 for l in lines)
            reader = stream.open_reader()
            assert reader.grep("ERROR").lines == grep_lines("ERROR", lines)
            assert reader.decompress_all() == lines

    def test_matches_batch_compression(self):
        """Streaming produces exactly the blocks batch compression would."""
        from repro import LogGrep

        lines = make_mixed_lines(600, seed=9)
        batch = LogGrep(store=MemoryStore(), config=CONFIG)
        batch.compress(lines)

        store = MemoryStore()
        with StreamingCompressor(store=store, config=CONFIG) as stream:
            stream.extend(lines)
        assert store.names() == batch.store.names()
        for name in store.names():
            assert store.get(name) == batch.store.get(name)

    def test_incremental_flush(self):
        lines = make_mixed_lines(400, seed=4)
        stream = StreamingCompressor(config=CONFIG)
        stream.extend(lines[:200])
        stream.flush()
        reader = stream.open_reader()
        first = reader.grep("ERROR").count
        stream.extend(lines[200:])
        report = stream.close()
        assert report.blocks >= 1
        reader = stream.open_reader()
        assert reader.grep("ERROR").lines == grep_lines("ERROR", lines)
        assert reader.grep("ERROR").count >= first

    def test_flush_reports_are_cumulative(self):
        """flush() reports totals since construction, never double-counted:
        compressed_bytes always equals what the store actually holds."""
        lines = make_mixed_lines(600, seed=12)
        store = MemoryStore()
        stream = StreamingCompressor(store=store, config=CONFIG)
        stream.extend(lines[:300])
        first = stream.flush()
        assert first.compressed_bytes == store.total_bytes()
        assert first.raw_bytes == sum(len(l) + 1 for l in lines[:300])

        stream.extend(lines[300:])
        second = stream.flush()
        # Cumulative, not per-interval: the second report covers the whole
        # stream and grows only by the newly appended data.
        assert second.blocks >= first.blocks
        assert second.raw_bytes == sum(len(l) + 1 for l in lines)
        assert second.compressed_bytes == store.total_bytes()
        # Elapsed is wall-clock since construction, so it is monotone and
        # speed_mb_s reads as average throughput of the stream so far.
        assert second.elapsed >= first.elapsed > 0

        final = stream.close()
        assert final.blocks == second.blocks
        assert final.compressed_bytes == store.total_bytes()

    def test_append_after_close_rejected(self):
        stream = StreamingCompressor(config=CONFIG)
        stream.close()
        with pytest.raises(RuntimeError):
            stream.append("x")

    def test_backlog_observable(self):
        stream = StreamingCompressor(config=CONFIG, pipeline_depth=1)
        assert stream.backlog == 0
        stream.extend(make_mixed_lines(300))
        stream.close()
        assert stream.backlog == 0

    def test_pipeline_depth_validation(self):
        with pytest.raises(ValueError):
            StreamingCompressor(pipeline_depth=0)

    def test_empty_stream(self):
        with StreamingCompressor(config=CONFIG) as stream:
            report = stream.flush()
        assert report.blocks == 0
        assert report.raw_bytes == 0


class TestProfiler:
    def test_stage_breakdown(self):
        lines = make_mixed_lines(600, seed=7)
        profile = profile_compression(lines)
        assert profile.total_seconds > 0
        assert profile.parse_seconds > 0
        assert profile.raw_bytes == sum(len(l) + 1 for l in lines)
        assert 0 < profile.compressed_bytes < profile.raw_bytes
        assert sum(profile.vectors.values()) > 0
        assert len(profile.breakdown()) == 6  # parse/classify/3×encode/serialize

    def test_ablation_shifts_stages(self):
        lines = make_mixed_lines(600, seed=7)
        full = profile_compression(lines)
        without_real = profile_compression(lines, ablated("w/o real"))
        # With real-vector extraction disabled those vectors become plain.
        assert without_real.vectors["real"] == 0
        assert without_real.vectors["plain"] >= full.vectors["plain"]

    def test_profile_size_matches_compressor(self):
        from repro.blockstore.block import LogBlock
        from repro.core.compressor import compress_block

        lines = make_mixed_lines(300, seed=8)
        profile = profile_compression(lines)
        direct = compress_block(LogBlock(0, 0, lines), LogGrepConfig()).serialize()
        assert profile.compressed_bytes == len(direct)
