"""Tests for vector encapsulation and CapsuleBox serialization (§4.2, Fig 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockstore.block import LogBlock
from repro.capsule.assembler import (
    EncodingOptions,
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
    encode_plain,
    encode_vector,
)
from repro.capsule.box import CapsuleBox
from repro.core.compressor import compress_block
from repro.core.config import LogGrepConfig
from repro.core.reconstructor import BlockReconstructor
from repro.query.stats import QueryStats
from repro.query.vectors import QuerySettings, make_reader
from tests.conftest import make_mixed_lines


def decode_all(encoded):
    """Reconstruct every value of an encoded vector via a reader."""
    reader = make_reader(encoded, QuerySettings(), QueryStats())
    return [reader.value_at(row) for row in range(encoded.num_rows)]


class TestEncodeReal:
    def test_structure(self):
        values = [f"block_{i:X}F8{(i * 3) % 97:X}" for i in range(300)]
        encoded = encode_vector(values, EncodingOptions(seed=1))
        assert isinstance(encoded, RealEncodedVector)
        assert encoded.pattern.num_subvars == len(encoded.subvar_capsules)
        assert decode_all(encoded) == values

    def test_outliers_preserved(self):
        values = [f"req_{i}" for i in range(190)] + [
            "WEIRD!", "also weird", *[f"req_{i}" for i in range(190, 200)]
        ]
        encoded = encode_vector(values, EncodingOptions(sample_rate=1.0))
        assert isinstance(encoded, RealEncodedVector)
        assert decode_all(encoded) == values

    def test_bad_pattern_falls_back_to_trivial(self):
        # First half and second half have incompatible shapes; a sample-
        # derived pattern can cover at most ~50%, triggering the fallback.
        values = [f"aa_{i}" for i in range(100)] + [f"{i}zz!{i}" for i in range(150)]
        encoded = encode_vector(values, EncodingOptions())
        assert decode_all(encoded) == values

    def test_unpadded_layout(self):
        values = [f"k_{i}" for i in range(200)]
        encoded = encode_vector(values, EncodingOptions(use_padding=False))
        assert decode_all(encoded) == values


class TestEncodeNominal:
    def test_structure(self):
        values = (["ERR#404"] * 40 + ["SUCC"] * 50 + ["ERR#501"] * 30)
        encoded = encode_vector(values, EncodingOptions())
        assert isinstance(encoded, NominalEncodedVector)
        assert encoded.dict_size == 3
        assert decode_all(encoded) == values

    def test_region_offsets(self):
        values = ["b!1"] * 10 + ["a#22"] * 10
        encoded = encode_vector(values, EncodingOptions())
        start_slots = [
            encoded.region_start_slot(i) for i in range(len(encoded.dict_patterns))
        ]
        assert start_slots[0] == 0
        byte = encoded.region_start_byte(len(encoded.dict_patterns) - 1)
        assert byte == sum(
            p.count * p.width for p in encoded.dict_patterns[:-1]
        )

    def test_unpadded_layout(self):
        values = ["x"] * 30 + ["yy"] * 30
        encoded = encode_vector(values, EncodingOptions(use_padding=False))
        assert decode_all(encoded) == values


class TestEncodePlain:
    def test_ablation_switches_force_plain(self):
        real_values = [str(i) for i in range(100)]
        nominal_values = ["a"] * 90 + ["b"] * 10
        assert isinstance(
            encode_vector(real_values, EncodingOptions(use_real_patterns=False)),
            PlainEncodedVector,
        )
        assert isinstance(
            encode_vector(nominal_values, EncodingOptions(use_nominal_patterns=False)),
            PlainEncodedVector,
        )

    def test_plain_roundtrip(self):
        values = ["alpha", "", "omega"] * 10
        assert decode_all(encode_plain(values)) == values


@st.composite
def value_vectors(draw):
    kind = draw(st.sampled_from(["real", "nominal", "mixed"]))
    if kind == "real":
        n = draw(st.integers(min_value=1, max_value=60))
        return [f"id_{i * 7}:{i % 5}" for i in range(n)]
    if kind == "nominal":
        return draw(
            st.lists(st.sampled_from(["OK", "ERR#1", "ERR#2", "a/b/c"]), min_size=1, max_size=60)
        )
    return draw(
        st.lists(
            st.text(alphabet="ab#_0123456789", max_size=10), min_size=1, max_size=50
        )
    )


class TestEncodeProperty:
    @settings(max_examples=40)
    @given(value_vectors(), st.booleans())
    def test_any_vector_roundtrips(self, values, padded):
        encoded = encode_vector(values, EncodingOptions(use_padding=padded))
        assert decode_all(encoded) == values


class TestCapsuleBox:
    def _box(self, lines, config=None):
        return compress_block(LogBlock(0, 0, lines), config or LogGrepConfig())

    def test_serialize_deserialize_roundtrip(self):
        lines = make_mixed_lines(300)
        box = self._box(lines)
        data = box.serialize()
        loaded = CapsuleBox.deserialize(data)
        assert loaded.num_lines == box.num_lines
        assert BlockReconstructor(loaded).all_lines() == lines

    def test_magic_checked(self):
        with pytest.raises(Exception):
            CapsuleBox.deserialize(b"NOPE" + b"\x00" * 32)

    def test_version_checked(self):
        lines = make_mixed_lines(50)
        data = bytearray(self._box(lines).serialize())
        data[4] = 99
        with pytest.raises(Exception):
            CapsuleBox.deserialize(bytes(data))

    def test_truncation_detected(self):
        lines = make_mixed_lines(50)
        data = self._box(lines).serialize()
        with pytest.raises(Exception):
            CapsuleBox.deserialize(data[: len(data) // 4])

    def test_stats(self):
        box = self._box(make_mixed_lines(200))
        assert box.capsule_count() > 0
        assert box.payload_bytes() > 0

    def test_deterministic_serialization(self):
        lines = make_mixed_lines(200)
        assert self._box(lines).serialize() == self._box(lines).serialize()

    def test_unpadded_box_roundtrip(self):
        from repro.core.config import ablated

        lines = make_mixed_lines(200)
        box = self._box(lines, ablated("w/o fixed"))
        loaded = CapsuleBox.deserialize(box.serialize())
        assert BlockReconstructor(loaded).all_lines() == lines
