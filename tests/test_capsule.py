"""Tests for stamps and Capsule payloads (§4.2, §4.3, §5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capsule.capsule import (
    CODEC_LZMA,
    CODEC_RAW,
    Capsule,
    LAYOUT_FIXED,
    LAYOUT_VARIABLE,
)
from repro.capsule.stamp import CapsuleStamp
from repro.common.binio import BinaryReader, BinaryWriter
from repro.common.errors import CompressionError

nul_free = st.text(
    alphabet=st.characters(
        blacklist_characters="\x00", blacklist_categories=("Cs",)
    ),
    max_size=12,
)


class TestStamp:
    def test_of_values(self):
        stamp = CapsuleStamp.of_values(["1F", "8"])
        assert stamp.type_mask == 0b000101
        assert stamp.max_len == 2

    def test_admits_type(self):
        stamp = CapsuleStamp.of_values(["1234", "5678"])
        assert stamp.admits("12")
        assert not stamp.admits("1a")

    def test_admits_length(self):
        # Fig 6 case ②: "8F8" violates <sv1>'s len=1.
        stamp = CapsuleStamp.of_values(["8", "1"])
        assert not stamp.admits("8F8")
        assert stamp.admits("8")

    def test_empty_fragment_always_admitted(self):
        assert CapsuleStamp.of_values(["xyz"]).admits("")

    def test_permissive(self):
        stamp = CapsuleStamp.permissive()
        assert stamp.admits("anything at all ~ 123")

    def test_serialization(self):
        stamp = CapsuleStamp(0b101, 42)
        w = BinaryWriter()
        stamp.write(w)
        assert CapsuleStamp.read(BinaryReader(w.getvalue())) == stamp


class TestFixedCapsule:
    def test_roundtrip(self):
        values = ["1", "8", "2", "longer"]
        capsule = Capsule.pack_fixed(values)
        assert capsule.values() == values
        assert [capsule.value_at(i) for i in range(4)] == values
        assert capsule.width == 6
        assert capsule.count == 4

    def test_empty_values(self):
        capsule = Capsule.pack_fixed([])
        assert capsule.values() == []
        assert capsule.count == 0

    def test_all_empty_strings(self):
        capsule = Capsule.pack_fixed(["", "", ""])
        assert capsule.width == 0
        assert capsule.values() == ["", "", ""]

    def test_explicit_width(self):
        capsule = Capsule.pack_fixed(["1", "2"], width=4)
        assert capsule.width == 4
        assert capsule.values() == ["1", "2"]

    def test_value_at_out_of_range(self):
        capsule = Capsule.pack_fixed(["a"])
        with pytest.raises(IndexError):
            capsule.value_at(1)
        with pytest.raises(IndexError):
            capsule.value_at(-1)

    def test_nul_rejected(self):
        with pytest.raises(CompressionError):
            Capsule.pack_fixed(["a\x00b"])

    def test_small_payload_stays_raw(self):
        capsule = Capsule.pack_fixed(["ab"])
        assert capsule.codec == CODEC_RAW

    def test_compressible_payload_uses_lzma(self):
        capsule = Capsule.pack_fixed(["abcabcabc"] * 100)
        assert capsule.codec == CODEC_LZMA
        assert capsule.compressed_bytes < 9 * 100

    @given(st.lists(nul_free, max_size=40))
    def test_roundtrip_property(self, values):
        capsule = Capsule.pack_fixed(values)
        assert capsule.values() == values


class TestVariableCapsule:
    def test_roundtrip(self):
        values = ["alpha", "", "b", "cc"]
        capsule = Capsule.pack_variable(values)
        assert capsule.layout == LAYOUT_VARIABLE
        assert capsule.values() == values
        assert [capsule.value_at(i) for i in range(4)] == values

    def test_empty(self):
        assert Capsule.pack_variable([]).values() == []

    @given(st.lists(nul_free, max_size=40))
    def test_roundtrip_property(self, values):
        capsule = Capsule.pack_variable(values)
        assert capsule.values() == values


class TestRegionCapsule:
    def test_region_layout(self):
        # Two pattern regions with different widths (Fig 5's dictionary).
        capsule = Capsule.pack_regions(
            [["ERR#404", "ERR#501"], ["SUCC"]], widths=[7, 4]
        )
        assert capsule.region_value(0, 7) == "ERR#404"
        assert capsule.region_value(7, 7) == "ERR#501"
        assert capsule.region_value(14, 4) == "SUCC"
        assert capsule.count == 3

    def test_value_longer_than_width_rejected(self):
        with pytest.raises(CompressionError):
            Capsule.pack_regions([["toolong"]], widths=[3])

    def test_padding_within_region(self):
        capsule = Capsule.pack_regions([["ab", "c"]], widths=[4])
        assert capsule.region_value(0, 4) == "ab"
        assert capsule.region_value(4, 4) == "c"


class TestCapsuleSerialization:
    @pytest.mark.parametrize("layout", ["fixed", "variable"])
    def test_roundtrip(self, layout):
        values = ["x", "yy", "zzz"] * 20
        if layout == "fixed":
            capsule = Capsule.pack_fixed(values)
        else:
            capsule = Capsule.pack_variable(values)
        w = BinaryWriter()
        capsule.write(w)
        loaded = Capsule.read(BinaryReader(w.getvalue()))
        assert loaded.values() == values
        assert loaded.stamp == capsule.stamp
        assert loaded.width == capsule.width
