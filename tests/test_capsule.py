"""Tests for stamps and Capsule payloads (§4.2, §4.3, §5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.capsule.capsule import (
    CODEC_LZMA,
    CODEC_RAW,
    CODEC_ZLIB,
    Capsule,
    LAYOUT_FIXED,
    LAYOUT_VARIABLE,
)
from repro.capsule.stamp import CapsuleStamp
from repro.common.binio import BinaryReader, BinaryWriter
from repro.common.errors import CompressionError, FormatError

nul_free = st.text(
    alphabet=st.characters(
        blacklist_characters="\x00", blacklist_categories=("Cs",)
    ),
    max_size=12,
)


class TestStamp:
    def test_of_values(self):
        stamp = CapsuleStamp.of_values(["1F", "8"])
        assert stamp.type_mask == 0b000101
        assert stamp.max_len == 2

    def test_admits_type(self):
        stamp = CapsuleStamp.of_values(["1234", "5678"])
        assert stamp.admits("12")
        assert not stamp.admits("1a")

    def test_admits_length(self):
        # Fig 6 case ②: "8F8" violates <sv1>'s len=1.
        stamp = CapsuleStamp.of_values(["8", "1"])
        assert not stamp.admits("8F8")
        assert stamp.admits("8")

    def test_empty_fragment_always_admitted(self):
        assert CapsuleStamp.of_values(["xyz"]).admits("")

    def test_permissive(self):
        stamp = CapsuleStamp.permissive()
        assert stamp.admits("anything at all ~ 123")

    def test_serialization(self):
        stamp = CapsuleStamp(0b101, 42)
        w = BinaryWriter()
        stamp.write(w)
        assert CapsuleStamp.read(BinaryReader(w.getvalue())) == stamp


class TestFixedCapsule:
    def test_roundtrip(self):
        values = ["1", "8", "2", "longer"]
        capsule = Capsule.pack_fixed(values)
        assert capsule.values() == values
        assert [capsule.value_at(i) for i in range(4)] == values
        assert capsule.width == 6
        assert capsule.count == 4

    def test_empty_values(self):
        capsule = Capsule.pack_fixed([])
        assert capsule.values() == []
        assert capsule.count == 0

    def test_all_empty_strings(self):
        capsule = Capsule.pack_fixed(["", "", ""])
        assert capsule.width == 0
        assert capsule.values() == ["", "", ""]

    def test_explicit_width(self):
        capsule = Capsule.pack_fixed(["1", "2"], width=4)
        assert capsule.width == 4
        assert capsule.values() == ["1", "2"]

    def test_value_at_out_of_range(self):
        capsule = Capsule.pack_fixed(["a"])
        with pytest.raises(IndexError):
            capsule.value_at(1)
        with pytest.raises(IndexError):
            capsule.value_at(-1)

    def test_nul_rejected(self):
        with pytest.raises(CompressionError):
            Capsule.pack_fixed(["a\x00b"])

    def test_small_payload_stays_raw(self):
        capsule = Capsule.pack_fixed(["ab"])
        assert capsule.codec == CODEC_RAW

    def test_compressible_payload_uses_lzma(self):
        capsule = Capsule.pack_fixed(["abcabcabc"] * 100)
        assert capsule.codec == CODEC_LZMA
        assert capsule.compressed_bytes < 9 * 100

    @given(st.lists(nul_free, max_size=40))
    def test_roundtrip_property(self, values):
        capsule = Capsule.pack_fixed(values)
        assert capsule.values() == values


class TestVariableCapsule:
    def test_roundtrip(self):
        values = ["alpha", "", "b", "cc"]
        capsule = Capsule.pack_variable(values)
        assert capsule.layout == LAYOUT_VARIABLE
        assert capsule.values() == values
        assert [capsule.value_at(i) for i in range(4)] == values

    def test_empty(self):
        assert Capsule.pack_variable([]).values() == []

    @given(st.lists(nul_free, max_size=40))
    def test_roundtrip_property(self, values):
        capsule = Capsule.pack_variable(values)
        assert capsule.values() == values


class TestRegionCapsule:
    def test_region_layout(self):
        # Two pattern regions with different widths (Fig 5's dictionary).
        capsule = Capsule.pack_regions(
            [["ERR#404", "ERR#501"], ["SUCC"]], widths=[7, 4]
        )
        assert capsule.region_value(0, 7) == "ERR#404"
        assert capsule.region_value(7, 7) == "ERR#501"
        assert capsule.region_value(14, 4) == "SUCC"
        assert capsule.count == 3

    def test_value_longer_than_width_rejected(self):
        with pytest.raises(CompressionError):
            Capsule.pack_regions([["toolong"]], widths=[3])

    def test_padding_within_region(self):
        capsule = Capsule.pack_regions([["ab", "c"]], widths=[4])
        assert capsule.region_value(0, 4) == "ab"
        assert capsule.region_value(4, 4) == "c"


class TestCapsuleSerialization:
    @pytest.mark.parametrize("layout", ["fixed", "variable"])
    def test_roundtrip(self, layout):
        values = ["x", "yy", "zzz"] * 20
        if layout == "fixed":
            capsule = Capsule.pack_fixed(values)
        else:
            capsule = Capsule.pack_variable(values)
        w = BinaryWriter()
        capsule.write(w)
        loaded = Capsule.read(BinaryReader(w.getvalue()))
        assert loaded.values() == values
        assert loaded.stamp == capsule.stamp
        assert loaded.width == capsule.width


class TestSpeedTierCodec:
    def _zlib_wins_values(self):
        # Low-redundancy payload: LZMA's edge over zlib stays under the
        # margin, so the speed tier picks zlib.
        import random

        rng = random.Random(7)
        return [
            "".join(rng.choice("abcdefghij0123456789") for _ in range(12))
            for _ in range(200)
        ]

    def test_default_never_emits_zlib(self):
        capsule = Capsule.pack_fixed(self._zlib_wins_values())
        assert capsule.codec != CODEC_ZLIB

    def test_speed_tier_roundtrip(self):
        values = self._zlib_wins_values()
        for pack in (Capsule.pack_fixed, Capsule.pack_variable):
            capsule = pack(values, speed_tier=True)
            assert capsule.values() == values
            w = BinaryWriter()
            capsule.write(w)
            loaded = Capsule.read(BinaryReader(w.getvalue()))
            assert loaded.values() == values

    def test_speed_tier_picks_zlib_when_margin_small(self):
        capsule = Capsule.pack_fixed(self._zlib_wins_values(), speed_tier=True)
        assert capsule.codec == CODEC_ZLIB

    def test_speed_tier_keeps_lzma_when_it_wins(self):
        # Redundancy with a period beyond zlib's 32 KB window: only LZMA
        # can reference the earlier repetitions, so its margin is large.
        import random

        rng = random.Random(3)
        uniques = [
            "".join(rng.choice("abcdefghij0123456789") for _ in range(40))
            for _ in range(1000)
        ]
        values = [uniques[i % 1000] for i in range(3000)]
        capsule = Capsule.pack_fixed(values, speed_tier=True)
        assert capsule.codec == CODEC_LZMA

    def test_region_speed_tier_roundtrip(self):
        values = self._zlib_wins_values()
        capsule = Capsule.pack_regions([values], widths=[12], speed_tier=True)
        assert [capsule.region_value(i * 12, 12) for i in range(len(values))] == values


class TestVariablePayloadValidation:
    def test_truncated_payload_rejected(self):
        capsule = Capsule.pack_variable(["alpha", "beta", "gamma"])
        plain = capsule.plain()
        truncated = Capsule(
            LAYOUT_VARIABLE, 0, 3, capsule.stamp, CODEC_RAW, 1,
            plain[: plain.rindex(b"\x00")],
        )
        with pytest.raises(FormatError, match="expected 3"):
            truncated.values()
        with pytest.raises(FormatError, match="expected 3"):
            truncated.values_bytes()

    def test_extra_separator_rejected(self):
        capsule = Capsule.pack_variable(["a", "b"])
        padded = Capsule(
            LAYOUT_VARIABLE, 0, 2, capsule.stamp, CODEC_RAW, 1,
            capsule.plain() + b"\x00c",
        )
        with pytest.raises(FormatError, match="expected 2"):
            padded.values()

    def test_values_bytes_matches_values(self):
        values = ["alpha", "", "b", "cc"]
        for capsule in (Capsule.pack_fixed(values), Capsule.pack_variable(values)):
            assert [b.decode() for b in capsule.values_bytes()] == values
