"""Tests for the lifecycle manager and parallel query execution."""

import pytest

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.core.lifecycle import (
    archive_offline,
    offline_config,
    transition_analysis,
)
from repro.cost.model import CostParameters
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def nearline():
    lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
    lg.compress(make_mixed_lines(900, seed=51))
    return lg


class TestOfflineArchiving:
    def test_offline_config(self):
        config = offline_config(LogGrepConfig(block_bytes=1 << 20))
        assert config.preset == 9
        assert config.block_bytes >= 4 << 20
        assert not config.use_block_bloom

    def test_rewrite_preserves_data(self, nearline):
        offline, report = archive_offline(nearline)
        assert offline.decompress_all() == nearline.decompress_all()
        assert report.raw_bytes == nearline.raw_bytes
        assert report.recompress_seconds > 0

    def test_offline_compresses_harder(self, nearline):
        offline, report = archive_offline(nearline)
        assert report.offline_blocks < report.nearline_blocks  # merged
        assert report.ratio_gain > 1.0  # smaller than near-line

    def test_offline_still_queryable(self, nearline):
        offline, _ = archive_offline(nearline)
        lines = nearline.decompress_all()
        assert offline.grep("ERROR").lines == grep_lines("ERROR", lines)


class TestTransitionAnalysis:
    def test_breakeven_math(self):
        analysis = transition_analysis(
            nearline_ratio=10.0, offline_ratio=20.0, recompress_speed_mb_s=2.0
        )
        # Monthly saving = 0.017*1000*(1/10 - 1/20) = 0.85 $/TB-month.
        assert analysis.nearline_monthly_per_tb == pytest.approx(1.7)
        assert analysis.offline_monthly_per_tb == pytest.approx(0.85)
        expected_cost = 0.016 * (1e12 / 2e6) / 3600
        assert analysis.recompression_cost_per_tb == pytest.approx(expected_cost)
        assert analysis.breakeven_months == pytest.approx(expected_cost / 0.85)

    def test_no_gain_never_breaks_even(self):
        analysis = transition_analysis(10.0, 10.0, 2.0)
        assert analysis.breakeven_months == float("inf")
        assert not analysis.worthwhile_within

    def test_validation(self):
        with pytest.raises(ValueError):
            transition_analysis(0, 1, 1)

    def test_custom_params(self):
        cheap_cpu = CostParameters(cpu_dollars_per_hour=0.001)
        fast = transition_analysis(5.0, 10.0, 2.0, cheap_cpu)
        default = transition_analysis(5.0, 10.0, 2.0)
        assert fast.breakeven_months < default.breakeven_months


class TestParallelQueries:
    def test_parallel_matches_serial(self):
        lines = make_mixed_lines(900, seed=52)
        serial = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        serial.compress(lines)
        parallel = LogGrep(
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=4)
        )
        parallel.compress(lines)
        for command in ["ERROR", "read AND bk.FF", "state: NOT SUC"]:
            assert parallel.grep(command).lines == serial.grep(command).lines

    def test_parallel_cache_shared(self):
        lines = make_mixed_lines(500, seed=53)
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=4))
        lg.compress(lines)
        lg.grep("ERROR")
        assert len(lg.cache) > 0  # workers populated the shared cache
        again = lg.grep("ERROR")
        assert again.lines == grep_lines("ERROR", lines)
