"""Tests for vector classification and both pattern extractors (§4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.classify import (
    DEFAULT_DUPLICATION_THRESHOLD,
    VectorKind,
    classify,
    classify_with_rate,
    duplication_rate,
)
from repro.runtime.merge import extract_nominal, sketch_of
from repro.runtime.pattern import Const, SubVar
from repro.runtime.treeexpand import TreeExpandConfig, extract_real_pattern


class TestClassification:
    def test_duplication_rate(self):
        assert duplication_rate(["a", "b", "c"]) == 0.0
        assert duplication_rate(["a", "a", "a", "a"]) == 0.75
        assert duplication_rate([]) == 0.0

    def test_threshold(self):
        unique = [str(i) for i in range(100)]
        repeated = ["x"] * 80 + [str(i) for i in range(20)]
        assert classify(unique) is VectorKind.REAL
        assert classify(repeated) is VectorKind.NOMINAL

    def test_classify_with_rate(self):
        kind, rate = classify_with_rate(["a", "a", "b"])
        assert kind is VectorKind.REAL  # 1/3 duplication is below 0.5
        assert rate == pytest.approx(1 / 3)

    def test_custom_threshold(self):
        values = ["x"] * 4 + ["y", "z"]  # rate = 0.5
        assert classify(values, threshold=0.6) is VectorKind.REAL
        assert classify(values, threshold=0.5) is VectorKind.NOMINAL
        assert DEFAULT_DUPLICATION_THRESHOLD == 0.5


class TestTreeExpand:
    def test_paper_figure4(self):
        values = [f"block_{i:X}F8{(i * 7) % 251:X}" for i in range(300)]
        pattern = extract_real_pattern(values, TreeExpandConfig(seed=1))
        assert pattern.display() == "block_<*>F8<*>"

    def test_delimiter_splitting(self):
        values = [f"/tmp/1FF8{i:04X}.log" for i in range(300)]
        pattern = extract_real_pattern(values)
        # All values share the root; the extractor must find real structure.
        assert not pattern.is_trivial
        assert all(pattern.match(v) is not None for v in values)

    def test_uniform_vector_becomes_constant(self):
        pattern = extract_real_pattern(["same"] * 100)
        assert pattern.is_constant
        assert pattern.match("same") == []

    def test_empty_vector(self):
        assert extract_real_pattern([]).is_trivial

    def test_patternless_vector_degrades_to_trivial(self):
        import random

        rng = random.Random(0)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        values = [
            "".join(rng.choice(alphabet) for _ in range(rng.randrange(3, 12)))
            for _ in range(200)
        ]
        pattern = extract_real_pattern(values)
        # No shared delimiters or infixes: at worst a bare sub-variable.
        assert pattern.num_subvars <= 2

    def test_coverage_eviction(self):
        # 96% of values share "_" — enough for the 95% rule; the rest
        # become extraction outliers but the pattern must still be found.
        values = [f"k_{i}" for i in range(96)] + ["odd1", "odd2", "odd3", "zz9"]
        pattern = extract_real_pattern(values, TreeExpandConfig(sample_rate=1.0))
        assert "_" in pattern.display()

    def test_deterministic(self):
        values = [f"u{i}-{i * 3}" for i in range(200)]
        a = extract_real_pattern(values, TreeExpandConfig(seed=9))
        b = extract_real_pattern(values, TreeExpandConfig(seed=9))
        assert a == b

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_extracted_pattern_is_sound(self, offset):
        """Values the pattern matches must round-trip exactly."""
        values = [f"req:{offset + i}/{i % 7}" for i in range(120)]
        pattern = extract_real_pattern(values)
        for value in values:
            parts = pattern.match(value)
            if parts is not None:
                assert pattern.render(parts) == value


class TestSketch:
    def test_paper_example(self):
        key, fragments = sketch_of("ERR#404")
        assert key == (None, "#", None)
        assert fragments == ["ERR", "404"]

    def test_plain_word(self):
        assert sketch_of("SUCC") == ((None,), ["SUCC"])

    def test_leading_trailing_delimiters(self):
        key, fragments = sketch_of("/a/b/")
        assert key == ("/", None, "/", None, "/")
        assert fragments == ["a", "b"]

    def test_multi_char_delimiter_run(self):
        key, fragments = sketch_of("a--b")
        assert key == (None, "--", None)

    def test_empty(self):
        assert sketch_of("") == ((), [])


class TestExtractNominal:
    def test_paper_figure5(self):
        values = ["ERR#404", "SUCC", "ERR#501", "SUCC", "ERR#404"]
        enc = extract_nominal(values)
        displays = sorted(p.pattern.display() for p in enc.patterns)
        assert displays == ["ERR#<*>", "SUCC"]
        # Values reconstruct exactly through dictionary + index.
        assert [enc.value_at(i) for i in range(len(values))] == values

    def test_constant_folding(self):
        # All values share "ERR" in slot 1 → folded into the constant.
        enc = extract_nominal(["ERR#1", "ERR#2", "ERR#3"])
        assert enc.patterns[0].pattern.display() == "ERR#<*>"

    def test_same_sketch_values_stored_sequentially(self):
        values = ["a#1", "plain", "a#2", "other", "a#3"]
        enc = extract_nominal(values)
        slot = 0
        for dp in enc.patterns:
            region = enc.dict_values[slot : slot + dp.count]
            for value in region:
                assert dp.pattern.match(value) is not None
            slot += dp.count

    def test_index_width(self):
        enc = extract_nominal([f"w{i}" for i in range(12)])
        assert enc.index_width == 2

    def test_counts_and_widths(self):
        enc = extract_nominal(["ERR#404", "ERR#501", "SUCC"])
        by_display = {p.pattern.display(): p for p in enc.patterns}
        assert by_display["ERR#<*>"].count == 2
        assert by_display["ERR#<*>"].width == 7
        assert by_display["SUCC"].count == 1
        assert by_display["SUCC"].width == 4

    def test_subvar_stamps(self):
        enc = extract_nominal(["ERR#404", "ERR#5011"])
        dp = enc.patterns[0]
        assert dp.subvar_masks == [1]  # digits only
        assert dp.subvar_maxlens == [4]

    def test_pattern_region(self):
        enc = extract_nominal(["a#1", "b!2", "a#3"])
        total = sum(p.count for p in enc.patterns)
        assert total == len(enc.dict_values) == 3

    @given(
        st.lists(
            st.sampled_from(
                ["ok", "ERR#1", "ERR#23", "a/b", "a/c", "x-1-2", "", "404"]
            ),
            max_size=60,
        )
    )
    def test_reconstruction_property(self, values):
        enc = extract_nominal(values)
        assert [enc.value_at(i) for i in range(len(values))] == values
        assert len(enc.dict_values) == len(set(values))

    def test_empty_input(self):
        enc = extract_nominal([])
        assert enc.dict_values == []
        assert enc.index == []
