"""Unit tests for the six-bit character-class masks (§2.2, §4.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import chartypes as ct


class TestCharClass:
    def test_digits(self):
        for ch in "0123456789":
            assert ct.char_class(ch) == ct.DIGIT

    def test_hex_lower(self):
        for ch in "abcdef":
            assert ct.char_class(ch) == ct.HEX_LOWER

    def test_hex_upper(self):
        for ch in "ABCDEF":
            assert ct.char_class(ch) == ct.HEX_UPPER

    def test_alpha_lower(self):
        for ch in "ghijklmnopqrstuvwxyz":
            assert ct.char_class(ch) == ct.ALPHA_LOWER

    def test_alpha_upper(self):
        for ch in "GHIJKLMNOPQRSTUVWXYZ":
            assert ct.char_class(ch) == ct.ALPHA_UPPER

    def test_other(self):
        for ch in " .:/#_-[](){}!\t":
            assert ct.char_class(ch) == ct.OTHER

    def test_non_ascii_is_other(self):
        assert ct.char_class("日") == ct.OTHER
        assert ct.char_class("é") == ct.OTHER


class TestTypeMask:
    def test_empty_string(self):
        assert ct.type_mask("") == 0

    def test_paper_example_digits(self):
        # §4.3: a Capsule with only 0-9 has type number 000001b = 1.
        assert ct.type_mask("134") == 1

    def test_paper_example_hex(self):
        # §4.3: 0-9 plus A-F gives 000101b = 5.
        assert ct.type_mask("8F8F") == 5
        assert ct.type_mask("1F81F") == 5

    def test_mixed(self):
        assert ct.type_mask("bk.FF") == (
            ct.HEX_LOWER | ct.ALPHA_LOWER | ct.OTHER | ct.HEX_UPPER
        )

    def test_of_values(self):
        assert ct.type_mask_of_values(["12", "ab"]) == ct.DIGIT | ct.HEX_LOWER
        assert ct.type_mask_of_values([]) == 0


class TestMaskSubsumes:
    def test_keyword_subset_passes(self):
        capsule = ct.type_mask("8F8F")  # digits + A-F
        assert ct.mask_subsumes(capsule, ct.type_mask("88"))
        assert ct.mask_subsumes(capsule, ct.type_mask("F8"))

    def test_keyword_with_extra_class_fails(self):
        capsule = ct.type_mask("12345")
        assert not ct.mask_subsumes(capsule, ct.type_mask("12a"))

    def test_empty_keyword_always_passes(self):
        assert ct.mask_subsumes(0, 0)
        assert ct.mask_subsumes(ct.ALL_CLASSES, 0)

    @given(st.text(max_size=20), st.text(max_size=20))
    def test_substring_always_admitted(self, prefix, suffix):
        """If k occurs inside v then mask(k) ⊆ mask(v) — the soundness of
        the stamp filter."""
        keyword = "xYz0"
        value = prefix + keyword + suffix
        assert ct.mask_subsumes(ct.type_mask(value), ct.type_mask(keyword))


class TestHelpers:
    def test_class_count(self):
        assert ct.class_count(0) == 0
        assert ct.class_count(ct.ALL_CLASSES) == 6
        assert ct.class_count(ct.type_mask("1a")) == 2

    def test_describe(self):
        assert ct.describe(0) == "empty"
        assert "0-9" in ct.describe(ct.DIGIT)
