"""Tests for query-command parsing (§3, §5)."""

import pytest

from repro.common.errors import QuerySyntaxError
from repro.query.language import Keyword, parse_query
from repro.query.modes import MatchMode


class TestParsing:
    def test_single_search_string(self):
        q = parse_query("ERROR")
        assert len(q.disjuncts) == 1
        assert q.disjuncts[0][0].search.text == "ERROR"
        assert not q.disjuncts[0][0].negated

    def test_and(self):
        q = parse_query("ERROR and Project:2963")
        terms = q.disjuncts[0]
        assert [t.search.text for t in terms] == ["ERROR", "Project:2963"]

    def test_not(self):
        q = parse_query("ERROR not UserId:-2")
        terms = q.disjuncts[0]
        assert terms[1].negated

    def test_or_precedence(self):
        # Openstack's query: OR binds looser than AND.
        q = parse_query("ERROR or WARNING and Unexpected error while running command")
        assert len(q.disjuncts) == 2
        assert [t.search.text for t in q.disjuncts[0]] == ["ERROR"]
        assert [t.search.text for t in q.disjuncts[1]] == [
            "WARNING",
            "Unexpected error while running command",
        ]

    def test_multi_token_search_string(self):
        q = parse_query("WARNING and 2019-11-06 07")
        second = q.disjuncts[0][1].search
        assert second.text == "2019-11-06 07"
        assert [k.text for k in second.keywords] == ["2019-11-06", "07"]
        assert second.multi_token

    def test_operator_case_insensitive(self):
        q = parse_query("a AND b NOT c OR d")
        assert len(q.disjuncts) == 2

    def test_leading_not(self):
        q = parse_query("not ERROR")
        assert q.disjuncts[0][0].negated

    def test_paper_example(self):
        q = parse_query("error AND dst:11.8.* NOT state:503")
        terms = q.disjuncts[0]
        assert [t.search.text for t in terms] == ["error", "dst:11.8.*", "state:503"]
        assert [t.negated for t in terms] == [False, False, True]
        assert terms[1].search.keywords[0].is_wildcard

    def test_search_strings_listing(self):
        q = parse_query("a and b or c")
        assert [s.text for s in q.search_strings()] == ["a", "b", "c"]


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad", ["", "and", "and x", "x or", "x and", "x not", "or x", "x or or y"]
    )
    def test_rejected(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestKeyword:
    def test_literal(self):
        k = Keyword("ERROR")
        assert not k.is_wildcard
        assert k.literals() == ["ERROR"]
        assert k.longest_literal() == "ERROR"

    def test_wildcard_detection(self):
        assert Keyword("dst:11.8.*").is_wildcard
        assert Keyword("????_ay87a").is_wildcard

    def test_literals_split(self):
        k = Keyword("10.1??.*:80")
        assert k.literals() == ["10.1", ".", ":80"]
        assert k.longest_literal() == "10.1"

    def test_all_wildcards(self):
        k = Keyword("***")
        assert k.literals() == []
        assert k.longest_literal() == ""

    def test_regex_modes(self):
        k = Keyword("a?c*")
        assert k.regex_for(MatchMode.EXACT).search("abcxyz")
        assert not k.regex_for(MatchMode.EXACT).search("zabc")
        assert k.regex_for(MatchMode.PREFIX).search("abc-tail")
        assert k.regex_for(MatchMode.SUBSTRING).search("zz abc zz".replace(" ", ""))

    def test_regex_escapes_specials(self):
        k = Keyword("a.b")
        assert not k.regex_for(MatchMode.EXACT).search("aXb" + "!")
        assert k.regex_for(MatchMode.EXACT).search("a.b")

    def test_regex_cached(self):
        k = Keyword("x*")
        assert k.regex_for(MatchMode.EXACT) is k.regex_for(MatchMode.EXACT)
