"""Tests for the ``loggrep`` command-line interface."""

import pytest

from repro.cli import main
from tests.conftest import make_mixed_lines


@pytest.fixture
def log_file(tmp_path):
    path = tmp_path / "app.log"
    lines = make_mixed_lines(300)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path, lines


class TestCompress:
    def test_compress_creates_archive(self, log_file, tmp_path, capsys):
        path, _ = log_file
        archive = tmp_path / "arch"
        rc = main(["compress", str(path), "-a", str(archive)])
        assert rc == 0
        assert "ratio" in capsys.readouterr().out
        assert list(archive.iterdir())

    def test_compress_block_bytes(self, log_file, tmp_path):
        path, _ = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive), "--block-bytes", "4096"])
        assert len(list(archive.iterdir())) > 1


class TestGrep:
    def test_grep_outputs_lines(self, log_file, tmp_path, capsys):
        path, lines = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["grep", "ERROR", "-a", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out.splitlines()
        expected = [l for l in lines if "ERROR" in l]
        assert out == expected

    def test_grep_count(self, log_file, tmp_path, capsys):
        path, lines = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        main(["grep", "ERROR", "-a", str(archive), "-c"])
        out = capsys.readouterr().out.strip()
        assert int(out) == sum(1 for l in lines if "ERROR" in l)

    def test_grep_stats_to_stderr(self, log_file, tmp_path, capsys):
        path, _ = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        main(["grep", "ERROR", "-a", str(archive), "--stats"])
        captured = capsys.readouterr()
        assert "hit(s)" in captured.err

    def test_grep_analyze_prints_ledger_table(self, log_file, tmp_path, capsys):
        path, lines = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["grep", "ERROR", "-a", str(archive), "--analyze"])
        assert rc == 0
        captured = capsys.readouterr()
        # Matching lines still go to stdout; the ledger table to stderr.
        assert captured.out.splitlines() == [l for l in lines if "ERROR" in l]
        assert "resource ledger" in captured.err
        for column in ("operator", "read_bytes", "rows_scanned", "TOTAL"):
            assert column in captured.err

    def test_grep_budget_abort_is_a_clean_error(
        self, log_file, tmp_path, capsys, monkeypatch
    ):
        path, _ = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive), "--block-bytes", "4096"])
        capsys.readouterr()
        monkeypatch.setenv("LOGGREP_MAX_READ_BYTES", "100")
        rc = main(["grep", "ERROR", "-a", str(archive), "-c"])
        assert rc == 1
        err = capsys.readouterr().err
        assert "budget exceeded" in err
        assert "partial ledger" in err

    def test_grep_trace_out_writes_chrome_trace(self, log_file, tmp_path, capsys):
        import json

        path, _ = log_file
        archive = tmp_path / "arch"
        trace_path = tmp_path / "trace.json"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["grep", "ERROR", "-a", str(archive), "--trace-out", str(trace_path)])
        assert rc == 0
        assert "trace event(s)" in capsys.readouterr().err
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        # With batch_scans routing (LOGGREP_BATCH_SCANS=1) the root span
        # is the shared-scan "batch" lane instead of "query".
        assert "block" in names
        assert names & {"query", "batch"}


class TestMetricsCommand:
    def test_formats_and_reset(self, log_file, tmp_path, capsys):
        path, _ = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["metrics", "-a", str(archive), "-q", "ERROR", "--format", "prom"])
        assert rc == 0
        prom = capsys.readouterr().out
        assert "# TYPE loggrep_queries_total counter" in prom
        assert "loggrep_store_bytes" in prom

        rc = main(["metrics", "-a", str(archive), "--format", "json", "--reset"])
        assert rc == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        samples = doc["loggrep_queries_total"]["samples"]
        assert samples and samples[0]["value"] >= 1

        # --reset zeroed the registry after printing: the next in-process
        # export starts from a fresh baseline (no query samples left).
        main(["metrics", "-a", str(archive), "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["loggrep_queries_total"]["samples"] == []


class TestStats:
    def test_stats_lists_blocks(self, log_file, tmp_path, capsys):
        path, lines = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["stats", "-a", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"total: {len(lines)} lines" in out


class TestArgErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAnalyze:
    def test_fields_and_count_by(self, log_file, tmp_path, capsys):
        path, lines = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["analyze", "-a", str(archive), "--fields"])
        assert rc == 0
        assert "fields:" in capsys.readouterr().out

        main(["analyze", "-a", str(archive), "--count-by", "code", "-w", "ERROR"])
        out = capsys.readouterr().out
        total = sum(int(row.split()[0]) for row in out.strip().splitlines())
        assert total == sum(1 for l in lines if "ERROR" in l and "code=" in l)

    def test_stats_of(self, log_file, tmp_path, capsys):
        path, _ = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        rc = main(["analyze", "-a", str(archive), "--stats-of", "code"])
        assert rc == 0
        assert "count=" in capsys.readouterr().out

    def test_no_action(self, log_file, tmp_path, capsys):
        path, _ = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        assert main(["analyze", "-a", str(archive)]) == 2

    def test_grep_ignore_case_flag(self, log_file, tmp_path, capsys):
        path, lines = log_file
        archive = tmp_path / "arch"
        main(["compress", str(path), "-a", str(archive)])
        capsys.readouterr()
        main(["grep", "error", "-a", str(archive), "-c", "-i"])
        out = capsys.readouterr().out.strip()
        assert int(out) == sum(1 for l in lines if "error" in l.lower())


@pytest.fixture
def structured_archive(tmp_path):
    lines = []
    for i in range(800):
        level = "ERROR" if i % 5 == 0 else "INFO"
        lines.append(
            f"2024-01-01 00:00:{i % 60:02d} {level} svc "
            f"Project:{i % 3} latency:{i * 7}us req done"
        )
    path = tmp_path / "structured.log"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    archive = tmp_path / "agg_arch"
    main(["compress", str(path), "-a", str(archive), "--block-bytes", "8192"])
    return archive, lines


class TestAgg:
    def test_count_by(self, structured_archive, capsys):
        archive, lines = structured_archive
        capsys.readouterr()
        rc = main(["agg", "count-by", "Project", "-a", str(archive), "-w", "ERROR"])
        assert rc == 0
        rows = capsys.readouterr().out.strip().splitlines()
        total = sum(int(row.split()[0]) for row in rows)
        assert total == sum(1 for l in lines if "ERROR" in l)

    def test_top_k(self, structured_archive, capsys):
        archive, _ = structured_archive
        capsys.readouterr()
        rc = main(["agg", "top-k", "Project", "-a", str(archive), "-k", "2"])
        assert rc == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_stats(self, structured_archive, capsys):
        archive, _ = structured_archive
        capsys.readouterr()
        rc = main(["agg", "stats", "latency", "-a", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "count=800" in out and "nulls=0" in out

    def test_timeseries(self, structured_archive, capsys):
        archive, lines = structured_archive
        capsys.readouterr()
        rc = main(
            ["agg", "timeseries", "-a", str(archive), "-w", "ERROR", "--buckets", "4"]
        )
        assert rc == 0
        rows = capsys.readouterr().out.strip().splitlines()
        assert len(rows) == 4
        total = sum(int(row.rsplit(None, 1)[-1]) for row in rows)
        assert total == sum(1 for l in lines if "ERROR" in l)

    def test_count_templates(self, structured_archive, capsys):
        archive, _ = structured_archive
        capsys.readouterr()
        rc = main(["agg", "count-templates", "-a", str(archive)])
        assert rc == 0
        assert "800" in capsys.readouterr().out

    def test_analyze_flag_prints_ledger(self, structured_archive, capsys):
        archive, _ = structured_archive
        capsys.readouterr()
        rc = main(
            ["agg", "count-by", "Project", "-a", str(archive), "--analyze", "-j", "2"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "resource ledger" in err
        assert "aggregate" in err

    def test_json_output(self, structured_archive, capsys):
        import json as json_mod

        archive, _ = structured_archive
        capsys.readouterr()
        rc = main(["agg", "count-by", "Project", "-a", str(archive), "--json"])
        assert rc == 0
        doc = json_mod.loads(capsys.readouterr().out)
        assert sum(doc.values()) == 800

    def test_missing_field_is_an_error(self, structured_archive, capsys):
        archive, _ = structured_archive
        capsys.readouterr()
        assert main(["agg", "count-by", "-a", str(archive)]) == 2
        assert "requires a FIELD" in capsys.readouterr().err
