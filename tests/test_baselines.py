"""Unit tests for the four comparator systems and the reference evaluator."""

import pytest

from repro.baselines import (
    CLP,
    GzipGrep,
    LogGrepSP,
    LogGrepSystem,
    MiniElastic,
    analyze,
    grep_lines,
    line_matches,
)
from repro.core.config import LogGrepConfig
from repro.query.language import parse_query
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(700, seed=11)


class TestEvalUtil:
    def test_single_keyword_substring(self):
        parsed = parse_query("RRO")
        assert line_matches(parsed, "an ERROR happened")
        assert not line_matches(parsed, "all fine")

    def test_case_sensitive_like_grep(self):
        assert not line_matches(parse_query("error"), "an ERROR happened")

    def test_multi_keyword_consecutive_tokens(self):
        parsed = parse_query("read file")
        assert line_matches(parsed, "will read file now")
        assert not line_matches(parsed, "read the file")  # not adjacent

    def test_suffix_prefix_anchoring(self):
        parsed = parse_query("06 07")
        assert line_matches(parsed, "ts 2019-11-06 07:22:01")
        assert not line_matches(parsed, "ts 2019-11-06 17:22:01")

    def test_not(self):
        parsed = parse_query("a NOT b")
        assert line_matches(parsed, "a here")
        assert not line_matches(parsed, "a and b here")

    def test_or(self):
        parsed = parse_query("aaa OR bbb")
        assert line_matches(parsed, "has bbb only")

    def test_wildcard_in_token(self):
        parsed = parse_query("dst:11.8.*")
        assert line_matches(parsed, "x dst:11.8.44 y")
        assert not line_matches(parsed, "x dst:11.9.44 y")

    def test_grep_lines(self):
        lines = ["one ERROR", "two ok", "ERROR again"]
        assert grep_lines("ERROR", lines) == ["one ERROR", "ERROR again"]


class TestAnalyze:
    def test_lowercase_split(self):
        assert analyze("bk.FF.13 Read") == ["bk", "ff", "13", "read"]

    def test_empty(self):
        assert analyze("...") == []


SYSTEM_FACTORIES = [
    lambda: GzipGrep(block_bytes=1 << 16),
    CLP,
    MiniElastic,
    lambda: LogGrepSP(LogGrepConfig(block_bytes=1 << 16)),
    lambda: LogGrepSystem(LogGrepConfig(block_bytes=1 << 16)),
]
SYSTEM_IDS = ["ggrep", "CLP", "ES", "LG-SP", "LG"]


@pytest.mark.parametrize("factory", SYSTEM_FACTORIES, ids=SYSTEM_IDS)
class TestSystemContract:
    """Every system satisfies the LogStoreSystem contract identically."""

    QUERIES = [
        "ERROR",
        "state: ERR",
        "read AND bk.FF",
        "state: NOT SUC",
        "ERROR OR read",
        "bk.F?.1* AND read",
    ]

    def test_query_parity(self, factory, corpus):
        system = factory()
        system.ingest(corpus)
        for command in self.QUERIES:
            assert system.query(command) == grep_lines(command, corpus), command

    def test_metrics_populated(self, factory, corpus):
        system = factory()
        system.ingest(corpus)
        assert system.raw_bytes == sum(len(l) + 1 for l in corpus)
        assert system.storage_bytes() > 0
        assert system.compression_ratio() > 0
        assert system.compression_speed_mb_s() > 0

    def test_incremental_ingest(self, factory, corpus):
        system = factory()
        system.ingest(corpus[:300])
        system.ingest(corpus[300:])
        assert system.query("ERROR") == grep_lines("ERROR", corpus)

    def test_timed_query(self, factory, corpus):
        system = factory()
        system.ingest(corpus[:200])
        lines, seconds = system.timed_query("ERROR")
        assert seconds >= 0
        assert lines == grep_lines("ERROR", corpus[:200])


class TestCLPSpecifics:
    def test_segment_filtering_reduces_scans(self):
        # A keyword occurring in a single segment must confine the scan.
        lines = [f"tick {i} ok" for i in range(500)]
        lines.insert(7, "needle event observed once")
        clp = CLP(segment_messages=64)
        clp.ingest(lines)
        candidates = clp._candidates_for_command(parse_query("needle"))
        assert candidates is not None
        assert len(candidates) == 1
        assert len(clp._segments) > 1

    def test_numeric_keyword_not_filterable(self, corpus):
        clp = CLP(segment_messages=64)
        clp.ingest(corpus)
        candidates = clp._candidates_for_command(parse_query("1623"))
        assert candidates == set(range(len(clp._segments)))

    def test_pure_negative_scans_all(self, corpus):
        clp = CLP()
        clp.ingest(corpus)
        assert clp._candidates_for_command(parse_query("not ERROR")) is None

    def test_ratio_below_loggrep(self, corpus):
        clp = CLP()
        clp.ingest(corpus)
        lg = LogGrepSystem(LogGrepConfig())
        lg.ingest(corpus)
        assert lg.compression_ratio() > clp.compression_ratio()


class TestElasticSpecifics:
    def test_storage_includes_index(self, corpus):
        es = MiniElastic()
        es.ingest(corpus)
        # The positional index makes ES the storage hog of the lineup.
        ggrep = GzipGrep()
        ggrep.ingest(corpus)
        assert es.storage_bytes() > ggrep.storage_bytes()

    def test_segments_merge(self, corpus):
        es = MiniElastic(flush_docs=32)
        es.ingest(corpus)
        # Tiered merging must keep the segment count well below the number
        # of flushes.
        assert len(es._segments) < len(corpus) / 32 / 2
