"""Tests for the reconstructor, compressor seeds and config plumbing."""

import pytest

from repro.blockstore.block import LogBlock
from repro.common.rowset import RowSet
from repro.core.compressor import compress_block
from repro.core.config import ABLATIONS, LogGrepConfig, ablated, sp_config
from repro.core.reconstructor import BULK_THRESHOLD, BlockReconstructor
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def box_and_lines():
    lines = make_mixed_lines(500)
    box = compress_block(LogBlock(3, 1000, lines), LogGrepConfig())
    return box, lines


class TestReconstructor:
    def test_entry_uses_global_line_ids(self, box_and_lines):
        box, lines = box_and_lines
        recon = BlockReconstructor(box)
        line_id, text = recon.entry(0, 0)
        assert line_id >= 1000  # block's first_line_id offset applies
        assert text == lines[line_id - 1000]

    def test_all_lines_in_order(self, box_and_lines):
        box, lines = box_and_lines
        assert BlockReconstructor(box).all_lines() == lines

    def test_selective_reconstruction(self, box_and_lines):
        box, lines = box_and_lines
        recon = BlockReconstructor(box)
        group = box.groups[0]
        rows = RowSet.from_rows(group.num_entries, [0, group.num_entries - 1])
        entries = recon.reconstruct({0: rows})
        assert len(entries) == 2
        assert entries[0][0] < entries[1][0]
        for line_id, text in entries:
            assert lines[line_id - 1000] == text

    def test_bulk_path_matches_per_row(self, box_and_lines):
        box, lines = box_and_lines
        recon = BlockReconstructor(box)
        group_idx = max(
            range(len(box.groups)), key=lambda g: box.groups[g].num_entries
        )
        group = box.groups[group_idx]
        assert group.num_entries > BULK_THRESHOLD
        all_rows = RowSet.full(group.num_entries)
        bulk = recon.reconstruct({group_idx: all_rows})
        single = [recon.entry(group_idx, row) for row in range(group.num_entries)]
        assert bulk == sorted(single)

    def test_shared_readers_with_engine(self, box_and_lines):
        box, _ = box_and_lines
        readers = {}
        recon = BlockReconstructor(box, readers=readers)
        recon.entry(0, 0)
        assert readers  # the shared cache is actually populated


class TestCompressor:
    def test_deterministic(self):
        lines = make_mixed_lines(300)
        a = compress_block(LogBlock(0, 0, lines), LogGrepConfig()).serialize()
        b = compress_block(LogBlock(0, 0, lines), LogGrepConfig()).serialize()
        assert a == b

    def test_different_blocks_different_parser_seed(self):
        lines = make_mixed_lines(300)
        a = compress_block(LogBlock(0, 0, lines), LogGrepConfig())
        b = compress_block(LogBlock(1, 0, lines), LogGrepConfig())
        # Different block ids may legitimately mine different samples, but
        # both must reconstruct exactly.
        assert BlockReconstructor(a).all_lines() == lines
        assert BlockReconstructor(b).all_lines() == lines

    def test_padded_flag_recorded(self):
        lines = make_mixed_lines(100)
        box = compress_block(LogBlock(0, 0, lines), ablated("w/o fixed"))
        assert not box.padded
        box2 = compress_block(LogBlock(0, 0, lines), LogGrepConfig())
        assert box2.padded


class TestConfig:
    def test_ablation_names(self):
        assert len(ABLATIONS) == 5
        for name in ABLATIONS:
            config = ablated(name)
            assert isinstance(config, LogGrepConfig)

    def test_ablations_flip_exactly_one_flag(self):
        base = LogGrepConfig()
        flags = [
            "use_real_patterns",
            "use_nominal_patterns",
            "use_stamps",
            "use_padding",
            "use_query_cache",
        ]
        for name, flag in zip(ABLATIONS, flags):
            config = ablated(name, base)
            assert getattr(config, flag) is False
            for other in flags:
                if other != flag:
                    assert getattr(config, other) is True

    def test_sp_config(self):
        config = sp_config()
        assert not config.use_real_patterns
        assert not config.use_nominal_patterns
        assert not config.use_padding
        assert config.use_stamps  # §2.2 keeps vector-level summaries

    def test_query_settings_engine_fallback(self):
        # Paper pairing: no padding → KMP instead of Boyer-Moore.
        config = ablated("w/o fixed", LogGrepConfig(engine="boyer-moore"))
        assert config.query_settings().engine == "kmp"
        config2 = LogGrepConfig(engine="boyer-moore")
        assert config2.query_settings().engine == "boyer-moore"

    def test_encoding_options_mirror_config(self):
        config = LogGrepConfig(duplication_threshold=0.7, preset=3)
        options = config.encoding_options()
        assert options.duplication_threshold == 0.7
        assert options.preset == 3
