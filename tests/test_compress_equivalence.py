"""Property test: one input stream, every compression schedule, one archive.

The compression scheduler's determinism contract (the compress-side
mirror of tests/test_plan_equivalence.py): for the same input and config,
batch compression with any ``compress_parallelism`` and the streaming
pipeline must produce **byte-identical** archives — the warm-start
template cache evolves in block submission order regardless of worker
count, and the encode stage is a pure function of the parse result.
"""

import pytest

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - hypothesis is in the dev env
    pytest.skip("hypothesis not installed", allow_module_level=True)

from dataclasses import replace

from repro import LogGrep, LogGrepConfig, StreamingCompressor
from repro.blockstore.store import MemoryStore
from tests.conftest import make_mixed_lines

BASE_CONFIG = LogGrepConfig(
    block_bytes=2 * 1024, compress_parallelism=1, compress_executor="thread"
)


def archive_bytes(store):
    return {name: store.get(name) for name in store.names()}


def compress_batch(lines, config):
    lg = LogGrep(store=MemoryStore(), config=config)
    lg.compress(lines)
    return lg


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=40, max_value=250),
    parallelism=st.sampled_from([2, 4]),
    warm_start=st.booleans(),
)
def test_parallel_and_streaming_archives_identical(seed, n, parallelism, warm_start):
    lines = make_mixed_lines(n, seed=seed)
    config = replace(BASE_CONFIG, template_warm_start=warm_start)

    serial = compress_batch(lines, config)
    reference = archive_bytes(serial.store)
    assert serial.decompress_all() == lines  # the archive is also correct

    parallel = compress_batch(
        lines, replace(config, compress_parallelism=parallelism)
    )
    assert archive_bytes(parallel.store) == reference

    streamed = MemoryStore()
    with StreamingCompressor(store=streamed, config=config) as stream:
        stream.extend(lines)
    assert archive_bytes(streamed) == reference


def test_process_executor_archive_identical():
    """The process pool is byte-identical too (GIL-free encode path)."""
    lines = make_mixed_lines(250, seed=77)
    serial = compress_batch(lines, BASE_CONFIG)
    process = compress_batch(
        lines,
        replace(BASE_CONFIG, compress_parallelism=2, compress_executor="process"),
    )
    assert archive_bytes(process.store) == archive_bytes(serial.store)


def test_multiple_compress_calls_keep_equivalence():
    """Incremental batch ingest (several compress() calls) matches one-shot:

    the warm-start cache lives on the LogGrep instance, so block N's
    parse sees the same template history whether the stream arrived in
    one call or many."""
    lines = make_mixed_lines(200, seed=5)
    one_shot = compress_batch(lines, BASE_CONFIG)

    incremental = LogGrep(store=MemoryStore(), config=BASE_CONFIG)
    incremental.compress(lines[:90])
    incremental.compress(lines[90:])
    # Splitting the stream mid-block seals a partial block, so compare
    # semantics (round trip), not bytes, for the incremental case.
    assert incremental.decompress_all() == lines
    assert one_shot.decompress_all() == lines
