"""Additional coverage for the EXPLAIN facility's per-encoding branches."""

import pytest

from repro.capsule.assembler import EncodingOptions, encode_plain, encode_vector
from repro.query.explain import _plan_vector, explain_block
from repro.query.language import Keyword, parse_query


class TestPlanVector:
    def test_real_filtered(self):
        encoded = encode_vector([f"req_{i}" for i in range(100)], EncodingOptions())
        plan = _plan_vector(0, 0, encoded, Keyword("ZZZ"))
        assert plan.decision == "filtered"
        assert plan.kind == "real"

    def test_real_candidates(self):
        encoded = encode_vector([f"req_{i}" for i in range(100)], EncodingOptions())
        plan = _plan_vector(0, 0, encoded, Keyword("req_7"))
        assert plan.decision == "candidates"

    def test_real_constant_hit(self):
        encoded = encode_vector([f"req_{i}" for i in range(100)], EncodingOptions())
        plan = _plan_vector(0, 0, encoded, Keyword("eq"))
        assert plan.decision == "candidates"
        assert "constants" in plan.detail

    def test_real_outliers_force_scan(self):
        values = [f"req_{i}" for i in range(190)] + ["WEIRD!"] + [
            f"req_{i}" for i in range(190, 200)
        ]
        encoded = encode_vector(values, EncodingOptions(sample_rate=1.0))
        plan = _plan_vector(0, 0, encoded, Keyword("%%"))
        assert "outlier" in plan.detail

    def test_nominal_filtered_and_candidates(self):
        values = ["ERR#404"] * 30 + ["SUCC"] * 60
        encoded = encode_vector(values, EncodingOptions())
        assert _plan_vector(0, 0, encoded, Keyword("zzz")).decision == "filtered"
        hit = _plan_vector(0, 0, encoded, Keyword("404"))
        assert hit.decision == "candidates"
        assert hit.kind == "nominal"

    def test_plain_stamp_and_scan(self):
        encoded = encode_plain(["123", "456"] * 20)
        assert _plan_vector(0, 0, encoded, Keyword("abc")).decision == "filtered"
        assert _plan_vector(0, 0, encoded, Keyword("45")).decision == "scan"

    def test_wildcard_marked_regex(self):
        encoded = encode_plain(["123"] * 10)
        plan = _plan_vector(0, 0, encoded, Keyword("1*3"))
        assert plan.decision == "regex-scan"


class TestExplainBlock:
    def test_summary_structure(self):
        from repro.blockstore.block import LogBlock
        from repro.core.compressor import compress_block
        from repro.core.config import LogGrepConfig
        from tests.conftest import make_mixed_lines

        box = compress_block(
            LogBlock(0, 0, make_mixed_lines(300, seed=95)), LogGrepConfig()
        )
        plan = explain_block(box, parse_query("ERROR AND code=3"), "b0")
        text = plan.summary()
        assert text.startswith("block b0:")
        assert plan.vector_plans
        # Duplicate search strings are planned once.
        plan2 = explain_block(box, parse_query("ERROR OR ERROR"), "b0")
        keywords = [p.keyword for p in plan2.vector_plans]
        assert keywords.count("ERROR") == len(set(
            (p.group, p.var) for p in plan2.vector_plans
        ))
