"""Shared fixtures and generation helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import LogGrepConfig


def make_mixed_lines(n: int = 600, seed: int = 42) -> list:
    """A small log mixing the structures LogGrep cares about:

    * a real-vector template (hex ids with a shared infix),
    * a nominal-vector template (enum states with codes),
    * a path template with a common root,
    * occasional irregular lines (outlier material).
    """
    rng = random.Random(seed)
    lines = []
    for i in range(n):
        r = rng.random()
        if r < 0.4:
            lines.append(
                f"T{1000 + i} bk.{rng.randrange(256):02X}.{i % 20} read"
            )
        elif r < 0.8:
            state = rng.choice(["SUC", "SUC", "SUC", "ERR"])
            lines.append(f"T{1000 + i} state: {state}#16{rng.randrange(100):02d}")
        elif r < 0.95:
            lines.append(
                f"ERROR write to file: /root/usr/admin/{rng.randrange(50)}.log "
                f"failed code={rng.randrange(8)}"
            )
        else:
            lines.append(f"!!corrupt {rng.randrange(10**9)} @@{i}")
    return lines


@pytest.fixture
def mixed_lines():
    return make_mixed_lines()


@pytest.fixture
def small_config():
    """A config with small blocks so multi-block paths get exercised."""
    return LogGrepConfig(block_bytes=8 * 1024)
