"""Range-read archive I/O: box TOC v2, prune index and lazy capsules.

Covers the four legs of the lazy-I/O work:

* the v2 LGCB container (TOC header, strict validation, v1 back-compat),
* ``BlobSource``/``get_range`` plumbing (extent coalescing, mmap, aux),
* the persistent prune index (zero store reads for pruned blocks,
  rebuild-on-open for legacy archives, corruption tolerance),
* lazy capsule fetch (eager ≡ lazy equivalence, byte accounting,
  pin/session sharing one BoxCache).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.blockstore.blobsource import (
    BytesBlobSource,
    StoreBlobSource,
    coalesce_extents,
)
from repro.blockstore.index import (
    INDEX_AUX_NAME,
    ArchiveIndex,
    BlockSummary,
    load_index,
)
from repro.blockstore.store import ArchiveStore, MemoryStore
from repro.capsule.box import BoxTOC, CapsuleBox, _capsules_of
from repro.common.errors import FormatError
from repro.obs import get_registry
from tests.conftest import make_mixed_lines
from tests.test_end_to_end_property import QUERIES, corpora

_READ_BYTES = get_registry().counter("loggrep_store_read_bytes_total")
_RANGE_READS = get_registry().counter("loggrep_store_range_reads_total")

#: Digit-only lines: an alphabetic keyword prunes every block by stamp mask.
PRUNABLE_LINES = [f"1234 5678 {i:06d}" for i in range(400)]

SMALL = 4 * 1024


def _all_capsules(box):
    return [
        capsule
        for group in box.groups
        for vector in group.vectors
        for capsule in _capsules_of(vector)
    ]


def _compress_to(tmp_path, lines, **overrides):
    store = ArchiveStore(str(tmp_path / "archive"))
    lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=SMALL, **overrides))
    lg.compress(lines)
    return store


def _reopen(store, **overrides):
    return LogGrep(store=store, config=LogGrepConfig(block_bytes=SMALL, **overrides))


class TestCoalesceExtents:
    def test_empty(self):
        assert coalesce_extents([]) == []

    def test_disjoint_kept_sorted(self):
        assert coalesce_extents([(30, 5), (0, 10)]) == [(0, 10), (30, 5)]

    def test_adjacent_merge(self):
        assert coalesce_extents([(0, 10), (10, 5)]) == [(0, 15)]

    def test_overlap_merge(self):
        assert coalesce_extents([(0, 10), (5, 20)]) == [(0, 25)]

    def test_gap_tolerance(self):
        assert coalesce_extents([(0, 10), (14, 6)], gap=4) == [(0, 20)]
        assert coalesce_extents([(0, 10), (15, 5)], gap=4) == [(0, 10), (15, 5)]

    def test_contained_extent(self):
        assert coalesce_extents([(0, 100), (20, 5)]) == [(0, 100)]


class TestBlobSource:
    def test_bytes_source(self):
        src = BytesBlobSource(b"hello world")
        assert src.size() == 11
        assert src.read(6, 5) == b"world"
        # In-memory buffers are already paid for: no I/O is accounted.
        assert src.bytes_read == 0

    def test_bytes_source_out_of_range(self):
        src = BytesBlobSource(b"abc")
        with pytest.raises(FormatError):
            src.read(1, 3)
        with pytest.raises(FormatError):
            src.read(4, 1)

    def test_store_source(self):
        store = MemoryStore()
        store.put("blob", b"0123456789")
        src = StoreBlobSource(store, "blob")
        assert src.size() == 10
        assert src.read(2, 4) == b"2345"
        assert src.bytes_read == 4
        with pytest.raises(FormatError):
            src.read(8, 5)


class TestStoreRanges:
    def test_get_range_matches_slice(self, tmp_path):
        store = ArchiveStore(str(tmp_path))
        store.put("b", bytes(range(256)))
        assert store.get_range("b", 10, 16) == bytes(range(10, 26))
        assert store.size("b") == 256

    def test_get_range_counters(self, tmp_path):
        store = ArchiveStore(str(tmp_path))
        store.put("b", b"x" * 100)
        reads, bytes_before = _RANGE_READS.value(), _READ_BYTES.value()
        store.get_range("b", 0, 40)
        assert _RANGE_READS.value() == reads + 1
        assert _READ_BYTES.value() == bytes_before + 40

    def test_get_range_validation(self, tmp_path):
        store = ArchiveStore(str(tmp_path))
        store.put("b", b"abcdef")
        with pytest.raises(ValueError):
            store.get_range("b", -1, 2)
        with pytest.raises(FormatError):
            store.get_range("b", 4, 10)

    def test_mmap_serves_identical_bytes(self, tmp_path):
        store = ArchiveStore(str(tmp_path))
        store.put("b", bytes(range(200)))
        store.enable_mmap()
        try:
            assert store.get_range("b", 50, 25) == bytes(range(50, 75))
        finally:
            store.disable_mmap()

    def test_aux_blobs_hidden_from_accounting(self, tmp_path):
        store = ArchiveStore(str(tmp_path))
        store.put("block-0", b"payload")
        before = store.total_bytes()
        store.put_aux("index.lgix", b"sidecar bytes")
        assert store.aux_exists("index.lgix")
        assert store.get_aux("index.lgix") == b"sidecar bytes"
        assert store.names() == ["block-0"]
        assert store.total_bytes() == before
        store.delete_aux("index.lgix")
        assert not store.aux_exists("index.lgix")

    def test_memory_store_parity(self):
        store = MemoryStore()
        store.put("b", b"0123456789")
        assert store.get_range("b", 3, 4) == b"3456"
        assert store.size("b") == 10
        store.put_aux("x", b"aux")
        assert store.get_aux("x") == b"aux"
        assert store.names() == ["b"]
        with pytest.raises(FormatError):
            store.get_range("b", 9, 5)


def _one_box(lines):
    lg = LogGrep(config=LogGrepConfig())
    lg.compress(lines)
    (name,) = lg.store.names()
    return lg.store.get(name)


class TestBoxTOC:
    LINES = make_mixed_lines(120)

    def test_v2_header_layout(self):
        blob = _one_box(self.LINES)
        toc = BoxTOC.read(BytesBlobSource(blob))
        assert toc.version == 2
        assert toc.bloom_off == 32
        assert toc.meta_off == toc.bloom_off + toc.bloom_len
        assert toc.payload_off == toc.meta_off + toc.meta_len
        assert toc.payload_off + toc.payload_len == len(blob)

    def test_v1_blob_read_by_v2_reader(self):
        blob = _one_box(self.LINES)
        box = CapsuleBox.deserialize(blob)
        v1 = box.serialize(version=1)
        toc = BoxTOC.read(BytesBlobSource(v1))
        assert toc.version == 1
        legacy = CapsuleBox.deserialize(v1)
        assert legacy == box

    def test_truncated_toc_raises(self):
        blob = _one_box(self.LINES)
        for cut in (0, 3, 8, 20, 31):
            with pytest.raises(FormatError):
                BoxTOC.read(BytesBlobSource(blob[:cut]))

    def test_truncated_payload_raises(self):
        blob = _one_box(self.LINES)
        with pytest.raises(FormatError):
            CapsuleBox.deserialize(blob[:-10])

    def test_capsule_extent_out_of_range(self):
        # Shrink the payload section while keeping the TOC self-consistent:
        # the trailing capsule's extent now points past payload_len and must
        # be rejected at open time, before any payload fetch.
        blob = bytearray(_one_box(self.LINES))
        toc = BoxTOC.read(BytesBlobSource(bytes(blob)))
        cut = 16
        assert toc.payload_len > cut
        new_len = toc.payload_len - cut
        blob[28:32] = new_len.to_bytes(4, "little")
        with pytest.raises(FormatError, match="out of range"):
            CapsuleBox.deserialize(bytes(blob[: len(blob) - cut]))

    def test_corrupt_metadata_raises(self):
        blob = bytearray(_one_box(self.LINES))
        toc = BoxTOC.read(BytesBlobSource(bytes(blob)))
        blob[toc.meta_off] ^= 0xFF
        with pytest.raises(FormatError):
            CapsuleBox.deserialize(bytes(blob))

    def test_open_bloom_reads_header_only(self):
        blob = _one_box(self.LINES)
        src = BytesBlobSource(blob)
        CapsuleBox.open_bloom(src)
        toc = BoxTOC.read(BytesBlobSource(blob))
        assert src.bytes_read <= 2 * (32 + toc.bloom_len)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(corpora())
    def test_v1_v2_round_trip_equal(self, lines):
        """serialize(v2) → deserialize ≡ serialize(v1) → deserialize."""
        lg = LogGrep(config=LogGrepConfig(block_bytes=2048))
        lg.compress(lines)
        for name in lg.store.names():
            blob = lg.store.get(name)
            box = CapsuleBox.deserialize(blob)
            assert blob[:5] == b"LGCB\x02"
            v1_box = CapsuleBox.deserialize(box.serialize(version=1))
            assert v1_box == box
            assert v1_box.serialize() == box.serialize()


class TestZeroReadPruning:
    """Acceptance criterion: a fully-pruned query reads zero store bytes."""

    def test_pruned_query_reads_nothing(self, tmp_path):
        store = _compress_to(tmp_path, PRUNABLE_LINES)
        lg = _reopen(store)
        assert len(store.names()) > 1
        before = _READ_BYTES.value()
        result = lg.grep("ERRORWORD")
        assert result.count == 0
        assert result.stats.blocks_pruned == len(store.names())
        assert _READ_BYTES.value() == before, (
            "fully-pruned query must not touch the store"
        )

    def test_pruned_blocks_never_account_whole_blob(self, tmp_path):
        """Even without the sidecar, pruning reads at most bloom-sized
        ranges — never whole blobs (satellite a)."""
        store = _compress_to(tmp_path, PRUNABLE_LINES, use_block_bloom=True)
        store.delete_aux(INDEX_AUX_NAME)
        lg = _reopen(store, use_prune_index=False, use_block_bloom=True)
        whole_reads = get_registry().counter("loggrep_store_reads_total")
        reads_before = whole_reads.value()
        ranged_before = _RANGE_READS.value()
        result = lg.grep("ERRORWORD")
        assert result.stats.blocks_pruned == len(store.names())
        assert whole_reads.value() == reads_before, (
            "pruning must never account a whole-blob read"
        )
        assert _RANGE_READS.value() > ranged_before

    def test_selective_query_reads_fraction(self, tmp_path):
        lines = make_mixed_lines(1500)
        store = _compress_to(tmp_path, lines)
        lg = _reopen(store)
        total = sum(store.size(n) for n in store.names())
        before = _READ_BYTES.value()
        assert lg.grep("ERROR").lines == grep_lines("ERROR", lines)
        lazy_bytes = _READ_BYTES.value() - before
        assert 0 < lazy_bytes <= total


class TestPruneIndex:
    def test_sidecar_written_at_compress(self, tmp_path):
        store = _compress_to(tmp_path, make_mixed_lines(400))
        assert store.aux_exists(INDEX_AUX_NAME)
        index = load_index(store)
        assert index is not None
        assert len(index) == len(store.names())

    def test_serialize_round_trip(self, tmp_path):
        store = _compress_to(tmp_path, make_mixed_lines(400))
        index = load_index(store)
        again = ArchiveIndex.deserialize(index.serialize())
        assert sorted(again.blocks) == sorted(index.blocks)
        for name, summary in index.blocks.items():
            other = again.get(name)
            assert other.type_mask == summary.type_mask
            assert other.num_lines == summary.num_lines
            assert other.vectors == summary.vectors

    def test_legacy_archive_rebuilds_index(self, tmp_path):
        lines = make_mixed_lines(400)
        store = _compress_to(tmp_path, lines)
        store.delete_aux(INDEX_AUX_NAME)
        lg = _reopen(store)
        assert store.aux_exists(INDEX_AUX_NAME), "rebuild must re-persist"
        assert lg.grep("ERROR").lines == grep_lines("ERROR", lines)

    def test_corrupt_sidecar_tolerated(self, tmp_path):
        lines = make_mixed_lines(400)
        store = _compress_to(tmp_path, lines)
        store.put_aux(INDEX_AUX_NAME, b"not an index at all")
        lg = _reopen(store)
        assert lg.grep("ERROR").lines == grep_lines("ERROR", lines)

    def test_bad_magic_rejected(self):
        with pytest.raises(FormatError):
            ArchiveIndex.deserialize(b"XXXX\x01")

    def test_summary_from_box_matches_lines(self):
        lines = make_mixed_lines(200)
        lg = LogGrep(config=LogGrepConfig())
        lg.compress(lines)
        (name,) = lg.store.names()
        summary = BlockSummary.from_box(
            CapsuleBox.deserialize(lg.store.get(name))
        )
        assert summary.num_lines == len(lines)

    def test_index_off_still_correct(self, tmp_path):
        lines = make_mixed_lines(400)
        store = _compress_to(tmp_path, lines, use_prune_index=False)
        lg = _reopen(store, use_prune_index=False)
        assert lg.grep("ERROR").lines == grep_lines("ERROR", lines)


class TestV1ArchiveBackCompat:
    def test_v1_archive_fully_queryable(self, tmp_path):
        lines = make_mixed_lines(500)
        store = _compress_to(tmp_path, lines)
        # Rewrite every block in the legacy v1 container and drop the
        # sidecar: exactly what a pre-TOC archive on disk looks like.
        for name in store.names():
            box = CapsuleBox.deserialize(store.get(name))
            store.put(name, box.serialize(version=1))
        store.delete_aux(INDEX_AUX_NAME)
        lg = _reopen(store)
        for command in ("ERROR", "read", "state: ERR", "code=3"):
            assert lg.grep(command).lines == grep_lines(command, lines)
        assert lg.decompress_all() == lines


class TestLazyCapsules:
    def test_lazy_open_defers_payload(self):
        blob = _one_box(make_mixed_lines(150))
        box = CapsuleBox.open(BytesBlobSource(blob, "<box>"))
        capsules = _all_capsules(box)
        assert capsules and not any(c.is_fetched for c in capsules)
        # Stats never force a fetch.
        assert box.payload_bytes() > 0
        assert not any(c.is_fetched for c in capsules)

    def test_prefetch_fetches_all(self):
        blob = _one_box(make_mixed_lines(150))
        store = MemoryStore()
        store.put("block", blob)
        src = StoreBlobSource(store, "block")
        box = CapsuleBox.open(src)
        fetched = box.prefetch()
        assert fetched > 0
        assert all(c.is_fetched for c in _all_capsules(box))
        assert box == CapsuleBox.deserialize(blob)

    def test_prefetch_noop_for_eager_boxes(self):
        blob = _one_box(make_mixed_lines(150))
        box = CapsuleBox.deserialize(blob)
        assert box.prefetch() == 0

    def test_lazy_round_trip_exact(self, tmp_path):
        lines = make_mixed_lines(600)
        store = _compress_to(tmp_path, lines)
        assert _reopen(store).decompress_all() == lines

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        corpora(),
        st.sampled_from(QUERIES),
        st.sampled_from(["default", "w/o fixed", "w/o stamp", "bloom"]),
        st.booleans(),
    )
    def test_lazy_equals_eager(self, lines, command, layout, ignore_case):
        """Lazy ranged I/O is invisible to results, for every layout."""
        overrides = {"block_bytes": 2048}
        if layout == "w/o fixed":
            overrides["use_padding"] = False
        elif layout == "w/o stamp":
            overrides["use_stamps"] = False
        elif layout == "bloom":
            overrides["use_block_bloom"] = True
        lazy = LogGrep(config=LogGrepConfig(lazy_io=True, **overrides))
        lazy.compress(lines)
        eager = LogGrep(
            store=lazy.store,
            config=LogGrepConfig(lazy_io=False, **overrides),
        )
        expected = grep_lines(command, lines, ignore_case=ignore_case)
        assert lazy.grep(command, ignore_case=ignore_case).lines == expected
        assert eager.grep(command, ignore_case=ignore_case).lines == expected
        assert lazy.count(command) == eager.count(command)


class TestPinSharesBoxCache:
    def test_pin_goes_through_executor_cache(self, tmp_path):
        store = _compress_to(tmp_path, make_mixed_lines(500))
        lg = _reopen(store)
        lg.pin_blocks_in_memory()
        cache = lg._executor.source.box_cache
        assert len(cache) == len(store.names())
        for name in store.names():
            assert lg._load_box(name) is cache.get(name)

    def test_session_queries_hit_pin(self, tmp_path):
        lines = make_mixed_lines(500)
        store = _compress_to(tmp_path, lines)
        lg = _reopen(store)
        with lg.open_session() as session:
            hits_counter = get_registry().counter("loggrep_box_cache_hits_total")
            before = hits_counter.value()
            assert session.grep("ERROR").lines == grep_lines("ERROR", lines)
            assert hits_counter.value() > before
        assert len(lg._executor.source.box_cache) == 0


class TestEagerModeOracle:
    def test_eager_io_reads_whole_blobs(self, tmp_path):
        lines = make_mixed_lines(500)
        store = _compress_to(tmp_path, lines)
        lg = _reopen(store, lazy_io=False, use_prune_index=False)
        assert lg.grep("ERROR").lines == grep_lines("ERROR", lines)

    def test_describe_reports_io_mode(self, tmp_path):
        from repro.query.plan import OutputMode, build_plan

        store = _compress_to(tmp_path, make_mixed_lines(300))
        plan = build_plan("ERROR", OutputMode.COUNT)
        lazy = _reopen(store, lazy_io=True)
        eager = _reopen(store, lazy_io=False)
        assert "lazy (ranged reads)" in lazy._executor.describe(plan)
        assert "eager (whole blobs)" in eager._executor.describe(plan)
