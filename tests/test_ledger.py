"""Tests for the per-query resource ledger, budgets and the slow-query log."""

import dataclasses
import json
import threading

import pytest

from repro import LogGrep, LogGrepConfig
from repro.blockstore.store import MemoryStore
from repro.common.errors import BudgetExceeded
from repro.obs import ledger as ledger_channel
from repro.obs.metrics import get_registry
from repro.query.plan import OutputMode
from repro.query.stats import (
    NULL_LEDGER,
    OPERATORS,
    BudgetMeter,
    NullQueryLedger,
    OperatorStats,
    QueryLedger,
)
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=8 * 1024)


def make_lg(**overrides):
    config = LogGrepConfig(block_bytes=8 * 1024, **overrides)
    lg = LogGrep(store=MemoryStore(), config=config)
    lg.compress(make_mixed_lines(700, seed=21))
    return lg


# ----------------------------------------------------------------------
# unit: ledger bookkeeping
# ----------------------------------------------------------------------
class TestOperatorStats:
    def test_merge_covers_every_field(self):
        """Drift test: merge must aggregate every dataclass field."""
        a = OperatorStats(**{f.name: 1 for f in dataclasses.fields(OperatorStats)})
        b = OperatorStats(**{f.name: 2 for f in dataclasses.fields(OperatorStats)})
        a.merge(b)
        for f in dataclasses.fields(OperatorStats):
            assert getattr(a, f.name) == 3, f"merge dropped {f.name}"


class TestQueryLedger:
    def test_operator_context_times_and_routes_charges(self):
        ledger = QueryLedger()
        with ledger.operator("locate"):
            ledger_channel.charge_read(100)
            ledger_channel.charge_rows_scanned(7)
            with ledger.operator("match"):
                ledger_channel.charge_read(50)
            # after the nested operator exits, charges land on locate again
            ledger_channel.charge_decompress(30)
        assert ledger_channel.current_entry() is None
        locate = ledger.operators["locate"]
        match = ledger.operators["match"]
        assert locate.read_bytes == 100 and match.read_bytes == 50
        assert locate.rows_scanned == 7
        assert locate.bytes_decompressed == 30
        assert locate.calls == 1 and match.calls == 1
        assert locate.seconds > 0.0
        assert ledger.read_bytes == 150

    def test_spawn_and_merge_children(self):
        root = QueryLedger()
        results = []

        def work(i):
            child = root.spawn()
            with child.operator("match"):
                ledger_channel.charge_read(10 * (i + 1))
            results.append(child)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert root.read_bytes == 0
        root.merge_children()
        assert root.read_bytes == 10 + 20 + 30 + 40
        assert root.operators["match"].calls == 4
        root.merge_children()  # idempotent: children were drained
        assert root.read_bytes == 100

    def test_ordered_operators_follow_pipeline_order(self):
        ledger = QueryLedger()
        for name in ("reconstruct", "plan", "match", "load_box"):
            with ledger.operator(name):
                pass
        names = [name for name, _ in ledger.ordered_operators()]
        assert names == ["plan", "load_box", "match", "reconstruct"]
        assert set(names) <= set(OPERATORS)

    def test_as_dict_shape(self):
        ledger = QueryLedger(BudgetMeter(max_read_bytes=100))
        with ledger.operator("locate"):
            ledger_channel.charge_read(60)
        ledger.charge_cache("value", True)
        doc = ledger.as_dict()
        assert doc["operators"]["locate"]["read_bytes"] == 60
        assert doc["totals"]["read_bytes"] == 60
        assert doc["caches"]["value"] == {"hits": 1, "misses": 0}
        assert doc["budget"]["max_read_bytes"] == 100
        assert doc["budget"]["read_bytes"] == 60
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_null_ledger_is_inert(self):
        before = ledger_channel.current_entry()
        with NULL_LEDGER.operator("locate"):
            assert ledger_channel.current_entry() is before
            ledger_channel.charge_read(100)  # goes nowhere, raises nothing
        assert NULL_LEDGER.spawn() is NULL_LEDGER
        NULL_LEDGER.merge_children()
        assert not NULL_LEDGER.enabled
        assert NULL_LEDGER.operators == {}
        assert isinstance(NULL_LEDGER, NullQueryLedger)


class TestBudgetMeter:
    def test_charges_raise_past_the_limit(self):
        meter = BudgetMeter(max_read_bytes=100, max_decoded_values=5)
        meter.charge_read(100)  # exactly at the limit: fine
        with pytest.raises(BudgetExceeded) as info:
            meter.charge_read(1)
        assert info.value.resource == "read_bytes"
        assert info.value.limit == 100
        assert info.value.spent == 101
        with pytest.raises(BudgetExceeded):
            meter.charge_decoded(6)

    def test_unset_limits_never_raise(self):
        meter = BudgetMeter()
        meter.charge_read(1 << 40)
        meter.charge_decoded(1 << 40)
        # Unbudgeted dimensions are not even tracked (no lock taken).
        assert meter.read_bytes == 0 and meter.decoded_values == 0


# ----------------------------------------------------------------------
# end to end: accounting through the executor
# ----------------------------------------------------------------------
class TestLedgerEndToEnd:
    def test_grep_uses_null_ledger_by_default(self):
        lg = make_lg()
        result = lg.grep("ERROR")
        assert result.ledger is NULL_LEDGER
        assert ledger_channel.current_entry() is None

    def test_analyze_read_bytes_reconcile_with_store_metric(self):
        """Acceptance: summed read_bytes == range-read counter delta (±1%).

        Pinned to lazy I/O: the reconciliation target is the *ranged*-read
        counter, which eager whole-blob mode never increments.
        """
        lg = make_lg(lazy_io=True)
        counter = get_registry().counter("loggrep_store_range_read_bytes_total")
        before = counter.value()
        result = lg.explain_analyze("ERROR")
        delta = counter.value() - before
        assert delta > 0
        total = result.ledger.totals().read_bytes
        assert total == pytest.approx(delta, rel=0.01)
        # The table in the report carries the same total.
        assert f"{total}" in result.report
        assert "resource ledger" in result.report

    def test_analyze_matches_grep_results(self):
        lg = make_lg()
        expected = lg.grep("ERROR")
        lg.clear_query_cache()
        analyzed = lg.explain_analyze("ERROR")
        assert analyzed.lines == expected.lines
        assert analyzed.line_ids == expected.line_ids
        assert analyzed.ledger.enabled
        # Every pipeline stage that ran shows up under its canonical name.
        names = set(analyzed.ledger.operators)
        assert {"plan", "load_box", "locate", "match", "reconstruct"} <= names
        assert names <= set(OPERATORS)

    def test_parallel_ledger_matches_serial(self):
        """-j merging: totals are identical to the serial execution."""
        lines = make_mixed_lines(700, seed=22)
        serial = LogGrep(store=MemoryStore(), config=CONFIG)
        serial.compress(lines)
        parallel = LogGrep(
            store=MemoryStore(),
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=4),
        )
        parallel.compress(lines)
        a = serial.explain_analyze("ERROR").ledger
        b = parallel.explain_analyze("ERROR").ledger
        ta, tb = a.totals(), b.totals()
        for spec in dataclasses.fields(OperatorStats):
            if spec.name == "seconds":
                continue  # wall time legitimately differs
            assert getattr(ta, spec.name) == getattr(tb, spec.name), spec.name
        assert a.decoded_values == b.decoded_values

    def test_ledger_rows_scanned_python_kernel(self):
        """The python kernel path charges coverage like the bytes kernels.

        The keyword must land in a variable vector (``ERROR`` sits in the
        static template and is matched without any capsule scan), and full
        scans cover the same rows under either kernel.
        """
        rows = {}
        for kernel in ("bytes", "python"):
            lg = make_lg(scan_kernel=kernel)
            rows[kernel] = lg.explain_analyze("32.log").ledger.rows_scanned
        assert rows["python"] == rows["bytes"] > 0

    def test_count_mode_with_threshold_gets_a_ledger(self):
        lg = make_lg(slow_query_ms=10_000.0)
        result = lg._executor.run("ERROR", OutputMode.COUNT)
        assert result.ledger.enabled
        assert result.ledger.totals().read_bytes > 0


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------
class TestBudgets:
    def test_read_budget_aborts_with_partial_ledger(self):
        lg = make_lg(max_read_bytes=1500)
        with pytest.raises(BudgetExceeded) as info:
            lg.grep("ERROR")
        exc = info.value
        assert exc.resource == "read_bytes"
        assert exc.spent > exc.limit == 1500
        assert exc.ledger is not None and exc.ledger.enabled
        assert exc.ledger.totals().read_bytes >= exc.limit

    def test_read_budget_aborts_under_parallelism(self):
        lg = make_lg(max_read_bytes=1500, query_parallelism=4)
        with pytest.raises(BudgetExceeded) as info:
            lg.grep("ERROR")
        assert info.value.ledger.totals().read_bytes > 0

    def test_decoded_values_budget(self):
        lg = make_lg(max_decoded_values=1)
        with pytest.raises(BudgetExceeded) as info:
            lg.grep("ERROR")
        assert info.value.resource == "decoded_values"
        assert info.value.ledger.decoded_values > 1

    def test_generous_budget_does_not_fire(self):
        lg = make_lg(max_read_bytes=1 << 30, max_decoded_values=1 << 30)
        result = lg.grep("ERROR")
        assert result.count > 0
        assert result.ledger.enabled
        assert result.ledger.budget is not None
        assert 0 < result.ledger.budget.read_bytes < (1 << 30)


# ----------------------------------------------------------------------
# slow-query log
# ----------------------------------------------------------------------
class TestSlowQueryLog:
    def test_over_threshold_query_emits_exactly_one_record(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        lg = make_lg(slow_query_ms=0.0, slow_query_log_path=str(path))
        counter = get_registry().counter("loggrep_slow_queries_total")
        before = counter.value()
        result = lg.grep("ERROR")
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == 1
        record = records[0]
        assert record["query"] == "ERROR"
        assert record["mode"] == "lines"
        assert record["elapsed_ms"] >= record["threshold_ms"] == 0.0
        assert "physical plan" in record["plan"]
        assert record["stats"]["blocks_visited"] == result.stats.blocks_visited
        assert (
            record["ledger"]["totals"]["read_bytes"]
            == result.ledger.totals().read_bytes
        )
        assert counter.value() == before + 1

    def test_under_threshold_query_emits_nothing(self, tmp_path):
        path = tmp_path / "slow.jsonl"
        lg = make_lg(slow_query_ms=60_000.0, slow_query_log_path=str(path))
        result = lg.grep("ERROR")
        assert result.ledger.enabled  # threshold still activates accounting
        assert not path.exists()

    def test_fallback_to_logging(self, caplog):
        import logging

        lg = make_lg(slow_query_ms=0.0)
        with caplog.at_level(logging.WARNING, logger="repro.slowlog"):
            lg.grep("ERROR")
        slow = [r for r in caplog.records if "slow query" in r.getMessage()]
        assert len(slow) == 1
