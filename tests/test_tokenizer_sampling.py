"""Tests for the token model and deterministic sampling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.sampling import MIN_SAMPLE, sample
from repro.common.tokenizer import is_single_token, join_tokens, tokenize


class TestTokenizer:
    def test_basic(self):
        assert tokenize("a b c") == ["a", "b", "c"]

    def test_empty_line(self):
        assert tokenize("") == [""]

    def test_double_space_preserved(self):
        assert tokenize("a  b") == ["a", "", "b"]

    @given(st.text(alphabet=st.characters(blacklist_characters="\n"), max_size=80))
    def test_lossless_roundtrip(self, line):
        assert join_tokens(tokenize(line)) == line

    def test_is_single_token(self):
        assert is_single_token("abc:def")
        assert not is_single_token("a b")


class TestSampling:
    def test_deterministic(self):
        values = [str(i) for i in range(1000)]
        assert sample(values, 0.05, seed=7) == sample(values, 0.05, seed=7)

    def test_different_seeds_differ(self):
        values = [str(i) for i in range(5000)]
        assert sample(values, 0.05, seed=1) != sample(values, 0.05, seed=2)

    def test_minimum_sample(self):
        values = [str(i) for i in range(40)]
        assert len(sample(values, 0.05, seed=0)) >= min(MIN_SAMPLE, len(values))

    def test_small_input_returned_whole(self):
        values = ["a", "b", "c"]
        assert sample(values, 0.05, seed=0) == values

    def test_preserves_order(self):
        values = [str(i) for i in range(2000)]
        picked = sample(values, 0.05, seed=3)
        assert picked == sorted(picked, key=int)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            sample(["a"], 0.0, seed=0)
        with pytest.raises(ValueError):
            sample(["a"], 1.5, seed=0)

    def test_rate_one_returns_all(self):
        values = [str(i) for i in range(100)]
        assert sample(values, 1.0, seed=0) == values
