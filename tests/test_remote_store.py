"""Tests for the fault-injecting simulated object store."""

import time

import pytest

from repro.blockstore.remote import FaultProfile, RemoteStore, RemoteStoreError
from repro.blockstore.store import MemoryStore
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=8 * 1024)


class TestRequestAccounting:
    def test_data_path_ops_are_billable(self):
        store = RemoteStore()
        store.put("a", b"hello")
        assert store.get("a") == b"hello"
        assert store.get_range("a", 1, 3) == b"ell"
        assert store.size("a") == 5
        store.put_aux("a.idx", b"meta")
        assert store.get_aux("a.idx") == b"meta"
        store.delete_aux("a.idx")
        store.delete("a")
        assert store.requests == 8

    def test_local_bookkeeping_is_free(self):
        store = RemoteStore()
        store.put("a", b"hello")
        before = store.requests
        assert store.exists("a")
        assert not store.aux_exists("a")
        assert store.names() == ["a"]
        assert store.total_bytes() == 5
        assert store.requests == before

    def test_latency_injected(self):
        store = RemoteStore(profile=FaultProfile(latency_s=0.02))
        store.put("a", b"x")
        start = time.perf_counter()
        store.get("a")
        assert time.perf_counter() - start >= 0.02


class TestFaultInjection:
    def test_fail_first_heals_after_n(self):
        store = RemoteStore(profile=FaultProfile(fail_first=2))
        with pytest.raises(RemoteStoreError):
            store.put("a", b"x")
        with pytest.raises(RemoteStoreError):
            store.put("a", b"x")
        store.put("a", b"x")  # third request succeeds
        assert store.get("a") == b"x"
        assert store.failures_injected == 2

    def test_failure_rate_one_always_fails(self):
        inner = MemoryStore()
        inner.put("a", b"x")
        store = RemoteStore(inner, FaultProfile(failure_rate=1.0))
        for _ in range(5):
            with pytest.raises(RemoteStoreError):
                store.get("a")
        assert store.failures_injected == 5

    def test_failure_schedule_is_deterministic(self):
        def schedule(seed):
            inner = MemoryStore()
            inner.put("a", b"x")
            store = RemoteStore(inner, FaultProfile(failure_rate=0.5, seed=seed))
            outcomes = []
            for _ in range(32):
                try:
                    store.get("a")
                    outcomes.append(True)
                except RemoteStoreError:
                    outcomes.append(False)
            return outcomes

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_set_profile_swaps_live(self):
        store = RemoteStore()
        store.put("a", b"x")
        store.set_profile(FaultProfile(failure_rate=1.0))
        with pytest.raises(RemoteStoreError):
            store.get("a")
        store.set_profile(FaultProfile())
        assert store.get("a") == b"x"


class TestLogGrepOverRemote:
    """The whole lazy-I/O stack must run unchanged against a RemoteStore."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return make_mixed_lines(700, seed=11)

    def test_grep_matches_memory_store(self, corpus):
        local = LogGrep(store=MemoryStore(), config=CONFIG)
        local.compress(corpus)
        remote = LogGrep(store=RemoteStore(), config=CONFIG)
        remote.compress(corpus)
        for command in ("read", "state: ERR", "bk.A* AND read"):
            expected = local.grep(command)
            got = remote.grep(command)
            assert got.lines == expected.lines
            assert got.line_ids == expected.line_ids

    def test_ranged_reads_hit_remote(self, corpus):
        store = RemoteStore()
        lg = LogGrep(store=store, config=CONFIG)
        lg.compress(corpus)
        before = store.requests
        fresh = LogGrep(store=store, config=CONFIG)
        result = fresh.grep("state: ERR")
        assert result.count > 0
        assert store.requests > before  # queries pay remote requests
