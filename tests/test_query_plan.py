"""Tests for the query planner (logical plan IR) and the operator-pipeline
executor: term ordering, output modes, schedulers, the box-cache LRU and
the executor-level match memo."""

import pytest

from repro import LogGrep, LogGrepConfig
from repro.baselines.evalutil import grep_lines
from repro.capsule.box import CapsuleBox
from repro.obs.metrics import get_registry
from repro.query.executor import BoxCache, QueryExecutor, StoreBoxSource
from repro.query.language import parse_query
from repro.query.plan import (
    OutputMode,
    QueryPlan,
    build_plan,
    term_selectivity,
)
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(600, seed=11)


@pytest.fixture(scope="module")
def store(corpus):
    lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
    lg.compress(corpus)
    return lg


# ----------------------------------------------------------------------
# logical plan IR
# ----------------------------------------------------------------------
class TestPlanIR:
    def test_build_plan_from_string_and_command(self):
        from_str = build_plan("ERROR AND read")
        from_cmd = build_plan(parse_query("ERROR AND read"))
        assert from_str.raw == from_cmd.raw == "ERROR AND read"
        assert from_str.mode is OutputMode.LINES
        assert isinstance(from_str, QueryPlan)

    def test_terms_ordered_most_selective_first(self):
        plan = build_plan("ab AND abcdef AND abcd")
        (disjunct,) = plan.disjuncts
        assert [t.search.text for t in disjunct.terms] == [
            "abcdef",
            "abcd",
            "ab",
        ]
        assert [t.selectivity for t in disjunct.terms] == [6, 4, 2]

    def test_negated_terms_sorted_last(self):
        plan = build_plan("aa NOT zzzzzz")
        (disjunct,) = plan.disjuncts
        assert [(t.search.text, t.negated) for t in disjunct.terms] == [
            ("aa", False),
            ("zzzzzz", True),
        ]

    def test_selectivity_uses_longest_literal_of_wildcards(self):
        plan = build_plan("abc*d")
        term = plan.disjuncts[0].terms[0]
        assert term.selectivity == 3  # "abc", not "abc*d"
        parsed = parse_query("plain")
        assert term_selectivity(parsed.disjuncts[0][0]) == 5

    def test_search_strings_dedup_by_cache_key(self):
        plan = build_plan("aa AND bb OR aa AND cc")
        texts = [s.text for s in plan.search_strings()]
        assert sorted(texts) == ["aa", "bb", "cc"]

    def test_ignore_case_flows_through(self):
        plan = build_plan("error", ignore_case=True)
        assert plan.ignore_case
        assert not build_plan("error").ignore_case

    def test_describe_mentions_terms_and_mode(self):
        plan = build_plan("ERROR NOT read", OutputMode.COUNT)
        text = plan.describe()
        assert "mode=count" in text
        assert "'ERROR'(sel=5)" in text
        assert "NOT 'read'(sel=4)" in text


# ----------------------------------------------------------------------
# executor modes and schedulers
# ----------------------------------------------------------------------
class TestExecutor:
    def test_lines_mode_matches_reference(self, store, corpus):
        result = store._executor.run("ERROR", OutputMode.LINES)
        expected = grep_lines("ERROR", corpus)
        assert [text for _, text in result.entries] == expected
        assert result.count == len(expected)

    def test_count_mode_skips_reconstruction(self, store):
        grep_result = store._executor.run("read", OutputMode.LINES)
        count_result = store._executor.run("read", OutputMode.COUNT)
        assert count_result.count == grep_result.count
        assert count_result.entries == []

    def test_parallel_count_equals_serial(self, corpus):
        # Regression: count() used to ignore config.query_parallelism.
        serial = LogGrep(
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=1)
        )
        parallel = LogGrep(
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=4)
        )
        serial.compress(corpus)
        parallel.compress(corpus)
        for command in ["read", "ERROR OR state:", "T1* NOT SUC"]:
            assert parallel.count(command) == serial.count(command)
            assert parallel.grep(command).lines == serial.grep(command).lines

    def test_parallel_stats_match_serial(self, corpus):
        serial = LogGrep(
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=1)
        )
        parallel = LogGrep(
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=3)
        )
        serial.compress(corpus)
        parallel.compress(corpus)
        a = serial.grep("state:").stats.as_dict()
        b = parallel.grep("state:").stats.as_dict()
        assert a == b

    def test_explain_mode_is_a_dry_run(self, store):
        registry = get_registry()
        queries = registry.counter("loggrep_queries_total", "")
        before = queries.value()
        result = store._executor.run("ERROR", OutputMode.EXPLAIN)
        # A dry run decompresses nothing and publishes no query metrics.
        assert result.stats.capsules_decompressed == 0
        assert queries.value() == before
        assert result.renderings
        assert "keyword-vector pairs filtered" in result.rendering

    def test_describe_renders_physical_plan(self, store):
        plan = build_plan("ERROR AND read", OutputMode.COUNT)
        text = store._executor.describe(plan)
        assert "physical plan for 'ERROR AND read' (mode=count)" in text
        assert (
            "BloomPrune(off) -> LoadBox -> Locate -> "
            "Match(query_cache=on) -> Reconstruct(elided)" in text
        )
        assert "scheduler: serial over" in text

    def test_describe_thread_pool_scheduler(self, corpus):
        lg = LogGrep(
            config=LogGrepConfig(block_bytes=8 * 1024, query_parallelism=4)
        )
        lg.compress(corpus)
        text = lg._executor.describe(build_plan("read"))
        assert "thread-pool(4)" in text
        assert "-> Reconstruct" in text

    def test_explain_facade_includes_physical_plan(self, store):
        text = store.explain("ERROR")
        assert "physical plan for 'ERROR'" in text
        assert "block block-00000000.lgcb" in text

    def test_match_memo_hits_on_repeat(self, corpus):
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(corpus)
        first = lg.grep("ERROR")
        second = lg.grep("ERROR")
        assert first.stats.cache_hits == 0
        assert second.stats.cache_hits > 0
        assert second.lines == first.lines

    def test_match_memo_respects_cache_switch(self, corpus):
        # batch_scans pinned off: this test is about the sequential match
        # memo, and the batched lane's fragment cache (its own knob) would
        # otherwise report warm hits under the LOGGREP_BATCH_SCANS=1 CI leg.
        lg = LogGrep(
            config=LogGrepConfig(
                block_bytes=8 * 1024, use_query_cache=False, batch_scans=False
            )
        )
        lg.compress(corpus)
        lg.grep("ERROR")
        assert lg.grep("ERROR").stats.cache_hits == 0

    def test_no_query_logic_left_on_the_facade(self):
        # Acceptance: grep/count/explain are thin wrappers over the
        # executor; the old per-block helpers are gone.
        assert not hasattr(LogGrep, "_grep_block")
        assert not hasattr(LogGrep, "_locate_block")

    def test_engine_readers_public_accessor(self, store):
        from repro.query.engine import BlockEngine
        from repro.query.stats import QueryStats

        name = store.store.names()[0]
        box = CapsuleBox.deserialize(store.store.get(name))
        engine = BlockEngine(box, store.config.query_settings(), QueryStats())
        engine.search_string_rows(parse_query("read").disjuncts[0][0].search)
        assert engine.readers is engine._readers
        assert isinstance(engine.readers, dict)


# ----------------------------------------------------------------------
# the bounded box cache
# ----------------------------------------------------------------------
class TestBoxCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BoxCache(0)

    def test_lru_eviction_bound(self):
        cache = BoxCache(2)
        cache.put("a", "box-a")
        cache.put("b", "box-b")
        cache.put("c", "box-c")  # evicts "a"
        assert len(cache) == 2
        assert "a" not in cache
        assert cache.get("a") is None
        assert cache.get("b") == "box-b"

    def test_get_refreshes_recency(self):
        cache = BoxCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "b" is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache

    def test_pop_and_clear(self):
        cache = BoxCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.pop("a") == 1
        assert cache.pop("missing") is None
        cache.clear()
        assert len(cache) == 0

    def test_metrics_track_cache_activity(self):
        registry = get_registry()
        hits = registry.counter("loggrep_box_cache_hits_total", "")
        misses = registry.counter("loggrep_box_cache_misses_total", "")
        evictions = registry.counter("loggrep_box_cache_evictions_total", "")
        entries = registry.gauge("loggrep_box_cache_entries", "")
        h0, m0, e0 = hits.value(), misses.value(), evictions.value()
        cache = BoxCache(1)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.put("b", 2)  # evicts "a"
        assert hits.value() == h0 + 1
        assert misses.value() == m0 + 1
        assert evictions.value() == e0 + 1
        assert entries.value() == 1

    def test_pinning_respects_lru_bound(self, corpus):
        lg = LogGrep(
            config=LogGrepConfig(block_bytes=4 * 1024, box_cache_capacity=2)
        )
        lg.compress(corpus)
        assert len(lg.store.names()) > 2
        lg.pin_blocks_in_memory()
        assert len(lg._box_cache) == 2
        # Pinned or not, queries stay correct.
        assert lg.grep("read").count == lg.count("read")
        lg.unpin_blocks()
        assert len(lg._box_cache) == 0

    def test_session_grep_uses_pinned_boxes(self, corpus):
        lg = LogGrep(config=LogGrepConfig(block_bytes=8 * 1024))
        lg.compress(corpus)
        expected = grep_lines("ERROR", corpus)
        with lg.open_session() as session:
            assert session.grep("ERROR").lines == expected
            assert "physical plan" in session.explain("ERROR")
            assert session.queries_run == 1  # explain is not a query


# ----------------------------------------------------------------------
# plumbing: sources over stores
# ----------------------------------------------------------------------
class TestStoreBoxSource:
    def test_source_without_cache(self, store):
        source = StoreBoxSource(store.store)
        assert source.names() == store.store.names()
        assert source.cached(source.names()[0]) is None

    def test_executor_over_bare_source(self, store, corpus):
        executor = QueryExecutor(StoreBoxSource(store.store), store.config)
        result = executor.run("read", OutputMode.COUNT)
        assert result.count == len(grep_lines("read", corpus))
