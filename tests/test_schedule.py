"""Tests for the compression scheduler and the template warm-start cache."""

import time

import pytest

from repro.blockstore.block import LogBlock, block_name, split_lines
from repro.blockstore.store import MemoryStore
from repro.core.config import LogGrepConfig
from repro.core.schedule import CompressionScheduler
from repro.obs.metrics import get_registry
from repro.obs.trace import tracing
from repro.staticparse.cache import TemplateCache, template_key
from repro.staticparse.parser import BlockParser
from repro.staticparse.template import Template
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=4 * 1024, compress_parallelism=1)


def make_blocks(lines, config=CONFIG):
    blocks = []
    next_line = 0
    for block in split_lines(lines, config.block_bytes):
        block.first_line_id = next_line
        next_line += block.num_lines
        blocks.append(block)
    return blocks


class TestTemplateCache:
    def test_merge_dedupes_and_orders(self):
        cache = TemplateCache()
        a = template_key(Template(0, ["read", None]))
        b = template_key(Template(1, ["write", None, "done"]))
        assert cache.merge([a, b, a]) == 2
        assert cache.merge([a]) == 0
        assert cache.snapshot() == [a, b]
        assert len(cache) == 2
        assert a in cache

    def test_catch_all_templates_rejected(self):
        """All-variable templates would absorb every same-width line of
        later blocks, so the cache refuses them."""
        cache = TemplateCache()
        assert cache.merge([(None, None, None)]) == 0
        assert len(cache) == 0

    def test_clear(self):
        cache = TemplateCache()
        cache.merge([template_key(Template(0, ["x", None]))])
        cache.clear()
        assert len(cache) == 0


class TestWarmStartParse:
    def test_cold_cache_trips_drift_guard(self):
        lines = make_mixed_lines(300, seed=1)
        cache = TemplateCache()
        parser = BlockParser(seed=1)
        parsed, outcome = parser.parse_cached(lines, cache)
        assert outcome.remined
        assert outcome.cache_hits == 0
        assert len(cache) > 0  # seeded for the next block
        # A remined parse is exactly a fresh parse.
        fresh = parser.parse(lines)
        assert [t.tokens for t in parsed.templates] == [
            t.tokens for t in fresh.templates
        ]

    def test_warm_cache_assigns_without_mining(self):
        lines = make_mixed_lines(300, seed=1)
        cache = TemplateCache()
        parser = BlockParser(seed=1)
        parser.parse_cached(lines, cache)  # seed
        repeat = make_mixed_lines(300, seed=2)  # same shapes, new values
        parsed, outcome = parser.parse_cached(repeat, cache)
        assert not outcome.remined
        assert outcome.cache_hits > outcome.cache_misses
        assert outcome.hit_rate > 0.5
        # Coverage stays total: every line landed in a group.
        assert sum(g.num_entries for g in parsed.groups) == len(repeat)

    def test_warm_parse_round_trips(self):
        lines = make_mixed_lines(400, seed=3)
        cache = TemplateCache()
        parser = BlockParser(seed=3)
        parser.parse_cached(lines, cache)
        repeat = make_mixed_lines(400, seed=4)
        parsed, _ = parser.parse_cached(repeat, cache)
        rebuilt = {}
        for group in parsed.groups:
            for row, line_id in enumerate(group.line_ids):
                rebuilt[line_id] = group.render_entry(row)
        assert [rebuilt[i] for i in range(len(repeat))] == repeat

    def test_drift_guard_remines_on_format_change(self):
        cache = TemplateCache()
        parser = BlockParser(seed=5)
        parser.parse_cached(make_mixed_lines(300, seed=5), cache)
        # A completely different format: the cache matches almost nothing.
        alien = [f"kernel: oom-killer invoked pid={i} rss={i * 7}" for i in range(200)]
        _, outcome = parser.parse_cached(alien, cache)
        assert outcome.remined
        assert outcome.cache_misses == len(alien)

    def test_warm_start_spans_emitted(self):
        cache = TemplateCache()
        parser = BlockParser(seed=6)
        with tracing() as tracer:
            with tracer.span("root") as root:
                parser.parse_cached(make_mixed_lines(200, seed=6), cache)
                parser.parse_cached(make_mixed_lines(200, seed=7), cache)
        assert root.find("parse_cached")
        assert root.find("mine_fallback")

    def test_cached_parse_faster_than_fresh_mine(self):
        """The acceptance-criterion timing: on a repeat block, assigning
        against cached templates beats re-mining from a sample.  A high
        sample rate makes mining the dominant cost, as with production
        blocks (millions of lines through the miner)."""
        lines = make_mixed_lines(3000, seed=11)
        parser = BlockParser(sample_rate=0.5, seed=11)
        cache = TemplateCache()
        parser.parse_cached(lines, cache)  # seed the cache

        def best_of(fn, rounds=3):
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        warm = best_of(lambda: parser.parse_cached(lines, cache))
        fresh = best_of(lambda: parser.parse(lines))
        assert warm < fresh, f"warm {warm:.4f}s not faster than fresh {fresh:.4f}s"

    def test_cache_hit_metric_exported(self):
        registry = get_registry()
        hits = registry.counter("loggrep_template_cache_hits_total")
        before = hits.value()
        cache = TemplateCache()
        parser = BlockParser(seed=8)
        parser.parse_cached(make_mixed_lines(200, seed=8), cache)
        parser.parse_cached(make_mixed_lines(200, seed=9), cache)
        assert hits.value() > before
        assert "loggrep_template_cache_hits_total" in registry.to_prometheus()


class TestCompressionScheduler:
    def test_serial_and_parallel_commit_identically(self):
        lines = make_mixed_lines(500, seed=21)
        stores = {}
        for workers in (1, 3):
            store = MemoryStore()
            scheduler = CompressionScheduler(
                store, CONFIG, template_cache=TemplateCache(), parallelism=workers
            )
            with scheduler:
                for block in make_blocks(lines):
                    scheduler.submit(block)
            stores[workers] = {n: store.get(n) for n in store.names()}
            assert scheduler.blocks == len(stores[workers])
            assert scheduler.backlog == 0
        assert stores[1] == stores[3]

    def test_commit_hook_runs_in_block_order(self):
        lines = make_mixed_lines(500, seed=22)
        committed = []
        scheduler = CompressionScheduler(
            MemoryStore(),
            CONFIG,
            template_cache=TemplateCache(),
            on_commit=lambda name, block, data: committed.append(name),
            parallelism=4,
        )
        with scheduler:
            blocks = make_blocks(lines)
            for block in blocks:
                scheduler.submit(block)
        assert committed == [block_name(b.block_id) for b in blocks]

    def test_backpressure_bounds_backlog(self):
        lines = make_mixed_lines(800, seed=23)
        scheduler = CompressionScheduler(
            MemoryStore(),
            CONFIG,
            template_cache=TemplateCache(),
            parallelism=1,
            always_async=True,
        )
        with scheduler:
            for block in make_blocks(lines):
                scheduler.submit(block)
                assert scheduler.backlog <= scheduler.max_inflight + 1
        assert scheduler.backlog == 0

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            CompressionScheduler(MemoryStore(), CONFIG, parallelism=0)
        with pytest.raises(ValueError):
            CompressionScheduler(MemoryStore(), CONFIG, executor="fiber")

    def test_submit_after_close_rejected(self):
        scheduler = CompressionScheduler(MemoryStore(), CONFIG)
        scheduler.close()
        with pytest.raises(RuntimeError):
            scheduler.submit(LogBlock(0, 0, ["x"]))

    def test_stage_timing_metrics_observed(self):
        registry = get_registry()
        parse_hist = registry.histogram("loggrep_compress_parse_seconds")
        encode_hist = registry.histogram("loggrep_compress_encode_seconds")
        before = parse_hist.count()
        scheduler = CompressionScheduler(
            MemoryStore(), CONFIG, template_cache=TemplateCache(), parallelism=2
        )
        with scheduler:
            for block in make_blocks(make_mixed_lines(300, seed=24)):
                scheduler.submit(block)
        assert parse_hist.count() > before
        assert encode_hist.count() == parse_hist.count()

    def test_without_template_cache_matches_legacy_blocks(self):
        """cache=None compresses every block exactly like compress_block."""
        from repro.core.compressor import compress_block

        lines = make_mixed_lines(400, seed=25)
        store = MemoryStore()
        scheduler = CompressionScheduler(store, CONFIG, template_cache=None)
        blocks = make_blocks(lines)
        with scheduler:
            for block in blocks:
                scheduler.submit(block)
        for block in blocks:
            expected = compress_block(block, CONFIG).serialize()
            assert store.get(block_name(block.block_id)) == expected
