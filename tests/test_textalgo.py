"""Unit + property tests for the search algorithms (§5.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import textalgo


def naive_all(haystack, needle):
    if not needle:
        return []
    out = []
    for i in range(len(haystack) - len(needle) + 1):
        if haystack[i : i + len(needle)] == needle:
            out.append(i)
    return out


small_text = st.text(alphabet="ab01F#", max_size=60)
small_needle = st.text(alphabet="ab01F#", min_size=1, max_size=6)


class TestEngines:
    @pytest.mark.parametrize("engine", textalgo.ENGINES)
    def test_basic(self, engine):
        assert list(textalgo.find_all("abcabc", "abc", engine)) == [0, 3]

    @pytest.mark.parametrize("engine", textalgo.ENGINES)
    def test_overlapping(self, engine):
        assert list(textalgo.find_all("aaaa", "aa", engine)) == [0, 1, 2]

    @pytest.mark.parametrize("engine", textalgo.ENGINES)
    def test_no_match(self, engine):
        assert list(textalgo.find_all("abc", "xyz", engine)) == []

    @pytest.mark.parametrize("engine", textalgo.ENGINES)
    def test_empty_needle(self, engine):
        assert list(textalgo.find_all("abc", "", engine)) == []

    @pytest.mark.parametrize("engine", textalgo.ENGINES)
    def test_needle_longer_than_haystack(self, engine):
        assert list(textalgo.find_all("ab", "abc", engine)) == []

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            list(textalgo.find_all("a", "a", "quantum"))

    @given(small_text, small_needle)
    def test_boyer_moore_matches_naive(self, haystack, needle):
        assert list(textalgo.boyer_moore_all(haystack, needle)) == naive_all(
            haystack, needle
        )

    @given(small_text, small_needle)
    def test_kmp_matches_naive(self, haystack, needle):
        assert list(textalgo.kmp_all(haystack, needle)) == naive_all(haystack, needle)

    @given(small_text, small_needle)
    def test_native_matches_naive(self, haystack, needle):
        assert list(textalgo.native_all(haystack, needle)) == naive_all(
            haystack, needle
        )

    @given(
        st.binary(max_size=40),
        st.binary(min_size=1, max_size=4),
    )
    def test_engines_work_on_bytes(self, haystack, needle):
        expected = naive_all(haystack, needle)
        assert list(textalgo.boyer_moore_all(haystack, needle)) == expected
        assert list(textalgo.kmp_all(haystack, needle)) == expected


class TestKMPFailure:
    def test_classic(self):
        assert textalgo.kmp_failure("ababaca") == [0, 0, 1, 2, 3, 0, 1]

    def test_uniform(self):
        assert textalgo.kmp_failure("aaaa") == [0, 1, 2, 3]


class TestLCS:
    def test_paper_example(self):
        # Fig 4: "F8" is the common infix of the hex fragments.
        assert textalgo.longest_common_substring("1F81F", "8F8F8FE") == "F8"

    def test_identical(self):
        assert textalgo.longest_common_substring("abc", "abc") == "abc"

    def test_disjoint(self):
        assert textalgo.longest_common_substring("abc", "xyz") == ""

    def test_empty(self):
        assert textalgo.longest_common_substring("", "abc") == ""
        assert textalgo.longest_common_substring("abc", "") == ""

    @given(small_text, small_text)
    def test_result_is_common_substring(self, a, b):
        lcs = textalgo.longest_common_substring(a, b)
        assert lcs in a and lcs in b

    @given(small_text, small_text)
    def test_symmetric_length(self, a, b):
        assert len(textalgo.longest_common_substring(a, b)) == len(
            textalgo.longest_common_substring(b, a)
        )


class TestSplitFirst:
    def test_found(self):
        assert textalgo.split_first("block_1F8", "_") == ("block", "1F8")

    def test_multi_char_delimiter(self):
        assert textalgo.split_first("1F81F", "F8") == ("1", "1F")

    def test_missing(self):
        assert textalgo.split_first("abc", "_") is None

    def test_at_edges(self):
        assert textalgo.split_first("_x", "_") == ("", "x")
        assert textalgo.split_first("x_", "_") == ("x", "")
