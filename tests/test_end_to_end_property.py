"""End-to-end property tests: random corpora, random-ish queries, every
system must agree with the reference evaluator and round-trip exactly."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LogGrep, LogGrepConfig
from repro.baselines import CLP, GzipGrep, LogGrepSystem, MiniElastic, grep_lines

# Small building blocks that compose into realistic-ish corpora.
LINE_MAKERS = [
    lambda r: f"T{r.randrange(100, 999)} bk.{r.randrange(256):02X}.{r.randrange(20)} read",
    lambda r: f"T{r.randrange(100, 999)} state: {'ERR' if r.randrange(4) == 0 else 'SUC'}#16{r.randrange(100):02d}",
    lambda r: f"ERROR write /tmp/f{r.randrange(40)}.log code={r.randrange(8)}",
    lambda r: f"gc pause {r.randrange(1, 4000)}ms heap={r.randrange(100)}%",
    lambda r: "",
    lambda r: "   spaced   out   ",
]

QUERIES = [
    "ERROR",
    "read",
    "state: ERR",
    "code=3",
    "ERROR OR read",
    "read NOT bk.0F",
    "bk.?F.1*",
    "gc pause",
]


@st.composite
def corpora(draw):
    import random

    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=1, max_value=120))
    rng = random.Random(seed)
    return [LINE_MAKERS[rng.randrange(len(LINE_MAKERS))](rng) for _ in range(n)]


class TestEndToEndProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(corpora(), st.sampled_from(QUERIES))
    def test_loggrep_matches_reference(self, lines, command):
        lg = LogGrep(config=LogGrepConfig(block_bytes=2048))
        lg.compress(lines)
        assert lg.grep(command).lines == grep_lines(command, lines)
        assert lg.decompress_all() == lines

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(corpora())
    def test_all_systems_agree(self, lines):
        systems = [
            GzipGrep(block_bytes=2048),
            CLP(segment_messages=32),
            MiniElastic(flush_docs=32),
            LogGrepSystem(LogGrepConfig(block_bytes=2048)),
        ]
        for system in systems:
            system.ingest(lines)
        for command in ("ERROR", "read NOT bk.0F", "state: ERR OR code=3"):
            expected = grep_lines(command, lines)
            for system in systems:
                assert system.query(command) == expected, (system.name, command)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(corpora(), st.sampled_from(QUERIES))
    def test_count_equals_grep(self, lines, command):
        lg = LogGrep(config=LogGrepConfig(block_bytes=2048))
        lg.compress(lines)
        assert lg.count(command) == len(grep_lines(command, lines))
