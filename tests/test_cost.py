"""Tests for the Equation 1 cost model (§6)."""

import pytest

from repro.cost import (
    CostBreakdown,
    CostParameters,
    breakeven_query_frequency,
    overall_cost,
)


class TestOverallCost:
    def test_storage_term(self):
        # 1 TB at ratio 10 → 100 GB stored for 6 months at $0.017/GB-month.
        cost = overall_cost(10.0, 1000.0, 0.0)
        assert cost.storage == pytest.approx(0.017 * 6 * 1000 / 10)

    def test_compression_term(self):
        # 1 TB at 100 MB/s → 1e6/100 s ≈ 2.78 h at $0.016/h.
        cost = overall_cost(1.0, 100.0, 0.0)
        hours = (1e12 / (100 * 1e6)) / 3600
        assert cost.compression == pytest.approx(0.016 * hours)

    def test_query_term_scales_with_frequency(self):
        base = overall_cost(1.0, 100.0, 60.0)
        double = overall_cost(
            1.0, 100.0, 60.0, CostParameters(query_frequency=200.0)
        )
        assert double.query == pytest.approx(2 * base.query)

    def test_total(self):
        cost = overall_cost(5.0, 10.0, 30.0)
        assert cost.total == pytest.approx(
            cost.storage + cost.compression + cost.query
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            overall_cost(0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            overall_cost(1.0, 0.0, 1.0)

    def test_better_ratio_cheaper_storage(self):
        worse = overall_cost(2.0, 10.0, 10.0)
        better = overall_cost(20.0, 10.0, 10.0)
        assert better.storage < worse.storage

    def test_scaled(self):
        cost = CostBreakdown(1.0, 2.0, 3.0)
        assert cost.scaled(2.0).total == pytest.approx(12.0)


class TestBreakeven:
    def test_es_style_breakeven(self):
        # "Base" = cheap storage, slow queries; "other" = pricey storage,
        # fast queries (the ES situation of §6.1).
        base = overall_cost(10.0, 2.0, 600.0)
        other = overall_cost(1.0, 0.5, 10.0)
        frequency = breakeven_query_frequency(base, 600.0, other, 10.0)
        assert frequency > 0
        # At the breakeven frequency both totals agree.
        params = CostParameters(query_frequency=frequency)
        total_base = overall_cost(10.0, 2.0, 600.0, params).total
        total_other = overall_cost(1.0, 0.5, 10.0, params).total
        assert total_base == pytest.approx(total_other, rel=1e-6)

    def test_never_cheaper(self):
        base = overall_cost(10.0, 2.0, 10.0)
        other = overall_cost(1.0, 0.5, 10.0)  # same latency, higher fixed
        assert breakeven_query_frequency(base, 10.0, other, 10.0) == float("inf")

    def test_already_cheaper(self):
        base = overall_cost(1.0, 0.5, 600.0)
        other = overall_cost(10.0, 2.0, 10.0)  # cheaper fixed AND faster
        assert breakeven_query_frequency(base, 600.0, other, 10.0) == 0.0
