"""Tests for the §7 related-work comparators (Logzip-style, bucket-based)."""

import pytest

from repro.baselines import (
    BucketCompressor,
    GzipGrep,
    LogGrepSystem,
    LogZip,
    grep_lines,
)
from repro.core.config import LogGrepConfig
from tests.conftest import make_mixed_lines


@pytest.fixture(scope="module")
def corpus():
    return make_mixed_lines(800, seed=41)


@pytest.mark.parametrize(
    "factory", [lambda: LogZip(block_bytes=1 << 16), BucketCompressor],
    ids=["logzip", "bucket"],
)
class TestRelatedWorkContract:
    QUERIES = ["ERROR", "read AND bk.FF", "state: NOT SUC", "ERROR OR read"]

    def test_query_parity(self, factory, corpus):
        system = factory()
        system.ingest(corpus)
        for command in self.QUERIES:
            assert system.query(command) == grep_lines(command, corpus), command

    def test_order_preserved(self, factory, corpus):
        system = factory()
        system.ingest(corpus)
        everything = system.query("T1* OR ERROR OR read OR state: OR !!corrupt")
        assert everything == grep_lines(
            "T1* OR ERROR OR read OR state: OR !!corrupt", corpus
        )

    def test_metrics(self, factory, corpus):
        system = factory()
        system.ingest(corpus)
        assert system.compression_ratio() > 1.0
        assert system.storage_bytes() > 0

    def test_incremental_ingest(self, factory, corpus):
        system = factory()
        system.ingest(corpus[:300])
        system.ingest(corpus[300:])
        assert system.query("ERROR") == grep_lines("ERROR", corpus)


class TestRelatedWorkShape:
    """§7's claims: this family compresses well but queries slowly."""

    def test_ratio_beats_gzip(self, corpus):
        gzip_grep = GzipGrep()
        gzip_grep.ingest(corpus)
        for system in (LogZip(), BucketCompressor()):
            system.ingest(corpus)
            assert system.compression_ratio() > gzip_grep.compression_ratio()

    def test_logzip_ratio_competitive_with_loggrep(self, corpus):
        logzip = LogZip()
        logzip.ingest(corpus)
        lg = LogGrepSystem(LogGrepConfig())
        lg.ingest(corpus)
        # No per-Capsule metadata → at least in LogGrep's ballpark.
        assert logzip.compression_ratio() > 0.7 * lg.compression_ratio()

    def test_queries_slower_than_loggrep(self, corpus):
        big = make_mixed_lines(4000, seed=43)
        lg = LogGrepSystem(LogGrepConfig(block_bytes=1 << 20))
        lg.ingest(big)
        logzip = LogZip()
        logzip.ingest(big)
        lg.loggrep.clear_query_cache()
        _, lg_seconds = lg.timed_query("ERR#1623")
        _, lz_seconds = logzip.timed_query("ERR#1623")
        assert lz_seconds > lg_seconds
