"""Tests for file-backed workloads and the multi-log catalog."""

import pytest

from repro.baselines.evalutil import grep_lines
from repro.bench.runner import measure_system, system_factories
from repro.core.catalog import LogCatalog, UnknownLogError
from repro.core.config import LogGrepConfig
from repro.workloads.loader import FileLogSpec
from tests.conftest import make_mixed_lines


@pytest.fixture
def log_file(tmp_path):
    lines = make_mixed_lines(500, seed=81)
    path = tmp_path / "svc.log"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path), lines


class TestFileLogSpec:
    def test_from_path(self, log_file):
        path, lines = log_file
        spec = FileLogSpec.from_path(path, query="ERROR")
        assert spec.name == "svc.log"
        assert len(spec) == len(lines)
        assert spec.generate(100) == lines[:100]
        assert spec.generate(10**9) == lines

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            FileLogSpec.from_path("/no/such/file.log", query="x")

    def test_runs_through_bench_harness(self, log_file):
        path, lines = log_file
        spec = FileLogSpec.from_path(path, query="ERROR")
        measurement = measure_system(
            spec, spec.generate(len(lines)), system_factories()["LG"]
        )
        assert measurement.hits == len(grep_lines("ERROR", lines))
        assert measurement.compression_ratio > 1

    def test_nul_bytes_stripped(self, tmp_path):
        path = tmp_path / "weird.log"
        path.write_bytes(b"ok line\nbad\x00line\n")
        spec = FileLogSpec.from_path(str(path), query="ok")
        assert spec.generate(10) == ["ok line", "badline"]


class TestCatalog:
    CONFIG = LogGrepConfig(block_bytes=16 * 1024)

    def test_ingest_and_grep(self):
        catalog = LogCatalog(config=self.CONFIG)
        lines_a = make_mixed_lines(300, seed=82)
        lines_b = make_mixed_lines(300, seed=83)
        catalog.ingest("frontend", lines_a)
        catalog.ingest("backend", lines_b)
        assert catalog.names() == ["backend", "frontend"]
        assert catalog.grep("frontend", "ERROR").lines == grep_lines(
            "ERROR", lines_a
        )

    def test_unknown_log(self):
        catalog = LogCatalog(config=self.CONFIG)
        with pytest.raises(UnknownLogError):
            catalog.grep("ghost", "x")

    def test_grep_all(self):
        catalog = LogCatalog(config=self.CONFIG)
        catalog.ingest("a", ["hello incident-77 here", "noise"])
        catalog.ingest("b", ["other noise"])
        catalog.ingest("c", ["incident-77 seen downstream"])
        hits = catalog.grep_all("incident-77")
        assert [name for name, _ in hits] == ["a", "c"]

    def test_count_all(self):
        catalog = LogCatalog(config=self.CONFIG)
        catalog.ingest("a", ["x ERROR", "y"])
        catalog.ingest("b", ["z"])
        assert catalog.count_all("ERROR") == {"a": 1, "b": 0}

    def test_entries_accounting(self):
        catalog = LogCatalog(config=self.CONFIG)
        lines = make_mixed_lines(300, seed=84)
        catalog.ingest("svc", lines)
        (entry,) = catalog.entries()
        assert entry.name == "svc"
        assert entry.raw_bytes == sum(len(l) + 1 for l in lines)
        assert entry.ratio > 1
        assert catalog.storage_bytes() == entry.storage_bytes

    def test_filesystem_persistence(self, tmp_path):
        root = str(tmp_path / "catalog")
        catalog = LogCatalog(root=root, config=self.CONFIG)
        lines = make_mixed_lines(300, seed=85)
        catalog.ingest("svc", lines)

        reopened = LogCatalog(root=root, config=self.CONFIG)
        assert reopened.names() == ["svc"]
        assert reopened.grep("svc", "ERROR").lines == grep_lines("ERROR", lines)

    def test_incremental_ingest(self):
        catalog = LogCatalog(config=self.CONFIG)
        lines = make_mixed_lines(400, seed=86)
        catalog.ingest("svc", lines[:200])
        catalog.ingest("svc", lines[200:])
        assert catalog.log("svc").decompress_all() == lines
