"""Property tests for fixed/variable-length Capsule matching (§5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsule.capsule import Capsule
from repro.query.matcher import search_capsule
from repro.query.modes import MatchMode, value_matches

values_strategy = st.lists(
    st.text(alphabet="ab1F#", max_size=6), min_size=0, max_size=25
)
fragment_strategy = st.text(alphabet="ab1F#", min_size=0, max_size=4)

ALL_MODES = list(MatchMode)


def naive_rows(values, fragment, mode):
    return {i for i, v in enumerate(values) if value_matches(v, fragment, mode)}


class TestValueMatches:
    def test_modes(self):
        assert value_matches("hello", "he", MatchMode.PREFIX)
        assert value_matches("hello", "lo", MatchMode.SUFFIX)
        assert value_matches("hello", "ell", MatchMode.SUBSTRING)
        assert value_matches("hello", "hello", MatchMode.EXACT)
        assert not value_matches("hello", "lo", MatchMode.PREFIX)


@pytest.mark.parametrize("engine", ["boyer-moore", "kmp", "native"])
class TestFixedMatcher:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_basic(self, engine, mode):
        values = ["8F8F", "1", "F8FE", "", "8"]
        capsule = Capsule.pack_fixed(values)
        rows = search_capsule(capsule, "8", mode, engine)
        assert set(rows.rows()) == naive_rows(values, "8", mode)

    def test_match_cannot_cross_rows(self, engine):
        # "ab" at a row boundary must not match.
        values = ["xa", "bx"]
        capsule = Capsule.pack_fixed(values)
        rows = search_capsule(capsule, "ab", MatchMode.SUBSTRING, engine)
        assert not rows

    def test_full_width_values_do_not_leak(self, engine):
        # No padding at all between rows: boundary check must still hold.
        values = ["ab", "cd"]
        capsule = Capsule.pack_fixed(values)
        assert not search_capsule(capsule, "bc", MatchMode.SUBSTRING, engine)

    def test_rows_hint_direct_checking(self, engine):
        values = ["8F", "1x", "8F", "zz"]
        capsule = Capsule.pack_fixed(values)
        rows = search_capsule(
            capsule, "8F", MatchMode.EXACT, engine, rows_hint=[0, 1, 3]
        )
        assert rows.rows() == [0]

    @settings(max_examples=60)
    @given(values_strategy, fragment_strategy, st.sampled_from(ALL_MODES))
    def test_matches_naive(self, engine, values, fragment, mode):
        capsule = Capsule.pack_fixed(values)
        rows = search_capsule(capsule, fragment, mode, engine)
        assert set(rows.rows()) == naive_rows(values, fragment, mode)


@pytest.mark.parametrize("engine", ["kmp", "native"])
class TestVariableMatcher:
    @settings(max_examples=60)
    @given(values_strategy, fragment_strategy, st.sampled_from(ALL_MODES))
    def test_matches_naive(self, engine, values, fragment, mode):
        capsule = Capsule.pack_variable(values)
        rows = search_capsule(capsule, fragment, mode, engine)
        assert set(rows.rows()) == naive_rows(values, fragment, mode)

    def test_empty_capsule(self, engine):
        capsule = Capsule.pack_variable([])
        assert not search_capsule(capsule, "x", MatchMode.SUBSTRING, engine)
