"""Tests for the structure-based aggregation layer (§2's second phase)."""

import inspect
import math
import re
from collections import Counter

import pytest

from repro import LogGrep, LogGrepConfig
from repro.analytics import (
    Analyzer,
    discover_schema,
    group_count,
    histogram,
    numeric_stats,
    top_k,
)
from repro.analytics.aggregate import parse_number
from repro.capsule.box import CapsuleBox
from repro.workloads import spec_by_name


@pytest.fixture(scope="module")
def archive():
    spec = spec_by_name("Log B")
    lines = spec.generate(3000)
    lg = LogGrep(config=LogGrepConfig(block_bytes=1 << 17))
    lg.compress(lines)
    return lg, lines


def reference_counts(lines, key, where=None):
    counts = Counter()
    pattern = re.compile(rf"{key}[:=](\S+)")
    for line in lines:
        if where and where not in line:
            continue
        match = pattern.search(line)
        if match:
            counts[match.group(1)] += 1
    return counts


class TestSchemaDiscovery:
    def test_key_fields_found(self, archive):
        lg, _ = archive
        fields = Analyzer(lg).fields()
        for expected in ("Project", "RequestId", "latency", "shard"):
            assert expected in fields

    def test_positional_names_for_anonymous_vectors(self, archive):
        lg, _ = archive
        fields = Analyzer(lg).fields()
        assert any(name.startswith("g") and "_v" in name for name in fields)

    def test_constant_pseudo_fields(self, archive):
        lg, _ = archive
        name = lg.store.names()[0]
        schema = discover_schema(CapsuleBox.deserialize(lg.store.get(name)))
        # The incident template plants Project:2963 as a constant token in
        # at least one block's schema across the archive.
        refs = [r for r in schema.fields if r.name == "Project"]
        assert refs

    def test_strip_prefix(self, archive):
        lg, lines = archive
        values = set(Analyzer(lg).column("Project"))
        assert all(not value.startswith("Project:") for value in values)


class TestAggregations:
    def test_count_by_matches_reference(self, archive):
        lg, lines = archive
        ours = Analyzer(lg).count_by("Project")
        assert dict(ours) == dict(reference_counts(lines, "Project"))

    def test_count_by_with_where(self, archive):
        lg, lines = archive
        ours = Analyzer(lg).count_by("Project", where="ERROR")
        assert dict(ours) == dict(reference_counts(lines, "Project", where="ERROR"))

    def test_top_k(self, archive):
        lg, lines = archive
        (top_value, top_count), *_ = Analyzer(lg).top_k("RequestId", 1, where="ERROR")
        reference = reference_counts(lines, "RequestId", where="ERROR")
        assert reference[top_value] == top_count == max(reference.values())

    def test_numeric_stats(self, archive):
        lg, lines = archive
        stats = Analyzer(lg).stats_of("latency")
        numbers = [
            float(m.group(1))
            for m in (re.search(r"latency:(\d+)us", l) for l in lines)
            if m
        ]
        assert stats.count == len(numbers)
        assert stats.minimum == min(numbers)
        assert stats.maximum == max(numbers)
        assert stats.mean == pytest.approx(sum(numbers) / len(numbers))

    def test_distinct(self, archive):
        lg, lines = archive
        distinct = Analyzer(lg).distinct("Project")
        assert set(distinct) == set(reference_counts(lines, "Project"))

    def test_unknown_field_empty(self, archive):
        lg, _ = archive
        assert Analyzer(lg).count_by("NoSuchField") == Counter()

    def test_pairs_group_by(self, archive):
        lg, lines = archive
        analyzer = Analyzer(lg)
        grouped = group_count(analyzer.pairs("Project", "RequestId", where="ERROR"))
        reference = {}
        for line in lines:
            if "ERROR" not in line:
                continue
            project = re.search(r"Project:(\S+)", line)
            request = re.search(r"RequestId:(\S+)", line)
            if project and request:
                reference.setdefault(project.group(1), Counter())[
                    request.group(1)
                ] += 1
        assert {k: dict(v) for k, v in grouped.items()} == {
            k: dict(v) for k, v in reference.items()
        }


class TestAggregateHelpers:
    def test_parse_number(self):
        assert parse_number("40719us") == 40719.0
        assert parse_number("-3.5ms") == -3.5
        assert parse_number("abc") is None
        assert parse_number("") is None

    def test_numeric_stats_empty(self):
        stats = numeric_stats(["abc", ""])
        assert stats.count == 0
        assert stats.nulls == 2
        assert math.isnan(stats.p50) and math.isnan(stats.mean)

    def test_numeric_stats_no_values(self):
        stats = numeric_stats([])
        assert stats.count == 0 and stats.nulls == 0
        assert math.isnan(stats.minimum) and math.isnan(stats.p99)

    def test_numeric_stats_singleton(self):
        # A one-value column: every percentile is that value.
        stats = numeric_stats(["42us"])
        assert stats.count == 1
        assert stats.minimum == stats.maximum == 42.0
        assert stats.p50 == stats.p95 == stats.p99 == 42.0

    def test_numeric_stats_two_values_interpolates(self):
        stats = numeric_stats(["0", "10"])
        assert stats.p50 == 5.0
        assert stats.p95 == pytest.approx(9.5)
        assert stats.p99 == pytest.approx(9.9)

    def test_numeric_stats_percentiles(self):
        # Linear interpolation between closest ranks (numpy's default):
        # for 0..99 the midpoint is 49.5, p95 sits at position 94.05.
        stats = numeric_stats([str(i) for i in range(100)])
        assert stats.p50 == 49.5
        assert stats.p95 == pytest.approx(94.05)
        assert stats.p99 == pytest.approx(98.01)

    def test_numeric_stats_counts_nulls(self):
        # Unparseable cells are reported, not silently dropped.
        stats = numeric_stats(["1us", "oops", "3us", ""])
        assert stats.count == 2
        assert stats.nulls == 2
        assert stats.mean == 2.0

    def test_top_k_helper(self):
        assert top_k(["a", "b", "a"], 1) == [("a", 2)]

    def test_histogram(self):
        buckets = histogram([str(i) for i in range(100)], bucket_count=10)
        assert len(buckets) == 10
        assert sum(count for _, _, count in buckets) == 100

    def test_histogram_uniform_values(self):
        assert histogram(["5", "5", "5"]) == [(5.0, 5.0, 3)]

    def test_histogram_empty(self):
        assert histogram(["x"]) == []


class TestNoReconstruction:
    def test_aggregation_cheaper_than_grep(self, archive):
        """count_by must open fewer Capsules than reconstructing hits."""
        lg, _ = archive
        analyzer = Analyzer(lg)
        analyzer.count_by("Project", where="ERROR")
        agg_decompressed = analyzer.stats.capsules_decompressed
        lg.clear_query_cache()
        grep_stats = lg.grep("ERROR").stats
        assert agg_decompressed <= grep_stats.capsules_decompressed + 4


class TestTimeline:
    def test_total_and_buckets(self, archive):
        lg, lines = archive
        timeline = Analyzer(lg).timeline("ERROR", buckets=10)
        assert len(timeline) == 10
        expected = sum(1 for l in lines if "ERROR" in l)
        assert sum(count for _, _, count in timeline) == expected
        # Buckets tile the id space without gaps.
        for (a_lo, a_hi, _), (b_lo, _, _) in zip(timeline, timeline[1:]):
            assert b_lo == a_hi + 1

    def test_bucket_counts_match_reference(self, archive):
        lg, lines = archive
        timeline = Analyzer(lg).timeline("ERROR", buckets=7)
        for low, high, count in timeline:
            expected = sum(
                1 for i in range(low, min(high + 1, len(lines)))
                if "ERROR" in lines[i]
            )
            assert count == expected

    def test_empty_result(self, archive):
        lg, _ = archive
        timeline = Analyzer(lg).timeline("zz_nothing_zz", buckets=5)
        assert sum(c for _, _, c in timeline) == 0


class TestPushdownExecution:
    """The façade rides the executor pipeline, not private block loops."""

    def test_no_private_api_in_analytics(self):
        # Satellite: analytics/ must not load store blobs or CapsuleBoxes
        # directly — everything routes through the query executor.
        import repro.analytics.aggregate as agg_mod
        import repro.analytics.analyzer as analyzer_mod
        import repro.analytics.schema as schema_mod

        for module in (analyzer_mod, agg_mod, schema_mod):
            source = inspect.getsource(module)
            assert "_load_box" not in source
            assert "BlockEngine" not in source
            assert "deserialize" not in source
            assert "store.get" not in source

    def test_stats_accumulate_through_facade(self, archive):
        lg, _ = archive
        analyzer = Analyzer(lg)
        analyzer.count_by("Project", where="ERROR")
        assert analyzer.stats.blocks_visited > 0
        before = analyzer.stats.blocks_visited
        analyzer.stats_of("latency")
        assert analyzer.stats.blocks_visited > before

    def test_parallel_merge_order_independent(self, archive):
        """-j N partial merging must be commutative: any completion order
        yields the serial result."""
        _, lines = archive
        serial = LogGrep(config=LogGrepConfig(block_bytes=1 << 15))
        serial.compress(lines)
        parallel = LogGrep(
            config=LogGrepConfig(block_bytes=1 << 15, query_parallelism=4)
        )
        parallel.compress(lines)
        for _ in range(3):  # thread completion order varies run to run
            assert parallel.count_by("Project", where="ERROR") == serial.count_by(
                "Project", where="ERROR"
            )
            assert parallel.top_k("RequestId", 5) == serial.top_k("RequestId", 5)
            assert parallel.stats_of("latency") == serial.stats_of("latency")
            assert parallel.timeseries("ERROR", buckets=9) == serial.timeseries(
                "ERROR", buckets=9
            )


class TestNumericFilter:
    def test_filter_numeric(self, archive):
        lg, lines = archive
        count = Analyzer(lg).filter_numeric("latency", ">", 50000)
        expected = sum(
            1
            for m in (re.search(r"latency:(\d+)us", l) for l in lines)
            if m and int(m.group(1)) > 50000
        )
        assert count == expected

    def test_filter_numeric_with_where(self, archive):
        lg, lines = archive
        count = Analyzer(lg).filter_numeric("latency", "<=", 1000, where="ERROR")
        expected = sum(
            1
            for l in lines
            if "ERROR" in l
            for m in [re.search(r"latency:(\d+)us", l)]
            if m and int(m.group(1)) <= 1000
        )
        assert count == expected

    def test_invalid_operator(self, archive):
        lg, _ = archive
        with pytest.raises(ValueError):
            Analyzer(lg).filter_numeric("latency", "!=", 1)
