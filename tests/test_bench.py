"""Smoke tests for the benchmark harness and figure drivers."""

import pytest

from repro.bench.figures import (
    figure3,
    figure8,
    figure9,
    is_single_pattern,
    padding_effect,
    refining_commands,
    section23_stats,
)
from repro.bench.report import format_table, markdown_table
from repro.bench.runner import (
    Measurement,
    by_system,
    geomean,
    measure_system,
    run_suite,
    system_factories,
)
from repro.workloads import production_specs, spec_by_name


@pytest.fixture(scope="module")
def tiny_suite():
    specs = production_specs()[:2]
    return specs, run_suite(specs, lines_per_spec=400)


class TestRunner:
    def test_measurements_complete(self, tiny_suite):
        specs, measurements = tiny_suite
        assert len(measurements) == len(specs) * 5
        for m in measurements:
            assert m.compression_ratio > 0
            assert m.compression_speed_mb_s > 0
            assert m.query_latency_s > 0
            assert m.hits > 0

    def test_all_systems_same_hits(self, tiny_suite):
        _, measurements = tiny_suite
        for dataset, group in by_system(measurements).items():
            pass
        per_dataset = {}
        for m in measurements:
            per_dataset.setdefault(m.dataset, set()).add(m.hits)
        for dataset, hit_counts in per_dataset.items():
            assert len(hit_counts) == 1, f"{dataset}: {hit_counts}"

    def test_latency_per_tb_extrapolation(self):
        m = Measurement("d", "s", 10**9, 1, 1.0, 1.0, 0.001, 1, "q")
        assert m.query_latency_s_per_tb == pytest.approx(1.0)

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_system_factories_complete(self):
        assert set(system_factories()) == {"ggrep", "CLP", "ES", "LG-SP", "LG"}

    def test_measure_single_system(self):
        spec = spec_by_name("Log C")
        lines = spec.generate(300)
        m = measure_system(spec, lines, system_factories()["LG"])
        assert m.system == "LG"
        assert m.dataset == "Log C"


class TestFigureDrivers:
    def test_figure3_buckets(self):
        buckets = figure3(production_specs()[:2], 400)
        assert len(buckets) == 10
        assert sum(b.single + b.multi for b in buckets) > 0
        # The real-vector assumption: low-duplication vectors are nearly
        # all single-pattern.
        low = [b for b in buckets[:5]]
        assert sum(b.single for b in low) >= sum(b.multi for b in low)

    def test_is_single_pattern(self):
        assert is_single_pattern([f"blk_{i}" for i in range(50)])
        assert not is_single_pattern(
            ["%x.9" % i for i in range(25)] + [f"word-{i}!" for i in range(25)]
        )

    def test_section23_ordering(self):
        stats = section23_stats(production_specs()[:3], 400)
        # Finer granularity ⇒ fewer char classes (the §2.2/§2.3 claim).
        assert stats.block_char_types >= stats.vector_char_types
        assert stats.vector_char_types >= stats.subvar_char_types
        assert stats.block_length_variance >= stats.vector_length_variance

    def test_figure8_costs(self, tiny_suite):
        _, measurements = tiny_suite
        costs = figure8(measurements)
        assert set(costs) == {"ggrep", "CLP", "ES", "LG-SP", "LG"}
        assert costs["LG"].total < costs["ggrep"].total

    def test_refining_commands(self):
        commands = refining_commands("a and b not c")
        assert commands == ["a", "a and b", "a and b not c"]

    def test_figure9_smoke(self):
        results = figure9(production_specs()[:1], 400, ablations=("w/o stamp",))
        assert set(results) == {"w/o stamp"}
        assert results["w/o stamp"] > 0

    def test_padding_effect(self):
        effect = padding_effect(production_specs()[:1], 400)
        (value,) = effect.values()
        # §6.3: padding is roughly free (0.99x-1.10x in the paper).
        assert 0.7 < value < 1.5


class TestReportHelpers:
    def test_format_table(self):
        text = format_table(["a", "bb"], [["1", "2"], ["33", "4"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert "--" in lines[1]

    def test_markdown_table(self):
        text = markdown_table(["h"], [["v"]])
        assert text.split("\n")[0] == "| h |"
        assert "| v |" in text
