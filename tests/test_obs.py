"""Tests for the observability layer: spans, metrics, export, integration."""

import json
import pathlib
import threading

import pytest

from repro import LogGrep, LogGrepConfig
from repro.blockstore.store import MemoryStore
from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    get_registry,
    get_tracer,
    render_span_tree,
    set_tracer,
    stage_totals,
    tracing,
)
from tests.conftest import make_mixed_lines

CONFIG = LogGrepConfig(block_bytes=8 * 1024)
#: For tests that pin the *sequential* span taxonomy (root "query" with
#: per-operator attrs): immune to LOGGREP_BATCH_SCANS routing, which
#: roots traces at the shared-scan "batch" lane instead.
SEQ_CONFIG = LogGrepConfig(block_bytes=8 * 1024, batch_scans=False)


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_attributes(self):
        tracer = Tracer()
        with tracer.span("outer", command="q") as outer:
            with tracer.span("inner") as inner:
                inner.set("bytes", 7).add("count").add("count")
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert inner.parent is outer
        assert outer.attrs == {"command": "q"}
        assert inner.attrs == {"bytes": 7, "count": 2}
        assert outer.seconds >= inner.seconds >= 0.0
        assert inner.end is not None

    def test_siblings_and_walk(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.last_root()
        assert [s.name for s in root.walk()] == ["root", "a", "leaf", "b"]
        assert [s.name for s in root.find("leaf")] == ["leaf"]

    def test_explicit_parent_across_threads(self):
        """Fan-out: spans entered in worker threads attach to the parent."""
        tracer = Tracer()
        with tracer.span("fan_out") as fan:
            def work(i):
                with tracer.span("child", parent=fan, idx=i):
                    pass

            threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(fan.children) == 4
        assert sorted(c.attrs["idx"] for c in fan.children) == [0, 1, 2, 3]

    def test_thread_stacks_are_independent(self):
        """A worker thread without an explicit parent starts a new root."""
        tracer = Tracer()
        with tracer.span("main_root"):
            t = threading.Thread(target=lambda: tracer.span("other").__enter__().__exit__())
            t.start()
            t.join()
        assert sorted(s.name for s in tracer.roots) == ["main_root", "other"]

    def test_render_tree(self):
        tracer = Tracer()
        with tracer.span("query", command="ERROR"):
            with tracer.span("plan"):
                pass
        text = render_span_tree(tracer.last_root())
        assert "query" in text and "  plan" in text
        assert "100." in text  # root is 100% of itself
        assert "command='ERROR'" in text
        assert render_span_tree(None) == "(no spans recorded)"

    def test_stage_totals(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("block"):
                pass
            with tracer.span("block"):
                pass
        totals = stage_totals(tracer.last_root())
        assert set(totals) == {"query", "block"}
        assert totals["block"] <= totals["query"]
        assert stage_totals(None) == {}


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_null_span_is_shared_noop(self):
        span = NULL_TRACER.span("anything", parent=None, key="value")
        assert span is NULL_SPAN
        with span as inner:
            assert inner is NULL_SPAN
            assert inner.set("k", 1) is NULL_SPAN
            assert inner.add("k") is NULL_SPAN
        assert NULL_TRACER.roots == ()
        assert NULL_TRACER.last_root() is None
        assert not NULL_TRACER.enabled

    def test_tracing_context_installs_and_restores(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before

    def test_set_tracer_none_restores_null(self):
        previous = set_tracer(Tracer())
        assert set_tracer(previous) is not NULL_TRACER or previous is NULL_TRACER
        set_tracer(None)
        assert get_tracer() is NULL_TRACER


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_and_labels(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs_total", "Jobs")
        c.inc()
        c.inc(2)
        c.inc(node="n0")
        assert c.value() == 3
        assert c.value(node="n0") == 1
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", "Queue depth")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value() == 4

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "Latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(55.55)

    def test_get_or_create_is_idempotent_and_typed(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total")
        assert reg.counter("x_total") is a
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_reset_zeroes_but_keeps_objects(self):
        reg = MetricsRegistry()
        c = reg.counter("y_total")
        c.inc(9)
        reg.reset()
        assert c.value() == 0
        assert reg.get("y_total") is c

    def test_prometheus_export_golden(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests").inc(3)
        reg.gauge("temp", "Temperature").set(21.5)
        c = reg.counter("node_jobs_total", "Per-node jobs")
        c.inc(2, node="n0")
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        expected = (
            "# HELP lat_seconds Latency\n"
            "# TYPE lat_seconds histogram\n"
            'lat_seconds_bucket{le="0.1"} 1\n'
            'lat_seconds_bucket{le="1"} 2\n'
            'lat_seconds_bucket{le="+Inf"} 2\n'
            "lat_seconds_sum 0.55\n"
            "lat_seconds_count 2\n"
            "# HELP node_jobs_total Per-node jobs\n"
            "# TYPE node_jobs_total counter\n"
            'node_jobs_total{node="n0"} 2\n'
            "# HELP req_total Requests\n"
            "# TYPE req_total counter\n"
            "req_total 3\n"
            "# HELP temp Temperature\n"
            "# TYPE temp gauge\n"
            "temp 21.5\n"
        )
        assert reg.to_prometheus() == expected

    def test_prometheus_export_golden_file(self):
        """Full exposition against tests/golden/metrics_exposition.prom.

        Covers the cases the inline golden above does not: cumulative
        ``_bucket`` counts with several observations per bucket, labelled
        histograms, label-value escaping (backslash, double quote,
        newline) and HELP escaping.
        """
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests").inc(3)
        reg.gauge("temp", "Temperature").set(21.5)
        escapes = reg.counter(
            "path_hits_total", "Hits per path (backslash \\ in help)"
        )
        escapes.inc(1, path='C:\\logs\\"app"\nnext')
        h = reg.histogram(
            "lat_seconds", "Latency", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.06, 0.5, 5.0, 50.0):
            h.observe(value, op="grep")
        h.observe(0.2, op="count")
        golden = (
            pathlib.Path(__file__).parent / "golden" / "metrics_exposition.prom"
        )
        assert reg.to_prometheus() == golden.read_text(encoding="utf-8")

    def test_histogram_buckets_are_cumulative_in_exposition(self):
        """Each ``le`` bucket counts every observation at or below it."""
        reg = MetricsRegistry()
        h = reg.histogram("x_seconds", buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 2.5):
            h.observe(value)
        text = reg.to_prometheus()
        assert 'x_seconds_bucket{le="1"} 1' in text
        assert 'x_seconds_bucket{le="2"} 2' in text
        assert 'x_seconds_bucket{le="3"} 3' in text
        assert 'x_seconds_bucket{le="+Inf"} 3' in text

    def test_json_export_golden(self):
        reg = MetricsRegistry()
        reg.counter("req_total", "Requests").inc(3)
        h = reg.histogram("lat_seconds", "Latency", buckets=(0.1, 1.0))
        h.observe(0.5)
        doc = json.loads(reg.to_json())
        assert doc == {
            "req_total": {
                "type": "counter",
                "help": "Requests",
                "samples": [{"labels": {}, "value": 3}],
            },
            "lat_seconds": {
                "type": "histogram",
                "help": "Latency",
                "buckets": [0.1, 1.0],
                "samples": [
                    {"labels": {}, "counts": [0, 1], "sum": 0.5, "count": 1}
                ],
            },
        }


# ----------------------------------------------------------------------
# Chrome trace-event export
# ----------------------------------------------------------------------
class TestChromeTraceExport:
    def test_span_forest_exports_complete_events(self):
        from repro.obs import to_chrome_trace

        tracer = Tracer()
        with tracer.span("query", command="ERROR") as q:
            with tracer.span("plan"):
                pass

            def work():
                with tracer.span("block", parent=q, block="b0"):
                    pass

            t = threading.Thread(target=work)
            t.start()
            t.join()
        doc = to_chrome_trace(tracer.roots)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["query", "plan", "block"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "loggrep"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert event["pid"] == 1
        # Timestamps are normalized: the earliest span starts at 0.
        assert min(e["ts"] for e in events) == 0.0
        # The worker-thread span gets its own compact lane.
        by_name = {e["name"]: e for e in events}
        assert by_name["query"]["tid"] == by_name["plan"]["tid"]
        assert by_name["block"]["tid"] != by_name["query"]["tid"]
        assert by_name["query"]["args"] == {"command": "ERROR"}
        # Nested spans fit inside their parent's interval.
        q_event, p_event = by_name["query"], by_name["plan"]
        assert q_event["ts"] <= p_event["ts"]
        assert p_event["ts"] + p_event["dur"] <= q_event["ts"] + q_event["dur"] + 1e-6

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        from repro.obs import write_chrome_trace

        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer.roots)
        assert count == 2
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert len(doc["traceEvents"]) == 2

    def test_empty_forest_exports_empty_trace(self):
        from repro.obs import to_chrome_trace

        assert to_chrome_trace([]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }
        assert to_chrome_trace([None]) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_traced_grep_exports_pipeline_events(self, tmp_path):
        from repro.obs import write_chrome_trace

        lines = make_mixed_lines(400, seed=13)
        lg = LogGrep(store=MemoryStore(), config=CONFIG)
        lg.compress(lines)
        with tracing() as tracer:
            lg.grep("ERROR")
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer.roots)
        doc = json.loads(path.read_text(encoding="utf-8"))
        names = {e["name"] for e in doc["traceEvents"]}
        # Sequential routing roots the trace at "query" (with a "plan"
        # child); batch_scans routing (LOGGREP_BATCH_SCANS=1) roots it
        # at the shared-scan "batch" lane. Both share the block lane.
        assert {"block", "locate", "match"} <= names
        assert {"query", "plan"} <= names or "batch" in names


# ----------------------------------------------------------------------
# QueryStats refactor (satellites)
# ----------------------------------------------------------------------
class TestQueryStats:
    def test_merge_covers_every_field(self):
        """Drift test: merge must aggregate every dataclass field."""
        import dataclasses

        from repro.query.stats import QueryStats

        a = QueryStats(**{f.name: 1 for f in dataclasses.fields(QueryStats)})
        b = QueryStats(**{f.name: 2 for f in dataclasses.fields(QueryStats)})
        a.merge(b)
        for f in dataclasses.fields(QueryStats):
            assert getattr(a, f.name) == 3, f"merge dropped {f.name}"

    def test_as_dict(self):
        from repro.query.stats import QueryStats

        stats = QueryStats(capsules_decompressed=4)
        assert stats.as_dict()["capsules_decompressed"] == 4

    def test_capsule_is_decompressed_property(self):
        from repro.capsule.capsule import Capsule

        capsule = Capsule.pack_fixed(["alpha", "beta", "gamma"] * 20)
        assert not capsule.is_decompressed
        capsule.plain()
        assert capsule.is_decompressed

    def test_publish_updates_registry(self):
        from repro.query.stats import QueryStats

        reg = get_registry()
        queries = reg.counter("loggrep_queries_total")
        before = queries.value()
        stats = QueryStats(capsules_filtered=3, capsules_decompressed=1)
        stats.publish(0.01)
        assert queries.value() == before + 1
        assert reg.gauge("loggrep_capsule_filter_ratio").value() == pytest.approx(0.75)


# ----------------------------------------------------------------------
# end-to-end integration
# ----------------------------------------------------------------------
class TestTracedQuery:
    def test_traced_grep_matches_query_stats(self):
        """The span tree and QueryStats report the same decompressions."""
        lines = make_mixed_lines(700, seed=5)
        lg = LogGrep(store=MemoryStore(), config=SEQ_CONFIG)
        lg.compress(lines)
        with tracing() as tracer:
            result = lg.grep("ERROR")
        root = tracer.last_root()
        assert root.name == "query"
        assert root.attrs["capsules_decompressed"] == result.stats.capsules_decompressed
        assert root.attrs["entries_matched"] == result.count
        decompress_spans = root.find("decompress")
        assert len(decompress_spans) == result.stats.capsules_decompressed
        total_bytes = sum(s.attrs["bytes"] for s in decompress_spans)
        assert total_bytes == result.stats.bytes_decompressed

    def test_stage_times_sum_to_total(self):
        lines = make_mixed_lines(700, seed=5)
        lg = LogGrep(store=MemoryStore(), config=SEQ_CONFIG)
        lg.compress(lines)
        with tracing() as tracer:
            lg.grep("ERROR")
        root = tracer.last_root()
        stage_sum = sum(child.seconds for child in root.children)
        # Direct children (plan + per-block spans) cover nearly the whole
        # query; only sort/bookkeeping in between is unaccounted.
        assert stage_sum <= root.seconds
        assert stage_sum >= 0.5 * root.seconds

    def test_traced_compress_has_fig2_stages(self):
        lines = make_mixed_lines(400, seed=6)
        lg = LogGrep(store=MemoryStore(), config=CONFIG)
        with tracing() as tracer:
            lg.compress(lines)
        root = tracer.last_root()
        assert root.name == "compress"
        block = root.children[0]
        assert block.name == "compress.block"
        names = {child.name for child in block.children}
        assert {"parse", "classify", "encode", "serialize"} <= names

    def test_untraced_grep_records_no_spans(self):
        lines = make_mixed_lines(300, seed=7)
        lg = LogGrep(store=MemoryStore(), config=CONFIG)
        lg.compress(lines)
        assert get_tracer() is NULL_TRACER
        result = lg.grep("ERROR")  # must run clean with the null tracer
        assert result.count > 0

    def test_parallel_grep_attaches_blocks_and_merges_stats(self):
        lines = make_mixed_lines(700, seed=8)
        config = LogGrepConfig(block_bytes=8 * 1024, query_parallelism=4)
        lg = LogGrep(store=MemoryStore(), config=config)
        lg.compress(lines)
        serial = LogGrep(store=MemoryStore(), config=CONFIG)
        serial.compress(lines)
        with tracing() as tracer:
            result = lg.grep("ERROR")
        root = tracer.last_root()
        blocks = [c for c in root.children if c.name == "block"]
        assert len(blocks) == len(lg.store.names())
        # Parallel stats now merge per-block counters instead of dropping them.
        expected = serial.grep("ERROR").stats
        assert result.stats.capsules_decompressed == expected.capsules_decompressed
        assert result.stats.blocks_visited == expected.blocks_visited

    def test_parallel_block_spans_attach_to_query_root(self):
        """Satellite: spans opened on worker threads parent under the root.

        With ``query_parallelism > 1`` each per-block span is created on a
        pool thread whose thread-local span stack is empty, so attachment
        relies on the explicit ``parent=`` hand-off — verify every block
        span landed under the query root (no orphans, no mis-parenting) and
        that the work really ran off the main thread.
        """
        lines = make_mixed_lines(900, seed=31)
        config = LogGrepConfig(
            block_bytes=8 * 1024, query_parallelism=4, batch_scans=False
        )
        lg = LogGrep(store=MemoryStore(), config=config)
        lg.compress(lines)
        with tracing() as tracer:
            lg.grep("ERROR")
        root = tracer.last_root()
        assert root is not None and root.name == "query"
        assert tracer.roots == [root]  # no orphaned roots from pool threads

        def walk(span):
            yield span
            for child in span.children:
                yield from walk(child)

        blocks = [s for s in walk(root) if s.name == "block"]
        assert len(blocks) == len(lg.store.names()) > 1
        for span in blocks:
            assert span.parent is root
        # Descendants of a block (locate/match/...) stay under that block.
        for span in walk(root):
            if span is root or span.parent is root:
                continue
            cursor = span
            while cursor.parent is not root:
                cursor = cursor.parent
            assert cursor.name == "block"
        # At least one block span actually ran on a non-main thread.
        tids = {s.tid for s in blocks}
        assert len(tids) > 1 or threading.get_ident() not in tids

    def test_query_metrics_accumulate(self):
        lines = make_mixed_lines(300, seed=9)
        lg = LogGrep(store=MemoryStore(), config=CONFIG)
        lg.compress(lines)
        reg = get_registry()
        queries_before = reg.counter("loggrep_queries_total").value()
        latency_before = reg.histogram("loggrep_query_seconds").count()
        lg.grep("ERROR")
        lg.grep("SUC")
        assert reg.counter("loggrep_queries_total").value() == queries_before + 2
        assert reg.histogram("loggrep_query_seconds").count() == latency_before + 2


class TestClusterTracing:
    def test_fan_out_child_spans_per_block(self):
        from repro.cluster.coordinator import ClusterLogGrep

        lines = make_mixed_lines(600, seed=11)
        with ClusterLogGrep(num_nodes=3, replication=2, config=CONFIG) as cluster:
            cluster.compress(lines)
            with tracing() as tracer:
                result = cluster.grep("ERROR")
        roots = {span.name: span for span in tracer.roots}
        assert "cluster.query" in roots
        query = roots["cluster.query"]
        fan = query.find("cluster.fan_out")[0]
        blocks = [c for c in fan.children if c.name == "cluster.query_block"]
        assert len(blocks) == len(cluster._placement)
        for span in blocks:
            assert span.attrs["node"] in cluster.nodes
            # Node-side stages nest under the fan-out child of their thread.
            assert span.find("locate")
        assert result.count > 0

    def test_cluster_ingest_spans_and_node_metrics(self):
        from repro.cluster.coordinator import ClusterLogGrep

        reg = get_registry()
        counter = reg.counter("loggrep_cluster_node_queries_total")
        lines = make_mixed_lines(400, seed=12)
        with ClusterLogGrep(num_nodes=2, replication=1, config=CONFIG) as cluster:
            with tracing() as tracer:
                cluster.compress(lines)
            cluster.grep("ERROR")
            served = sum(
                counter.value(node=node_id) for node_id in cluster.nodes
            )
            assert served >= len(cluster._placement)
        root = tracer.last_root()
        assert root.name == "cluster.compress"
        assert all(c.name == "cluster.ingest_block" for c in root.children)
        assert len(root.children) == len(cluster._placement)


class TestBenchIntegration:
    def test_measurement_records_stage_seconds(self):
        from repro.bench.runner import measure_system, system_factories
        from repro.workloads import spec_by_name

        spec = spec_by_name("Apache")
        lines = spec.generate(300)
        m = measure_system(spec, lines, system_factories()["LG"])
        assert m.stage_seconds, "LG measurement should carry a span summary"
        # Sequential routing roots at "query" (with a "plan" stage);
        # LOGGREP_BATCH_SCANS=1 roots at the shared-scan "batch" lane.
        root = "query" if "query" in m.stage_seconds else "batch"
        assert root in m.stage_seconds
        assert m.stage_seconds["block"] <= m.stage_seconds[root]

    def test_stage_rows_rendering(self):
        from repro.bench.report import STAGE_COLUMNS, stage_rows
        from repro.bench.runner import Measurement

        m = Measurement(
            dataset="d", system="LG", raw_bytes=1, storage_bytes=1,
            compression_ratio=1.0, compression_speed_mb_s=1.0,
            query_latency_s=0.1, hits=0, query="q",
            stage_seconds={"query": 0.1, "plan": 0.01, "locate": 0.05},
        )
        rows = stage_rows([m])
        assert rows[0][0] == "d"
        assert len(rows[0]) == 1 + len(STAGE_COLUMNS)
        assert "10.0 (10%)" in rows[0][1]
