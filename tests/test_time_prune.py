"""Tests for timestamp extraction, the v2 prune sidecar and time-window
block pruning."""

import calendar

import pytest

from repro.blockstore.index import ArchiveIndex, BlockSummary
from repro.blockstore.remote import RemoteStore
from repro.cluster import ClusterLogGrep
from repro.common.timeparse import (
    extract_timestamp,
    parse_time_arg,
    time_range_of,
)
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep

CONFIG = LogGrepConfig(block_bytes=4 * 1024)


def epoch(text):
    base = calendar.timegm((2024, 3, 1, 0, 0, 0, 0, 0, 0))
    h, m, s = (int(p) for p in text.split(":"))
    return base + h * 3600 + m * 60 + s


def timed_corpus(n=1200):
    """One line per second from 2024-03-01 00:00:00, mixed content."""
    lines = []
    for i in range(n):
        ts = f"2024-03-01 {i // 3600:02d}:{i // 60 % 60:02d}:{i % 60:02d}"
        if i % 9 == 0:
            lines.append(f"{ts} ERROR write to file failed code={i % 7}")
        else:
            lines.append(f"{ts} INFO req T{i} state: SUC#16{i % 100:02d}")
    return lines


class TestTimestampExtraction:
    def test_basic_formats(self):
        want = calendar.timegm((2024, 3, 1, 12, 30, 45, 0, 0, 0))
        assert extract_timestamp("2024-03-01 12:30:45 hello") == want
        assert extract_timestamp("2024-03-01T12:30:45 hello") == want
        assert extract_timestamp("2024-03-01 12:30:45.250 x") == want + 0.25

    def test_rejects_non_timestamps(self):
        assert extract_timestamp("ERROR no time here") is None
        assert extract_timestamp("2024-13-01 00:00:00 bad month") is None
        assert extract_timestamp("2024-02-40 00:00:00 bad day") is None
        assert extract_timestamp("") is None

    def test_time_range_of(self):
        lines = [
            "no timestamp",
            "2024-03-01 10:00:05 mid",
            "2024-03-01 09:00:00 early",
            "2024-03-01 11:30:00 late",
        ]
        low, high = time_range_of(lines)
        assert low == extract_timestamp(lines[2])
        assert high == extract_timestamp(lines[3])
        assert time_range_of(["a", "b"]) == (None, None)

    def test_parse_time_arg(self):
        assert parse_time_arg("1700000000") == 1700000000.0
        assert parse_time_arg("2024-03-01 10:00:00") == epoch("10:00:00")
        with pytest.raises(ValueError):
            parse_time_arg("yesterday")


class TestSidecarTimestamps:
    def roundtrip(self, index, version=None):
        if version is None:
            blob = index.serialize()
        else:
            blob = index.serialize(version=version)
        return ArchiveIndex.deserialize(blob)

    def make_index(self):
        lg = LogGrep(config=CONFIG)
        lg.compress(timed_corpus(400))
        index = ArchiveIndex()
        for name in lg.store.names():
            summary = lg._index.get(name)  # noqa: SLF001
            assert summary is not None
            index.add(name, summary)
        return index

    def test_v2_roundtrips_time_range(self):
        index = self.make_index()
        restored = self.roundtrip(index)
        for name in index.blocks:
            original, copy = index.get(name), restored.get(name)
            assert original.min_ts is not None
            assert copy.min_ts == original.min_ts
            assert copy.max_ts == original.max_ts
            assert copy.max_ts >= copy.min_ts

    def test_v1_sidecars_still_load(self):
        index = self.make_index()
        restored = self.roundtrip(index, version=1)
        for name in index.blocks:
            copy = restored.get(name)
            assert copy is not None
            assert copy.min_ts is None and copy.max_ts is None
            # Unknown range can never be pruned.
            assert copy.in_time_range(0.0, 1.0)

    def test_in_time_range_semantics(self):
        summary = BlockSummary(
            block_id=0, first_line_id=0, num_lines=1, type_mask=0,
            min_ts=100.0, max_ts=200.0,
        )
        assert summary.in_time_range(150.0, None)
        assert summary.in_time_range(None, 150.0)
        assert summary.in_time_range(200.0, 300.0)  # touching edges overlap
        assert summary.in_time_range(None, None)
        assert not summary.in_time_range(200.5, None)
        assert not summary.in_time_range(None, 99.5)


class TestTimeWindowPruning:
    @pytest.fixture(scope="class")
    def archive(self):
        store = RemoteStore()
        lg = LogGrep(store=store, config=CONFIG)
        lg.compress(timed_corpus())
        return store

    def test_out_of_window_blocks_cost_zero_reads(self, archive):
        fresh = LogGrep(store=archive, config=CONFIG)
        before = archive.requests
        result = fresh.grep("ERROR", from_time=epoch("12:00:00"))
        assert result.count == 0
        blocks = len(archive.names())
        assert result.stats.blocks_time_pruned == blocks
        assert result.stats.blocks_pruned == blocks
        # Only the sidecar load hit the store — no block data was read.
        assert archive.requests - before <= 2

    def test_window_prunes_most_blocks_but_keeps_matches(self, archive):
        fresh = LogGrep(store=archive, config=CONFIG)
        full = fresh.grep("ERROR")
        windowed = fresh.grep(
            "ERROR", from_time=epoch("00:05:00"), to_time=epoch("00:07:00")
        )
        assert windowed.stats.blocks_time_pruned > 0
        assert 0 < windowed.count < full.count
        # Block-granular pruning: every match inside the window survives.
        kept = set(windowed.lines)
        for line in full.lines:
            ts = extract_timestamp(line)
            if epoch("00:05:00") <= ts <= epoch("00:07:00"):
                assert line in kept

    def test_count_honors_window(self, archive):
        fresh = LogGrep(store=archive, config=CONFIG)
        assert fresh.count("ERROR", from_time=epoch("12:00:00")) == 0

    def test_cluster_window_matches_single_node(self):
        corpus = timed_corpus(800)
        single = LogGrep(config=CONFIG)
        single.compress(corpus)
        with ClusterLogGrep(num_nodes=3, replication=2, config=CONFIG) as c:
            c.compress(corpus)
            window = dict(
                from_time=epoch("00:03:00"), to_time=epoch("00:08:00")
            )
            assert c.grep("ERROR", **window).lines == single.grep(
                "ERROR", **window
            ).lines
            assert c.count("ERROR", **window) == single.count("ERROR", **window)
