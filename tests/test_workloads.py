"""Tests for the synthetic dataset suite (the paper's 21 + 16 logs)."""

import random

import pytest

from repro.baselines.evalutil import grep_lines
from repro.workloads import (
    all_specs,
    production_specs,
    public_specs,
    spec_by_name,
)
from repro.workloads.fields import (
    Compose,
    Enum,
    HexId,
    IPv4,
    Literal,
    Number,
    Path,
    PrefixedId,
    Sometimes,
    TimeHMS,
    Timestamp,
    Word,
)


class TestSuiteShape:
    def test_counts(self):
        assert len(production_specs()) == 21
        assert len(public_specs()) == 16
        assert len(all_specs()) == 37

    def test_unique_names(self):
        names = [spec.name for spec in all_specs()]
        assert len(set(names)) == len(names)

    def test_spec_by_name(self):
        assert spec_by_name("Log T").size_factor > 1
        with pytest.raises(KeyError):
            spec_by_name("Log Z")

    def test_log_t_is_volume_outlier(self):
        sizes = {spec.name: len(spec.generate(500)) for spec in production_specs()}
        assert sizes["Log T"] == max(sizes.values())


@pytest.mark.parametrize("spec", all_specs(), ids=lambda s: s.name)
class TestEverySpec:
    def test_deterministic(self, spec):
        assert spec.generate(300) == spec.generate(300)

    def test_query_selective_but_nonempty(self, spec):
        lines = spec.generate(1200)
        hits = grep_lines(spec.query, lines)
        assert 0 < len(hits) < 0.25 * len(lines)

    def test_templates_and_fields_consistent(self, spec):
        for template in spec.templates:
            assert template.template.count("{}") == len(template.fields)

    def test_no_nul_or_newline(self, spec):
        for line in spec.generate(200):
            assert "\x00" not in line
            assert "\n" not in line


class TestFields:
    def setup_method(self):
        self.rng = random.Random(0)

    def test_timestamp_monotone_prefix(self):
        ts = Timestamp(date="2021-01-01")
        values = [ts(self.rng, i) for i in range(50)]
        assert all(v.startswith("2021-01-01 ") for v in values)

    def test_hexid_shared_prefix(self):
        field = HexId(16, shared_prefix_len=4)
        values = [field(self.rng, i) for i in range(20)]
        prefixes = {v[:4] for v in values}
        assert len(prefixes) == 1
        assert all(len(v) == 16 for v in values)

    def test_ipv4_subnet(self):
        field = IPv4("11.187")
        assert all(field(self.rng, i).startswith("11.187.") for i in range(20))

    def test_ipv4_port(self):
        field = IPv4("10.0", port=True)
        assert ":" in field(self.rng, 0)

    def test_path_root(self):
        field = Path(root="/var/data")
        assert field(self.rng, 0).startswith("/var/data/")

    def test_enum_weights(self):
        field = Enum(["a", "b"], [1, 0])
        assert {field(self.rng, i) for i in range(20)} == {"a"}

    def test_number_fmt(self):
        field = Number(0, 10, "03d")
        assert all(len(field(self.rng, i)) == 3 for i in range(10))

    def test_number_hex_fmt(self):
        field = Number(255, 256, "02x")
        assert field(self.rng, 0) == "ff"

    def test_prefixed_id(self):
        field = PrefixedId("blk_", 6)
        value = field(self.rng, 0)
        assert value.startswith("blk_") and len(value) == 10

    def test_literal_and_compose(self):
        field = Compose("exchange-client-", Number(5, 6))
        assert field(self.rng, 0) == "exchange-client-5"
        assert Literal("x")(self.rng, 0) == "x"

    def test_sometimes(self):
        field = Sometimes("SPECIAL", Literal("base"), p=1.0)
        assert field(self.rng, 0) == "SPECIAL"
        never = Sometimes("SPECIAL", Literal("base"), p=0.0)
        assert never(self.rng, 0) == "base"

    def test_timehms(self):
        field = TimeHMS(9, 10)
        value = field(self.rng, 0)
        assert value.startswith("09:")
        assert len(value) == 8

    def test_word(self):
        assert Word(["only"])(self.rng, 0) == "only"
