"""Tests for the query-time vector readers (§5.1-§5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capsule.assembler import EncodingOptions, encode_plain, encode_vector
from repro.query.language import Keyword
from repro.query.modes import MatchMode, value_matches
from repro.query.stats import QueryStats
from repro.query.vectors import QuerySettings, make_reader

ALL_MODES = list(MatchMode)


def reader_for(values, stats=None, **opts):
    settings_ = QuerySettings(
        use_stamps=opts.pop("use_stamps", True),
        scan_kernel=opts.pop("scan_kernel", "bytes"),
    )
    encoded = encode_vector(values, EncodingOptions(**opts))
    return make_reader(encoded, settings_, stats if stats is not None else QueryStats())


def naive(values, fragment, mode):
    return {i for i, v in enumerate(values) if value_matches(v, fragment, mode)}


REAL_VALUES = [f"block_{i:X}F8{(i * 3) % 97:X}" for i in range(150)]
NOMINAL_VALUES = ["ERR#404"] * 40 + ["SUCC"] * 70 + ["ERR#501"] * 40
OUTLIER_VALUES = [f"path_{i}" for i in range(140)] + ["??", "!!"] + [
    f"path_{i}" for i in range(140, 150)
]


class TestRealReader:
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("fragment", ["block_", "F8", "1", "zz", ""])
    def test_matches_naive(self, fragment, mode):
        reader = reader_for(REAL_VALUES, seed=3)
        got = set(reader.search(fragment, mode).rows())
        assert got == naive(REAL_VALUES, fragment, mode)

    def test_outlier_rows_found(self):
        reader = reader_for(OUTLIER_VALUES, sample_rate=1.0)
        got = set(reader.search("??", MatchMode.SUBSTRING).rows())
        assert got == naive(OUTLIER_VALUES, "??", MatchMode.SUBSTRING)

    def test_outlier_and_matched_combined(self):
        values = OUTLIER_VALUES
        reader = reader_for(values, sample_rate=1.0)
        got = set(reader.search("path_1", MatchMode.SUBSTRING).rows())
        assert got == naive(values, "path_1", MatchMode.SUBSTRING)

    def test_value_at_and_values_list(self):
        reader = reader_for(OUTLIER_VALUES, sample_rate=1.0)
        assert [reader.value_at(i) for i in range(len(OUTLIER_VALUES))] == OUTLIER_VALUES
        assert reader.values_list() == OUTLIER_VALUES

    def test_stamp_filtering_avoids_decompression(self):
        stats = QueryStats()
        reader = reader_for(REAL_VALUES, stats=stats, seed=3)
        # "zz" has a character class no sub-variable contains.
        assert not reader.search("zz", MatchMode.SUBSTRING)
        assert stats.capsules_decompressed == 0

    def test_wildcard(self):
        reader = reader_for(REAL_VALUES, seed=3)
        keyword = Keyword("block_?F8*")
        got = set(reader.search_wildcard(keyword, MatchMode.SUBSTRING).rows())
        regex = keyword.regex_for(MatchMode.SUBSTRING)
        assert got == {i for i, v in enumerate(REAL_VALUES) if regex.search(v)}

    def test_wildcard_literal_prefilter(self):
        stats = QueryStats()
        reader = reader_for(REAL_VALUES, stats=stats, seed=3)
        # literal run "zz" cannot occur → whole matched portion skipped.
        assert not reader.search_wildcard(Keyword("zz*"), MatchMode.SUBSTRING)


class TestNominalReader:
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("fragment", ["ERR", "#16", "SUCC", "404", "x", ""])
    def test_matches_naive(self, fragment, mode):
        reader = reader_for(NOMINAL_VALUES)
        got = set(reader.search(fragment, mode).rows())
        assert got == naive(NOMINAL_VALUES, fragment, mode)

    def test_dictionary_miss_skips_index(self):
        stats = QueryStats()
        reader = reader_for(NOMINAL_VALUES, stats=stats)
        assert not reader.search("zzz", MatchMode.SUBSTRING)
        # The index Capsule must not have been opened (§5.1).
        assert stats.capsules_decompressed <= 1  # at most the dictionary

    def test_matching_slots(self):
        reader = reader_for(NOMINAL_VALUES)
        slots = reader.matching_slots("ERR", MatchMode.PREFIX)
        assert len(slots) == 2

    def test_value_at_and_values_list(self):
        reader = reader_for(NOMINAL_VALUES)
        assert [reader.value_at(i) for i in range(len(NOMINAL_VALUES))] == NOMINAL_VALUES
        assert reader.values_list() == NOMINAL_VALUES

    def test_wildcard(self):
        reader = reader_for(NOMINAL_VALUES)
        keyword = Keyword("ERR#4*")
        got = set(reader.search_wildcard(keyword, MatchMode.SUBSTRING).rows())
        assert got == {i for i, v in enumerate(NOMINAL_VALUES) if v.startswith("ERR#4")}


class TestPlainReader:
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("fragment", ["al", "", "om", "zz9"])
    def test_matches_naive(self, fragment, mode):
        values = ["alpha", "beta", "omega", ""] * 8
        encoded = encode_plain(values)
        reader = make_reader(encoded, QuerySettings(), QueryStats())
        got = set(reader.search(fragment, mode).rows())
        assert got == naive(values, fragment, mode)

    def test_stamp_rejects(self):
        stats = QueryStats()
        values = ["123", "456"] * 10
        reader = make_reader(encode_plain(values), QuerySettings(), stats)
        assert not reader.search("abc", MatchMode.SUBSTRING)
        assert stats.capsules_filtered == 1
        assert stats.capsules_decompressed == 0


class TestUnpaddedReaders:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.sampled_from(["a#1", "a#22", "bb", "c-3", ""]), min_size=1, max_size=40),
        st.sampled_from(["a", "#", "1", "bb", ""]),
        st.sampled_from(ALL_MODES),
    )
    def test_variable_layout_matches_naive(self, values, fragment, mode):
        reader = reader_for(values, use_padding=False)
        got = set(reader.search(fragment, mode).rows())
        assert got == naive(values, fragment, mode)


class TestKernelParity:
    """Both scan kernels agree on every reader kind."""

    @pytest.mark.parametrize("values", [REAL_VALUES, NOMINAL_VALUES, OUTLIER_VALUES])
    @pytest.mark.parametrize("mode", ALL_MODES)
    @pytest.mark.parametrize("fragment", ["ERR", "F8", "path_1", "#", ""])
    def test_search_identical(self, values, fragment, mode):
        by = reader_for(values, scan_kernel="bytes", sample_rate=1.0)
        py = reader_for(values, scan_kernel="python", sample_rate=1.0)
        assert set(by.search(fragment, mode).rows()) == set(
            py.search(fragment, mode).rows()
        ) == naive(values, fragment, mode)

    @pytest.mark.parametrize("kernel", ["bytes", "python"])
    def test_unpadded_search(self, kernel):
        values = ["a#1", "a#22", "bb", "c-3", ""] * 8
        reader = reader_for(values, use_padding=False, scan_kernel=kernel)
        got = set(reader.search("a#", MatchMode.PREFIX).rows())
        assert got == naive(values, "a#", MatchMode.PREFIX)


class TestBudgetFallback:
    """Locator explosion must fall back to a scan with correct results."""

    def _exploding_reader(self, stats, scan_kernel="bytes"):
        from repro.capsule.capsule import Capsule
        from repro.query.vectors import RealVectorReader
        from repro.capsule.assembler import RealEncodedVector
        from repro.runtime.pattern import pattern_from_fragments

        fragments = []
        for _ in range(10):
            fragments.extend([None, "-"])
        pattern = pattern_from_fragments(fragments)
        columns = [
            [("a" if (r + c) % 2 else "b") for r in range(30)]
            for c in range(pattern.num_subvars)
        ]
        encoded = RealEncodedVector(
            pattern,
            [Capsule.pack_fixed(column) for column in columns],
            None,
            [],
            30,
        )
        settings_ = QuerySettings(use_stamps=False, scan_kernel=scan_kernel)
        values = [
            pattern.render([column[r] for column in columns]) for r in range(30)
        ]
        return RealVectorReader(encoded, settings_, stats), values

    @pytest.mark.parametrize("kernel", ["bytes", "python"])
    def test_fallback_scan_is_correct(self, kernel):
        stats = QueryStats()
        reader, values = self._exploding_reader(stats, kernel)
        fragment = "a-b-a-b-a-b-a-b"
        got = set(reader.search(fragment, MatchMode.SUBSTRING).rows())
        assert stats.fallback_scans >= 1
        assert got == naive(values, fragment, MatchMode.SUBSTRING)
        assert got  # the corpus is built so the keyword does occur

    def test_non_exploding_query_stays_on_locator(self):
        stats = QueryStats()
        reader, values = self._exploding_reader(stats)
        got = set(reader.search("a-b", MatchMode.PREFIX).rows())
        assert stats.fallback_scans == 0
        assert got == naive(values, "a-b", MatchMode.PREFIX)


class TestReaderFactory:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            make_reader(object(), QuerySettings(), QueryStats())
