"""Quickstart: compress a log, grep it, reconstruct the hits.

Run with::

    python examples/quickstart.py
"""

from repro import LogGrep, LogGrepConfig
from repro.workloads import spec_by_name


def main() -> None:
    # Any iterable of log lines works; here we synthesize the HDFS-style
    # dataset the paper's §2.3 uses to motivate runtime patterns
    # ("blk_<*>" block numbers).
    spec = spec_by_name("Hdfs")
    lines = spec.generate(5000)

    # 1. Compress.  The store defaults to memory; pass an ArchiveStore for
    #    a directory-backed archive.  Blocks are 64 MB in production; small
    #    here so several blocks exist.
    lg = LogGrep(config=LogGrepConfig(block_bytes=256 * 1024))
    report = lg.compress(lines)
    print(
        f"compressed {report.raw_bytes:,} bytes into {report.compressed_bytes:,} "
        f"({report.ratio:.1f}x) at {report.speed_mb_s:.2f} MB/s "
        f"across {report.blocks} block(s)"
    )

    # 2. Query with grep-like commands: AND / OR / NOT plus in-token
    #    wildcards.  This is the dataset's Table 1 query.
    result = lg.grep(spec.query)
    print(f"\n$ loggrep grep {spec.query!r}")
    for line in result.lines[:5]:
        print(f"  {line}")
    if result.count > 5:
        print(f"  ... {result.count - 5} more")

    # 3. The stats show the paper's central effect: most Capsules are
    #    proven irrelevant by runtime patterns + stamps and never
    #    decompressed.
    stats = result.stats
    print(
        f"\n{result.count} hit(s) in {result.elapsed * 1000:.1f} ms | "
        f"capsules decompressed: {stats.capsules_decompressed}, "
        f"filtered without decompression: {stats.capsules_filtered}"
    )

    # 4. Round-trip guarantee: the archive reconstructs every line exactly.
    assert lg.decompress_all() == lines
    print("\nround-trip: exact ✓")


if __name__ == "__main__":
    main()
