"""A tour of the compression pipeline's internals (paper §4, Figs 4-5).

Shows what LogGrep actually builds from a block: mined static patterns,
per-vector classification, extracted runtime patterns, Capsules and their
stamps — the machinery behind the query speedups.

Run with::

    python examples/runtime_patterns_tour.py
"""

from repro.blockstore.block import LogBlock
from repro.capsule.assembler import (
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
)
from repro.common import chartypes
from repro.core.compressor import compress_block
from repro.core.config import LogGrepConfig
from repro.runtime.classify import classify_with_rate
from repro.workloads import spec_by_name


def describe_stamp(stamp) -> str:
    return f"typ={stamp.type_mask:06b} ({chartypes.describe(stamp.type_mask)}), len={stamp.max_len}"


def main() -> None:
    spec = spec_by_name("Log G")
    lines = spec.generate(3000)
    print(f"dataset: {spec.name} — {spec.description}")
    print(f"sample entry: {lines[0]}\n")

    box = compress_block(LogBlock(0, 0, lines), LogGrepConfig())
    print(f"{len(box.groups)} group(s), {box.capsule_count()} capsule(s)\n")

    for group in box.groups:
        print(f"static pattern: {group.template.display()}")
        print(f"  entries: {group.num_entries}")
        for var_idx, encoded in enumerate(group.vectors):
            raw_values = None
            if isinstance(encoded, RealEncodedVector):
                print(
                    f"  var {var_idx}: REAL — runtime pattern "
                    f"{encoded.pattern.display()!r}"
                )
                for k, capsule in enumerate(encoded.subvar_capsules):
                    print(
                        f"      <sv{k}> capsule: {capsule.count} values, "
                        f"{describe_stamp(capsule.stamp)}, "
                        f"{capsule.compressed_bytes} bytes compressed"
                    )
                if encoded.outlier_capsule is not None:
                    print(
                        f"      outliers: {len(encoded.outlier_rows)} values "
                        "(scanned by every query — extraction accuracy is a "
                        "performance matter, never correctness)"
                    )
            elif isinstance(encoded, NominalEncodedVector):
                print(f"  var {var_idx}: NOMINAL — dictionary of {encoded.dict_size}")
                for dp in encoded.dict_patterns:
                    print(f"      pattern {dp.display()}")
                print(
                    f"      index capsule: IdxLen={encoded.index_width}, "
                    f"{encoded.index_capsule.compressed_bytes} bytes"
                )
            elif isinstance(encoded, PlainEncodedVector):
                print(
                    f"  var {var_idx}: PLAIN — {describe_stamp(encoded.capsule.stamp)}"
                )
        print()


if __name__ == "__main__":
    main()
