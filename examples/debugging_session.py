"""Refining mode: an engineer narrowing down an incident, step by step.

The paper's Query Cache (§3, Fig 9 'w/o cache') exists exactly for this
workflow — each refinement reuses the located rows of the search strings
it shares with earlier commands.

Run with::

    python examples/debugging_session.py
"""

import time

from repro import LogGrep, LogGrepConfig, ablated
from repro.workloads import spec_by_name


SESSION = [
    # Step 1: something is wrong — look at errors.
    "ERROR",
    # Step 2: it's about closed requests.
    "ERROR and state:REQ_ST_CLOSED",
    # Step 3: a specific error code turns up repeatedly.
    "ERROR and state:REQ_ST_CLOSED and 20012",
    # Step 4: pin down the offending request id.
    "ERROR and state:REQ_ST_CLOSED and 20012 and reqId:5E9D21AD5E473938",
]


def run_session(lg: LogGrep, label: str) -> float:
    total = 0.0
    print(f"--- {label} ---")
    for command in SESSION:
        result = lg.grep(command)
        total += result.elapsed
        print(
            f"  {command[:60]:60s} {result.count:5d} hits  "
            f"{result.elapsed * 1000:7.1f} ms  (cache hits: {result.stats.cache_hits})"
        )
    print(f"  session total: {total * 1000:.1f} ms\n")
    return total


def main() -> None:
    spec = spec_by_name("Log A")
    lines = spec.generate(20000)

    cached = LogGrep(config=LogGrepConfig(block_bytes=1 << 20))
    cached.compress(lines)
    uncached = LogGrep(config=ablated("w/o cache", LogGrepConfig(block_bytes=1 << 20)))
    uncached.compress(lines)

    with_cache = run_session(cached, "refining session WITH Query Cache")
    without = run_session(uncached, "refining session WITHOUT Query Cache (w/o cache ablation)")
    print(
        f"Query Cache speedup over the session: {without / with_cache:.2f}x "
        "(paper §6.3: 2.08x)"
    )

    # The final answer an engineer would act on:
    final = cached.grep(SESSION[-1])
    print("\nIncident lines:")
    for line in final.lines[:3]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
