"""Cost explorer: Equation 1 over all five systems on one dataset.

Reproduces §6.1's reasoning in miniature: measure compression ratio,
compression speed and query latency for gzip+grep, CLP, mini-ES,
LogGrep-SP and LogGrep, fold them through the paper's cost model, and
compute the ES breakeven query frequency.

Run with::

    python examples/cost_explorer.py [dataset-name]
"""

import sys

from repro.bench.runner import measure_system, system_factories, SYSTEM_ORDER
from repro.cost.model import (
    CostParameters,
    breakeven_query_frequency,
    overall_cost,
)
from repro.workloads import spec_by_name


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "Log B"
    spec = spec_by_name(dataset)
    lines = spec.generate(6000)
    print(f"dataset: {spec.name} — {spec.description}")
    print(f"query:   {spec.query}")
    print(f"lines:   {len(lines)} ({sum(len(l) + 1 for l in lines):,} bytes)\n")

    factories = system_factories()
    measurements = {}
    costs = {}
    header = f"{'system':7s} {'ratio':>7s} {'speed MB/s':>11s} {'query ms':>9s} {'$/TB':>8s}"
    print(header)
    print("-" * len(header))
    for name in SYSTEM_ORDER:
        m = measure_system(spec, lines, factories[name])
        cost = overall_cost(
            m.compression_ratio, m.compression_speed_mb_s, m.query_latency_s_per_tb
        )
        measurements[name] = m
        costs[name] = cost
        print(
            f"{name:7s} {m.compression_ratio:7.2f} {m.compression_speed_mb_s:11.2f} "
            f"{m.query_latency_s * 1000:9.1f} {cost.total:8.2f}"
        )

    lg = costs["LG"]
    print()
    for name in SYSTEM_ORDER:
        if name == "LG":
            continue
        print(f"LogGrep costs {lg.total / costs[name].total * 100:5.1f}% of {name}")

    # §6.1: when would ES's fast queries amortize its storage premium?
    es_m, lg_m = measurements["ES"], measurements["LG"]
    if es_m.query_latency_s < lg_m.query_latency_s:
        frequency = breakeven_query_frequency(
            lg, lg_m.query_latency_s_per_tb, costs["ES"], es_m.query_latency_s_per_tb
        )
        print(
            f"\nES becomes cheaper than LogGrep only above {frequency:,.0f} queries "
            f"per {CostParameters().duration_months:.0f}-month retention — near-line "
            "logs see ~100."
        )
    else:
        print("\nOn this dataset LogGrep queries are faster than ES outright.")


if __name__ == "__main__":
    main()
