"""Structure-based aggregation on compressed logs — the §2 "second phase".

The query result of phase one usually feeds anomaly detection or SQL-ish
aggregation.  LogGrep's Capsules are already columns, so aggregation runs
directly on the compressed archive: no log line is ever reconstructed.

Run with::

    python examples/structured_analytics.py
"""

from repro import LogGrep, LogGrepConfig
from repro.analytics import Analyzer, group_count
from repro.workloads import spec_by_name


def main() -> None:
    spec = spec_by_name("Log B")
    lines = spec.generate(20000)
    lg = LogGrep(config=LogGrepConfig(block_bytes=512 * 1024))
    lg.compress(lines)
    analyzer = Analyzer(lg)

    print("discovered fields:", ", ".join(analyzer.fields()))

    # Which tenants produce the errors?  (SELECT Project, COUNT(*) ...
    # WHERE line matches 'ERROR' GROUP BY Project ORDER BY count DESC)
    print("\ntop error-producing projects:")
    for project, count in analyzer.top_k("Project", k=5, where="ERROR"):
        print(f"  Project:{project:6s} {count:5d} errors")

    # Latency distribution, straight off the latency column's Capsules.
    stats = analyzer.stats_of("latency")
    print(
        f"\nlatency (us): n={stats.count} min={stats.minimum:.0f} "
        f"p50={stats.p50:.0f} p95={stats.p95:.0f} p99={stats.p99:.0f} "
        f"max={stats.maximum:.0f}"
    )

    # Group-by join within a template: which request ids hit per project?
    print("\nrequests per erroring project (top project only):")
    grouped = group_count(analyzer.pairs("Project", "RequestId", where="ERROR"))
    (top_project, _), *_ = analyzer.top_k("Project", k=1, where="ERROR")
    for request_id, count in grouped[top_project].most_common(3):
        print(f"  Project:{top_project} RequestId:{request_id} x{count}")

    print(
        f"\ncapsules decompressed for all of the above: "
        f"{analyzer.stats.capsules_decompressed} "
        "(no log line was reconstructed)"
    )


if __name__ == "__main__":
    main()
