"""Distributed LogGrep (§8 future work): replicated placement, parallel
scatter/gather queries, node failure and repair.

Run with::

    python examples/cluster_demo.py
"""

from repro.baselines.evalutil import grep_lines
from repro.cluster import ClusterLogGrep
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name


def main() -> None:
    spec = spec_by_name("Log H")
    lines = spec.generate(20000)

    with ClusterLogGrep(
        num_nodes=4, replication=2, config=LogGrepConfig(block_bytes=256 * 1024)
    ) as cluster:
        cluster.compress(lines)
        stats = cluster.stats()
        print(f"cluster: {stats.nodes} nodes, {stats.blocks} blocks, R={stats.replication}")
        for node_id in sorted(stats.blocks_per_node):
            print(
                f"  {node_id}: {stats.blocks_per_node[node_id]:3d} blocks, "
                f"{stats.bytes_per_node[node_id]:,} bytes"
            )

        result = cluster.grep("ERROR")
        expected = grep_lines("ERROR", lines)
        print(f"\ngrep ERROR → {result.count} hits in {result.elapsed * 1000:.1f} ms "
              f"(correct: {result.lines == expected})")

        # Kill a node mid-operation: replicas take over transparently.
        print("\nfailing node-1 ...")
        cluster.node("node-1").fail()
        survived = cluster.grep("ERROR")
        print(f"grep ERROR with node-1 down → {survived.count} hits "
              f"(correct: {survived.lines == expected})")

        # Re-replicate the under-replicated blocks onto the alive nodes.
        created = cluster.repair()
        print(f"repair created {created} replica copies")
        print(f"total storage (all replicas): {cluster.storage_bytes():,} bytes")


if __name__ == "__main__":
    main()
