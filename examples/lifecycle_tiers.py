"""The log lifecycle (§1): near-line LogGrep → offline archive.

Shows the near-line/offline trade-off end-to-end: compress a dataset into
the near-line tier, age it into the offline tier (merged blocks, maximum
LZMA), and use Equation 1 to decide whether the rewrite pays off.

Run with::

    python examples/lifecycle_tiers.py
"""

from repro import LogGrep, LogGrepConfig
from repro.core.lifecycle import archive_offline, transition_analysis
from repro.workloads import spec_by_name


def main() -> None:
    spec = spec_by_name("Log H")
    lines = spec.generate(15000)

    nearline = LogGrep(config=LogGrepConfig(block_bytes=256 * 1024))
    report = nearline.compress(lines)
    print(
        f"near-line tier: {report.blocks} blocks, ratio {report.ratio:.1f}x, "
        f"{report.speed_mb_s:.2f} MB/s ingest"
    )
    result = nearline.grep(spec.query)
    print(f"  query latency: {result.elapsed * 1000:.1f} ms ({result.count} hits)")

    offline, off = archive_offline(nearline)
    print(
        f"\noffline tier:   {off.offline_blocks} block(s) "
        f"(merged from {off.nearline_blocks}), "
        f"{off.ratio_gain:.2f}x smaller than near-line"
    )
    result = offline.grep(spec.query)
    print(f"  query latency: {result.elapsed * 1000:.1f} ms (still queryable)")

    speed = (off.raw_bytes / 1e6) / off.recompress_seconds
    nearline_ratio = off.raw_bytes / off.nearline_bytes
    offline_ratio = off.raw_bytes / off.offline_bytes
    analysis = transition_analysis(nearline_ratio, offline_ratio, speed)
    print(
        f"\nEquation 1 says: near-line storage {analysis.nearline_monthly_per_tb:.2f} "
        f"$/TB-month vs offline {analysis.offline_monthly_per_tb:.2f}; "
        f"rewrite costs {analysis.recompression_cost_per_tb:.2f} $/TB"
    )
    if analysis.breakeven_months == float("inf"):
        print("the rewrite never pays off for this dataset")
    else:
        print(
            f"the rewrite pays for itself after {analysis.breakeven_months:.1f} "
            f"month(s) in the offline tier"
            + (" — worth doing" if analysis.worthwhile_within else "")
        )


if __name__ == "__main__":
    main()
