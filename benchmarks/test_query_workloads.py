"""Query-class latency distributions (beyond Table 1's single query).

Derives a family of queries per dataset — template hits, nominal tokens,
rare ids, numerics, wildcards, negations and guaranteed misses — and
measures LogGrep's latency and filtering behaviour per class.  The paper's
§6.1 observation that "LogGrep performs better if a query directly hits
the template" becomes an assertion here."""

from collections import defaultdict

import pytest

from repro.baselines.evalutil import grep_lines
from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.report import format_table, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES, geomean
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name
from repro.workloads.queries import derived_queries

DATASETS = ["Log A", "Log G", "Log N", "Hdfs", "Spark"]


def test_query_class_latencies(benchmark, scale):
    per_class = defaultdict(list)
    rows = []
    systems = {}
    corpora = {}
    families = {}
    for dataset in DATASETS:
        spec = spec_by_name(dataset)
        lines = spec.generate(scale)
        corpora[dataset] = lines
        system = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
        system.ingest(lines)
        systems[dataset] = system
        families[dataset] = derived_queries(lines)

    def run_all():
        results = {}
        for dataset, family in families.items():
            system = systems[dataset]
            for query in family:
                system.loggrep.clear_query_cache()
                hits, seconds = system.timed_query(query.command)
                results[(dataset, query.label)] = (len(hits), seconds)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for (dataset, label), (hits, seconds) in results.items():
        per_class[label].append(seconds)
        rows.append([dataset, label, hits, f"{seconds * 1000:.1f}"])
    print_banner("Derived query classes: LogGrep latency")
    print(format_table(["dataset", "class", "hits", "latency (ms)"], rows))
    means = {label: geomean(vals) for label, vals in per_class.items()}
    print({k: f"{v * 1000:.1f}ms" for k, v in means.items()})

    # Correctness of the whole family.
    for dataset, family in families.items():
        system = systems[dataset]
        for query in family:
            assert system.query(query.command) == grep_lines(
                query.command, corpora[dataset]
            ), (dataset, query)

    # Misses must be the cheapest class: everything is filtered.
    assert means["miss"] <= min(
        value for label, value in means.items() if label != "miss"
    ) * 2.0


def test_miss_queries_decompress_little(scale, benchmark):
    spec = spec_by_name("Log G")
    lines = spec.generate(scale)
    system = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
    system.ingest(lines)

    def run():
        system.loggrep.clear_query_cache()
        return system.loggrep.grep("zqx_absent_keyword_xqz")

    result = benchmark.pedantic(run, rounds=3)
    assert result.count == 0
    print(
        f"miss query: {result.stats.capsules_decompressed} capsules opened, "
        f"{result.stats.capsules_filtered} filtered"
    )
    assert result.stats.capsules_decompressed <= result.stats.capsules_filtered