"""Fig 9 / §6.3 — per-technique ablations and the padding effect.

Paper (normalized query latency vs full LogGrep): w/o real 1.51x,
w/o nomi 4.03x, w/o stamp 3.59x, w/o fixed 1.89x, w/o cache 2.08x.
Padding's compression-ratio effect: 0.99x-1.10x (1.04x average).

Pure-Python magnitudes are smaller (scans run closer to the metal in the
authors' C++), so the assertions check direction and order of magnitude,
not the exact factors."""

import pytest

from repro.bench.figures import figure9, padding_effect
from repro.bench.report import format_table, print_banner
from repro.bench.runner import geomean
from repro.core.config import ABLATIONS
from repro.workloads import production_specs

PAPER_FACTORS = {
    "w/o real": 1.51,
    "w/o nomi": 4.03,
    "w/o stamp": 3.59,
    "w/o fixed": 1.89,
    "w/o cache": 2.08,
}


def test_fig9_ablations(benchmark, scale):
    specs = production_specs()
    lines = max(scale // 2, 1000)
    results = benchmark.pedantic(
        lambda: figure9(specs, lines), rounds=1, iterations=1
    )
    print_banner("Fig 9: ablated versions, query latency normalized to full LogGrep")
    print(
        format_table(
            ["version", "paper", "measured"],
            [
                [name, f"{PAPER_FACTORS[name]:.2f}x", f"{results[name]:.2f}x"]
                for name in ABLATIONS
            ],
        )
    )
    # Every removed technique must cost query latency on average.
    for name in ABLATIONS:
        assert results[name] > 0.95, f"{name} did not slow queries: {results[name]}"
    # The cache ablation must show a clear refining-mode penalty.
    assert results["w/o cache"] > 1.1


def test_padding_compression_effect(benchmark, scale):
    specs = production_specs()[:10]
    effect = benchmark.pedantic(
        lambda: padding_effect(specs, max(scale // 2, 800)), rounds=1, iterations=1
    )
    print_banner("§6.3: compression ratio with padding / without padding")
    print(
        format_table(
            ["dataset", "ratio factor"],
            [[name, f"{value:.3f}"] for name, value in effect.items()],
        )
    )
    gm = geomean(list(effect.values()))
    print(f"geomean: {gm:.3f} (paper: 1.04 average, range 0.99-1.10)")
    # Padding must be roughly free: no dataset pays a large ratio penalty.
    assert gm > 0.85
    for name, value in effect.items():
        assert value > 0.75, f"{name}: padding cost {value}"
