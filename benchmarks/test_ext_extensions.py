"""Extension benchmarks (beyond the paper's evaluation):

* block-level trigram Bloom pruning — archive-miss queries skip every
  CapsuleBox without decompressing anything;
* the distributed cluster — scatter/gather queries return the single-node
  result and survive a node failure;
* streaming ingestion — pipelined block compression keeps up with batch;
* the compression profiler — where ingest time goes (§8's observation).
"""

import pytest

from repro import LogGrep, LogGrepConfig, StreamingCompressor
from repro.baselines.evalutil import grep_lines
from repro.bench.profile import profile_compression
from repro.bench.report import format_table, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES
from repro.cluster import ClusterLogGrep
from repro.workloads import spec_by_name


@pytest.fixture(scope="module")
def corpus(scale):
    return spec_by_name("Log T").generate(scale)


def test_block_bloom_pruning(benchmark, corpus):
    base = LogGrep(config=LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
    base.compress(corpus)
    pruned = LogGrep(
        config=LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES, use_block_bloom=True)
    )
    pruned.compress(corpus)
    miss = "keyword_absent_everywhere"

    def run_miss():
        pruned.clear_query_cache()
        return pruned.grep(miss)

    result = benchmark.pedantic(run_miss, rounds=5)
    base.clear_query_cache()
    base_result = base.grep(miss)
    print_banner("Extension: block-level Bloom pruning (archive-miss query)")
    print(
        format_table(
            ["version", "blocks pruned", "capsules decompressed", "latency"],
            [
                ["baseline", 0, base_result.stats.capsules_decompressed,
                 f"{base_result.elapsed * 1000:.1f} ms"],
                ["with bloom", result.stats.blocks_pruned,
                 result.stats.capsules_decompressed,
                 f"{result.elapsed * 1000:.1f} ms"],
            ],
        )
    )
    overhead = base.storage_bytes() and pruned.storage_bytes() / base.storage_bytes()
    print(f"storage overhead of the filters: {(overhead - 1) * 100:.2f}%")
    assert result.count == 0
    assert result.stats.blocks_pruned == len(pruned.store.names())
    assert result.stats.capsules_decompressed == 0
    assert overhead < 1.10
    # Hits must be unaffected.
    query = spec_by_name("Log T").query
    assert pruned.grep(query).lines == base.grep(query).lines


def test_cluster_scatter_gather(benchmark, corpus):
    config = LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES)
    query = spec_by_name("Log T").query
    with ClusterLogGrep(num_nodes=4, replication=2, config=config) as cluster:
        cluster.compress(corpus)

        def run():
            return cluster.grep(query)

        result = benchmark.pedantic(run, rounds=3)
        expected = grep_lines(query, corpus)
        assert result.lines == expected
        cluster.node("node-1").fail()
        assert cluster.grep(query).lines == expected
        stats = cluster.stats()
        print_banner("Extension: 4-node cluster, replication 2")
        print(
            format_table(
                ["node", "blocks", "bytes"],
                [
                    [nid, stats.blocks_per_node[nid], stats.bytes_per_node[nid]]
                    for nid in sorted(stats.blocks_per_node)
                ],
            )
        )


def test_streaming_vs_batch_ingest(benchmark, corpus):
    config = LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES)

    def stream_all():
        with StreamingCompressor(config=config, pipeline_depth=2) as stream:
            stream.extend(corpus)
            return stream.flush()

    report = benchmark.pedantic(stream_all, rounds=3)
    batch = LogGrep(config=config)
    batch_report = batch.compress(corpus)
    print_banner("Extension: streaming (pipelined) vs batch ingest")
    print(
        format_table(
            ["mode", "MB/s", "ratio"],
            [
                ["batch", f"{batch_report.speed_mb_s:.2f}", f"{batch_report.ratio:.2f}"],
                ["streaming", f"{report.speed_mb_s:.2f}", f"{report.ratio:.2f}"],
            ],
        )
    )
    assert report.blocks == batch_report.blocks
    # The pipeline must not be slower than batch by more than noise.
    assert report.speed_mb_s > 0.5 * batch_report.speed_mb_s


def test_compression_profile(benchmark, corpus):
    profile = benchmark.pedantic(
        lambda: profile_compression(corpus[: len(corpus) // 2]), rounds=1, iterations=1
    )
    print_banner("§8: where compression time goes (one block)")
    print(format_table(["stage", "time", "share"], profile.breakdown()))
    print(f"vectors: {profile.vectors}")
    assert profile.total_seconds > 0
    # Parsing plus encoding dominates; serialization is cheap.
    assert profile.serialize_seconds < 0.5 * profile.total_seconds
