"""Aggregation pushdown vs reconstruct-then-count on Table-1 workloads.

Two ways to answer ``GROUP BY field COUNT(*)`` over a compressed archive:

* **pushdown** — ``LogGrep.aggregate``: the WHERE filter locates rows,
  then the Aggregate operator counts nominal columns by their raw
  dictionary index cells and decodes only the distinct slots.  No line
  is ever reconstructed.
* **baseline** — the pre-pushdown shape: ``grep`` the WHERE filter,
  reconstruct every matching line, extract the field with a regex and
  count in Python.

Both run over the same shared store on fresh LogGrep instances, so the
byte counters see exactly what each strategy pulls off storage.  The
acceptance bar rides the *selective* datasets (hit groups hold a modest
payload share): pushdown must read ≤ 25 % of the baseline's bytes and
finish in ≤ 50 % of its wall time, with identical counts everywhere,
and the per-query ledger's ``read_bytes`` must reconcile exactly with
the process-wide ``loggrep_store_range_read_bytes_total`` delta.
"""

import re
import time
from collections import Counter

from repro.bench.report import format_table, print_banner
from repro.blockstore.store import MemoryStore
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep
from repro.obs import get_registry
from repro.query.aggregate import AggregateSpec
from repro.query.modes import AggregateKind
from repro.workloads import spec_by_name

_RANGE_BYTES = get_registry().counter("loggrep_store_range_read_bytes_total")

BLOCK_BYTES = 64 * 1024
LINES = 3000
ROUNDS = 3

#: (dataset, field, WHERE filter, gated) — the gated rows are the
#: a-priori selective ones the ≤25 % bytes / ≤50 % time bars apply to.
WORKLOADS = [
    ("Log A", "state", "request", True),
    ("Log T", "op", "io trace", True),
    ("Log B", "Project", "latency", False),
]

BYTES_BAR = 0.25
TIME_BAR = 0.50


def _measure(name, field, where):
    spec = spec_by_name(name)
    lines = spec.generate(LINES)
    store = MemoryStore()
    LogGrep(store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)).compress(
        lines
    )
    pattern = re.compile(rf"{field}[:=](\S+)")

    agg_seconds = base_seconds = float("inf")
    for _ in range(ROUNDS):
        # Pushdown: fresh instance over the shared store, ledger armed so
        # read_bytes can be reconciled against the process counter.
        agg_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        before = _RANGE_BYTES.value()
        start = time.perf_counter()
        result = agg_lg.aggregate(
            AggregateSpec(AggregateKind.COUNT_BY, field), where, analyze=True
        )
        agg_seconds = min(agg_seconds, time.perf_counter() - start)
        agg_bytes = int(_RANGE_BYTES.value() - before)
        ledger_bytes = result.ledger.totals().read_bytes

        # Baseline: reconstruct the hits, then count in Python.
        base_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        before = _RANGE_BYTES.value()
        start = time.perf_counter()
        hits = base_lg.grep(where).lines
        base_counts = Counter(
            match.group(1)
            for line in hits
            for match in [pattern.search(line)]
            if match
        )
        base_seconds = min(base_seconds, time.perf_counter() - start)
        base_bytes = int(_RANGE_BYTES.value() - before)

    return {
        "dataset": name,
        "field": field,
        "where": where,
        "matched": result.matched,
        "counts_equal": dict(result.value) == dict(base_counts),
        "nonempty": sum(result.value.values()) > 0,
        "agg_bytes": agg_bytes,
        "ledger_bytes": ledger_bytes,
        "base_bytes": base_bytes,
        "bytes_ratio": agg_bytes / max(1, base_bytes),
        "agg_ms": agg_seconds * 1000,
        "base_ms": base_seconds * 1000,
        "time_ratio": agg_seconds / base_seconds,
    }


def test_count_by_pushdown_beats_reconstruct():
    rows = [_measure(name, field, where) for name, field, where, _ in WORKLOADS]

    print_banner("aggregation: count-by pushdown vs reconstruct-then-count")
    print(
        format_table(
            [
                "dataset",
                "field",
                "hits",
                "agg KB",
                "base KB",
                "bytes",
                "agg ms",
                "base ms",
                "time",
            ],
            [
                [
                    r["dataset"],
                    r["field"],
                    r["matched"],
                    f"{r['agg_bytes'] / 1024:.1f}",
                    f"{r['base_bytes'] / 1024:.1f}",
                    f"{r['bytes_ratio']:.3f}",
                    f"{r['agg_ms']:.1f}",
                    f"{r['base_ms']:.1f}",
                    f"{r['time_ratio']:.3f}",
                ]
                for r in rows
            ],
        )
    )

    for row in rows:
        # Correctness everywhere: identical counts, and a real aggregation
        # (an undiscovered field would vacuously "match" as empty).
        assert row["counts_equal"], row
        assert row["nonempty"], row
        # Ledger reconciliation: the per-query ledger charged exactly the
        # bytes the store-level counter saw leave storage.
        assert row["ledger_bytes"] == row["agg_bytes"], row

    gated = [r for r, (_, _, _, g) in zip(rows, WORKLOADS) if g]
    for row in gated:
        assert row["bytes_ratio"] <= BYTES_BAR, (
            f"{row['dataset']}: pushdown read {row['bytes_ratio']:.1%} of "
            f"baseline bytes (bar {BYTES_BAR:.0%})"
        )
        assert row["time_ratio"] <= TIME_BAR, (
            f"{row['dataset']}: pushdown took {row['time_ratio']:.1%} of "
            f"baseline time (bar {TIME_BAR:.0%})"
        )


def test_top_k_pushdown_latency():
    """top-k rides the same partials; it must not regress vs count-by."""
    spec = spec_by_name("Log A")
    lines = spec.generate(LINES)
    store = MemoryStore()
    LogGrep(store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)).compress(
        lines
    )

    best = float("inf")
    for _ in range(ROUNDS):
        lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES))
        start = time.perf_counter()
        top = lg.top_k("state", k=2, where="request")
        best = min(best, time.perf_counter() - start)

    base = float("inf")
    for _ in range(ROUNDS):
        lg = LogGrep(store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES))
        pattern = re.compile(r"state[:=](\S+)")
        start = time.perf_counter()
        hits = lg.grep("request").lines
        reference = Counter(
            m.group(1) for l in hits for m in [pattern.search(l)] if m
        ).most_common(2)
        base = min(base, time.perf_counter() - start)

    print_banner("aggregation: top-k latency")
    print(
        format_table(
            ["strategy", "ms", "result"],
            [
                ["pushdown top-k", f"{best * 1000:.1f}", str(top)],
                ["reconstruct+count", f"{base * 1000:.1f}", str(reference)],
            ],
        )
    )
    assert top == reference
    assert best <= base  # must not be slower than reconstructing
