"""Table 1 — the evaluation query of every dataset, executed on LogGrep.

Prints each dataset's query command with its hit count and verifies every
query against the reference evaluator (all five systems already agree —
see tests/test_baselines.py — so LG stands in for the lineup here)."""

from repro.baselines.evalutil import grep_lines
from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.report import format_table, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES
from repro.core.config import LogGrepConfig
from repro.workloads import all_specs


def test_table1_all_queries(benchmark, scale):
    specs = all_specs()
    corpora = {spec.name: spec.generate(max(scale // 2, 600)) for spec in specs}
    systems = {}
    for spec in specs:
        system = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
        system.ingest(corpora[spec.name])
        systems[spec.name] = system

    def run_all():
        return {
            spec.name: systems[spec.name].query(spec.query) for spec in specs
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for spec in specs:
        expected = grep_lines(spec.query, corpora[spec.name])
        got = results[spec.name]
        assert got == expected, spec.name
        assert got, f"{spec.name}: query returned nothing"
        rows.append([spec.name, str(len(got)), spec.query])
    print_banner("Table 1: query commands and hit counts")
    print(format_table(["dataset", "hits", "query"], rows))
