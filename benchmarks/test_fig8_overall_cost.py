"""Fig 8(a)/(b) — Equation 1 overall cost per system, production and
public suites.

Paper: LogGrep has the lowest overall cost on both suites (34%/34% of
ggrep, 36%/41% of CLP, 7%/5% of ES, 73%/74% of LG-SP), and the ES
breakeven query frequency is far above near-line usage."""

from repro.bench.figures import figure8
from repro.bench.report import cost_rows, print_banner, format_table, relative_costs
from repro.bench.runner import by_system, geomean
from repro.cost.model import breakeven_query_frequency


def _report(measurements, title):
    costs = figure8(measurements)
    print_banner(title)
    print(
        format_table(
            ["system", "storage $/TB", "compression $/TB", "query $/TB", "total $/TB"],
            cost_rows(costs),
        )
    )
    rel = relative_costs(costs)
    for system, value in rel.items():
        print(f"LG total cost = {value * 100:.0f}% of {system}")
    return costs, rel


def test_fig8a_production_cost(benchmark, production_measurements):
    costs, rel = benchmark.pedantic(
        lambda: _report(production_measurements, "Fig 8(a): overall cost, production logs"),
        rounds=1,
        iterations=1,
    )
    assert costs["LG"].total == min(c.total for c in costs.values())
    assert rel["ggrep"] < 0.8
    assert rel["CLP"] < 0.8
    assert rel["ES"] < 0.8
    assert rel["LG-SP"] < 1.0


def test_fig8b_public_cost(benchmark, public_measurements):
    costs, rel = benchmark.pedantic(
        lambda: _report(public_measurements, "Fig 8(b): overall cost, public logs"),
        rounds=1,
        iterations=1,
    )
    assert costs["LG"].total == min(c.total for c in costs.values())
    assert rel["ggrep"] < 0.9 and rel["CLP"] < 0.9


def test_es_breakeven_frequency(benchmark, production_measurements):
    """§6.1: on logs where ES queries are faster, ES only wins overall at
    query frequencies far above near-line usage (paper: 7,447-542,194)."""

    def compute():
        lg = {m.dataset: m for m in by_system(production_measurements)["LG"]}
        es = {m.dataset: m for m in by_system(production_measurements)["ES"]}
        frequencies = []
        for dataset, lg_m in lg.items():
            es_m = es.get(dataset)
            if es_m is None or es_m.query_latency_s >= lg_m.query_latency_s:
                continue
            from repro.cost.model import overall_cost

            lg_cost = overall_cost(
                lg_m.compression_ratio,
                lg_m.compression_speed_mb_s,
                lg_m.query_latency_s_per_tb,
            )
            es_cost = overall_cost(
                es_m.compression_ratio,
                es_m.compression_speed_mb_s,
                es_m.query_latency_s_per_tb,
            )
            freq = breakeven_query_frequency(
                lg_cost,
                lg_m.query_latency_s_per_tb,
                es_cost,
                es_m.query_latency_s_per_tb,
            )
            frequencies.append((dataset, freq))
        return frequencies

    frequencies = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_banner("§6.1: ES breakeven query frequency per log")
    for dataset, freq in frequencies:
        print(f"{dataset}: ES wins above {freq:,.0f} queries per retention period")
    # Every breakeven is far above the near-line default of 100 queries.
    for _, freq in frequencies:
        assert freq > 100
