"""Fig 7(b) / §6.2 — compression ratio across the five systems.

Paper shape: LogGrep highest everywhere; CLP below LogGrep; ES lowest
(sometimes below 1 — the index outweighs compression); LG-SP comparable
to LG (runtime patterns help on most logs, cost a little metadata on a
few)."""

import pytest

from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.figures import figure7_summary
from repro.bench.report import format_table, metric_rows, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES, SYSTEM_ORDER, by_system, geomean
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name


def _print_ratio(measurements, title):
    print_banner(title)
    print(
        format_table(
            ["dataset"] + list(SYSTEM_ORDER),
            metric_rows(measurements, "compression_ratio", ".1f"),
        )
    )


def _geo_ratio(measurements, system):
    return geomean([m.compression_ratio for m in by_system(measurements)[system]])


def test_fig7b_production_ratio_shape(benchmark, production_measurements):
    summary = benchmark.pedantic(
        lambda: figure7_summary(production_measurements), rounds=1, iterations=1
    )
    _print_ratio(production_measurements, "Fig 7(b): compression ratio, production logs")
    # Paper: 2.57x over gzip, 2.14x over CLP, 23x over ES.
    assert summary["ggrep"]["ratio_gain"] > 1.1
    assert summary["CLP"]["ratio_gain"] > 1.1
    assert summary["ES"]["ratio_gain"] > 3.0
    # LG-SP and LG comparable, LG a bit ahead on average.
    assert 0.9 < summary["LG-SP"]["ratio_gain"] < 2.0


def test_fig7b_public_ratio_shape(benchmark, public_measurements):
    summary = benchmark.pedantic(
        lambda: figure7_summary(public_measurements), rounds=1, iterations=1
    )
    _print_ratio(public_measurements, "§6.2: compression ratio, public logs")
    assert summary["ggrep"]["ratio_gain"] > 1.1
    assert summary["CLP"]["ratio_gain"] > 1.1
    assert summary["ES"]["ratio_gain"] > 3.0


def test_loggrep_highest_on_every_log(production_measurements, public_measurements, benchmark):
    def check():
        offenders = []
        for suite in (production_measurements, public_measurements):
            per_dataset = {}
            for m in suite:
                per_dataset.setdefault(m.dataset, {})[m.system] = m.compression_ratio
            for dataset, ratios in per_dataset.items():
                best = max(ratios, key=ratios.get)
                if best not in ("LG", "LG-SP"):
                    offenders.append((dataset, best))
        return offenders

    offenders = benchmark.pedantic(check, rounds=1, iterations=1)
    # Paper: LG has the highest ratio among ggrep/ES/CLP on ALL logs
    # (LG-SP is allowed to edge it out on a few — §6.1 says they are
    # comparable).
    assert not offenders, offenders


def test_compression_ratio_benchmark(benchmark, scale):
    """Time LogGrep compressing one representative dataset."""
    spec = spec_by_name("Log G")
    lines = spec.generate(scale)

    def compress():
        system = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
        system.ingest(list(lines))
        return system.compression_ratio()

    ratio = benchmark.pedantic(compress, rounds=3)
    assert ratio > 3.5
