"""Lazy ranged I/O vs eager whole-blob reads on Table 1's queries.

Runs every dataset's evaluation query through two readers over the same
corpus and compares bytes read off the store and wall time:

* **lazy** — the default reader: prune-index pruning (zero reads for
  pruned blocks), TOC-ranged box opens, capsule payloads fetched only
  when a plan touches them;
* **eager** — the pre-TOC behavior, reproduced by hiding ``get_range``
  behind a store wrapper: every surviving block costs one whole-blob
  read.

Lazy I/O pays off in proportion to *storage-level* selectivity: the
payload share of the groups the query actually hits.  Single-template
datasets (e.g. Log G) are inherently non-selective — any hit forces the
whole group's columns for reconstruction, so bytes read stay near the
blob size in both modes.  The acceptance bar therefore applies to the
**selective** queries, defined a priori from the workload: hit groups
hold at most a quarter of the archive's payload bytes.  Those queries
must read ≤ 25 % of the eager bytes in aggregate, with identical
results everywhere.

Both readers are measured on their second execution of the query (the
paper's §3 refining mode — repeated queries over the same archive), so
the executor-level match memo is warm on both sides.  Eager bytes are
unaffected by the warm-up — every query re-reads the whole blob — while
lazy mode additionally skips re-fetching capsules whose match outcome
is memoized.
"""

import time

from repro.baselines.evalutil import grep_lines
from repro.bench.report import format_table, print_banner
from repro.blockstore.store import MemoryStore
from repro.capsule.box import CapsuleBox, _capsules_of
from repro.core.config import LogGrepConfig
from repro.core.loggrep import LogGrep
from repro.obs import get_registry
from repro.workloads import all_specs

_READ_BYTES = get_registry().counter("loggrep_store_read_bytes_total")

#: A query is storage-selective when its hit groups hold at most this
#: payload share; the ≤ 25 % bytes-read bar applies to these queries.
SELECTIVE_SHARE = 0.25


class EagerStore:
    """Seed-behavior storage: whole-blob ``get`` only, no ranged reads."""

    def __init__(self, inner):
        self._inner = inner

    def put(self, name, data):
        self._inner.put(name, data)

    def get(self, name):
        return self._inner.get(name)

    def names(self):
        return self._inner.names()

    def exists(self, name):
        return self._inner.exists(name)

    def total_bytes(self):
        return self._inner.total_bytes()


def _hit_group_share(lg, lines, hits):
    """Payload share of the groups holding at least one hit line."""
    total = matched = 0
    for name in lg.store.names():
        box = CapsuleBox.deserialize(lg.store.get(name))
        for group in box.groups:
            size = sum(
                capsule.compressed_bytes
                for vector in group.vectors
                for capsule in _capsules_of(vector)
            )
            total += size
            if any(
                lines[i] in hits for i in group.line_ids if i < len(lines)
            ):
                matched += size
    return matched / total if total else 1.0


def _measure(lg, query):
    before = _READ_BYTES.value()
    start = time.perf_counter()
    lines = lg.grep(query).lines
    elapsed = time.perf_counter() - start
    return lines, _READ_BYTES.value() - before, elapsed


def test_lazy_vs_eager_bytes_read(benchmark, scale):
    specs = all_specs()
    corpora = {
        spec.name: spec.generate(max(scale * 2, 4000)) for spec in specs
    }
    systems = {}
    for spec in specs:
        lazy = LogGrep(store=MemoryStore(), config=LogGrepConfig())
        lazy.compress(corpora[spec.name])
        eager = LogGrep(
            store=EagerStore(MemoryStore()),
            config=LogGrepConfig(lazy_io=False, use_prune_index=False),
        )
        eager.compress(corpora[spec.name])
        systems[spec.name] = (lazy, eager)

    def run_lazy():
        return {
            spec.name: systems[spec.name][0].grep(spec.query).lines
            for spec in specs
        }

    benchmark.pedantic(run_lazy, rounds=1, iterations=1)

    # Warm the eager readers too, so both sides measure their second run.
    for spec in specs:
        systems[spec.name][1].grep(spec.query)

    rows = []
    sel_lazy = sel_eager = all_lazy = all_eager = 0
    lazy_ms = eager_ms = 0.0
    for spec in specs:
        lazy, eager = systems[spec.name]
        lines = corpora[spec.name]
        expected = grep_lines(spec.query, lines)
        share = _hit_group_share(lazy, lines, set(expected))
        lazy_lines, lazy_bytes, lazy_s = _measure(lazy, spec.query)
        eager_lines, eager_bytes, eager_s = _measure(eager, spec.query)
        assert lazy_lines == expected, spec.name
        assert eager_lines == expected, spec.name
        assert eager_bytes > 0, spec.name
        selective = share <= SELECTIVE_SHARE
        all_lazy += lazy_bytes
        all_eager += eager_bytes
        lazy_ms += lazy_s * 1000
        eager_ms += eager_s * 1000
        if selective:
            sel_lazy += lazy_bytes
            sel_eager += eager_bytes
        rows.append(
            [
                spec.name,
                f"{share:.3f}",
                "yes" if selective else "no",
                str(lazy_bytes),
                str(eager_bytes),
                f"{lazy_bytes / eager_bytes:.3f}",
            ]
        )
    overall = all_lazy / all_eager
    selective_ratio = sel_lazy / sel_eager
    rows.append(
        ["ALL", "", "", str(all_lazy), str(all_eager), f"{overall:.3f}"]
    )
    rows.append(
        [
            "SELECTIVE",
            f"<= {SELECTIVE_SHARE}",
            "yes",
            str(sel_lazy),
            str(sel_eager),
            f"{selective_ratio:.3f}",
        ]
    )
    print_banner("Lazy vs eager I/O on Table 1 (bytes read per query)")
    print(
        format_table(
            ["dataset", "hit share", "selective", "lazy B", "eager B", "ratio"],
            rows,
        )
    )
    print(
        f"query wall time: lazy {lazy_ms:.1f} ms, eager {eager_ms:.1f} ms "
        f"over {len(specs)} queries"
    )
    assert overall < 1.0, "lazy must never read more than eager overall"
    assert selective_ratio <= 0.25, (
        f"selective queries read {selective_ratio:.1%} of eager bytes"
    )
