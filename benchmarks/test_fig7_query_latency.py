"""Fig 7(a) / §6.2 — query latency across the five systems.

Regenerates the per-log latency series for the production and public
suites and checks the paper's shape: LogGrep an order of magnitude below
gzip+grep and CLP, comparable to ElasticSearch, and faster than LogGrep-SP.
"""

import pytest

from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.figures import figure7_summary
from repro.bench.report import format_table, latency_rows, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES, SYSTEM_ORDER
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name


def _print_latency(measurements, title):
    print_banner(title)
    print(format_table(["dataset"] + list(SYSTEM_ORDER), latency_rows(measurements)))
    summary = figure7_summary(measurements)
    for system, stats in summary.items():
        print(
            f"LG query latency is {stats['latency_vs_lg']:.1f}x lower than {system}"
        )
    return summary


def test_fig7a_production_latency_shape(benchmark, production_measurements):
    summary = benchmark.pedantic(
        lambda: figure7_summary(production_measurements), rounds=1, iterations=1
    )
    _print_latency(production_measurements, "Fig 7(a): query latency, production logs (ms)")
    # Paper: 30.6x vs ggrep, 35.7x vs CLP, ~comparable to ES, 10x vs LG-SP.
    assert summary["ggrep"]["latency_vs_lg"] > 2.0
    assert summary["CLP"]["latency_vs_lg"] > 2.0
    assert summary["LG-SP"]["latency_vs_lg"] > 1.0
    assert 0.1 < summary["ES"]["latency_vs_lg"] < 10.0  # "comparable"


def test_fig7a_public_latency_shape(benchmark, public_measurements):
    summary = benchmark.pedantic(
        lambda: figure7_summary(public_measurements), rounds=1, iterations=1
    )
    _print_latency(public_measurements, "§6.2: query latency, public logs (ms)")
    # Paper: 14.6x vs ggrep, 13.7x vs CLP.
    assert summary["ggrep"]["latency_vs_lg"] > 2.0
    assert summary["CLP"]["latency_vs_lg"] > 2.0


def test_log_u_exception(benchmark, production_measurements):
    """§6.1: Log U is the paper's noted exception — its variables have few
    runtime patterns, so full LogGrep cannot beat LogGrep-SP there the way
    it does elsewhere."""

    def ratios():
        per_dataset = {}
        for m in production_measurements:
            if m.system in ("LG", "LG-SP"):
                per_dataset.setdefault(m.dataset, {})[m.system] = m.query_latency_s
        return {
            dataset: values["LG-SP"] / values["LG"]
            for dataset, values in per_dataset.items()
            if len(values) == 2
        }

    speedups = benchmark.pedantic(ratios, rounds=1, iterations=1)
    log_u = speedups.pop("Log U")
    others = sum(speedups.values()) / len(speedups)
    print(f"LG-SP/LG latency on Log U: {log_u:.2f}x; other logs avg: {others:.2f}x")
    # Log U gains less from runtime patterns than the suite average.
    assert log_u < others
    # And elsewhere runtime patterns do help on average.
    assert others > 1.0


@pytest.mark.parametrize("dataset", ["Log A", "Log T", "Hdfs"])
def test_loggrep_query_benchmark(benchmark, dataset, scale):
    """Raw LogGrep query latency on representative datasets (direct mode,
    cold cache each round — the paper's measurement discipline)."""
    spec = spec_by_name(dataset)
    system = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
    system.ingest(spec.generate(scale))

    def run():
        return system.query(spec.query)

    hits = benchmark.pedantic(
        run,
        setup=lambda: system.loggrep.clear_query_cache(),
        rounds=5,
    )
    assert hits
