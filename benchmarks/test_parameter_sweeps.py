"""Design-choice sweeps: check the paper's fixed constants.

* §4.1: the 0.5 real/nominal threshold is claimed insensitive "as long as
  it is somewhere in the middle" — the middle of the sweep must be flat.
* §3: 5% sampling — more sampling buys little, much less costs accuracy.
* LZMA preset: the classic ratio/speed trade the paper's Packer makes.
* block size: bigger blocks amortize metadata (better ratio) but raise
  per-query work.
"""

from repro.bench.report import format_table, print_banner
from repro.bench.sweeps import (
    sweep_block_bytes,
    sweep_duplication_threshold,
    sweep_preset,
    sweep_sample_rate,
)
from repro.workloads import spec_by_name

SPECS = [spec_by_name(name) for name in ("Log B", "Log H", "Hdfs")]
HEADERS = ["value", "ratio", "speed", "query latency"]


def test_duplication_threshold_insensitive(benchmark, scale):
    points = benchmark.pedantic(
        lambda: sweep_duplication_threshold(SPECS, scale), rounds=1, iterations=1
    )
    print_banner("Sweep: duplication-rate threshold (§4.1 claims insensitivity)")
    print(format_table(HEADERS, [p.row() for p in points]))
    middle = [p for p in points if 0.25 <= float(p.value) <= 0.75]
    ratios = [p.compression_ratio for p in middle]
    latencies = [p.query_latency_s for p in middle]
    # The middle of the sweep is flat: ratios within 15%, latencies 3x.
    assert max(ratios) / min(ratios) < 1.15
    assert max(latencies) / min(latencies) < 3.0


def test_sample_rate_sweep(benchmark, scale):
    points = benchmark.pedantic(
        lambda: sweep_sample_rate(SPECS, scale), rounds=1, iterations=1
    )
    print_banner("Sweep: parser/extractor sampling rate (paper: 5%)")
    print(format_table(HEADERS, [p.row() for p in points]))
    by_rate = {float(p.value): p for p in points}
    # Full sampling compresses no better than 5% by a large margin —
    # sampling is nearly free in quality (why the paper can afford 5%).
    assert by_rate[1.0].compression_ratio < 1.25 * by_rate[0.05].compression_ratio


def test_preset_sweep(benchmark, scale):
    points = benchmark.pedantic(
        lambda: sweep_preset(SPECS, scale), rounds=1, iterations=1
    )
    print_banner("Sweep: LZMA preset (the Packer's ratio/speed trade)")
    print(format_table(HEADERS, [p.row() for p in points]))
    by_preset = {int(p.value): p for p in points}
    assert by_preset[9].compression_ratio >= by_preset[0].compression_ratio
    assert by_preset[0].compression_speed_mb_s > by_preset[9].compression_speed_mb_s


def test_block_size_sweep(benchmark, scale):
    points = benchmark.pedantic(
        lambda: sweep_block_bytes(SPECS, scale), rounds=1, iterations=1
    )
    print_banner("Sweep: log block size")
    print(format_table(HEADERS, [p.row() for p in points]))
    smallest, *_, biggest = points
    # Bigger blocks amortize templates/patterns: the ratio must not drop.
    assert biggest.compression_ratio >= 0.95 * smallest.compression_ratio
