"""Scan-kernel microbenchmark: bytes vs python on a large fixed column.

The tentpole claim of the byte-level kernels is that matching directly on
the padded payload (``bytes.find`` hops + alignment arithmetic) beats the
per-position python loop.  This benchmark packs a ≥64k-row fixed-width
column and asserts the bytes kernel is not slower than the python kernel
under the shipped engine default (Boyer–Moore, ``LogGrepConfig.engine``)
across the four modes.  The python kernel over the C ``native`` engine is
printed for context — there both paths are dominated by the same
``find`` calls and land at parity.
"""

import time

import pytest

from repro.capsule.capsule import Capsule
from repro.core.config import LogGrepConfig
from repro.query.matcher import search_capsule
from repro.query.modes import MatchMode

ROWS = 1 << 16  # 65 536

#: The engine the python kernel runs with in a default LogGrep.
DEFAULT_ENGINE = LogGrepConfig().query_settings().engine


@pytest.fixture(scope="module")
def column():
    # Realistic skew: mostly misses, a sprinkle of hits for "ERR".
    values = [
        f"ERR#{i % 997:03d}" if i % 41 == 0 else f"req{i % 9973:05d}"
        for i in range(ROWS)
    ]
    return Capsule.pack_fixed(values)


def _time_kernel(capsule, fragment, mode, kernel, engine="native", repeats=5):
    capsule.plain()  # decompress outside the timed region
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = search_capsule(capsule, fragment, mode, engine, kernel=kernel)
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.mark.parametrize("mode", list(MatchMode))
def test_bytes_kernel_not_slower(benchmark, column, mode):
    fragment = "ERR" if mode is not MatchMode.EXACT else "ERR#000"

    def measure():
        py_s, py_rows = _time_kernel(
            column, fragment, mode, "python", DEFAULT_ENGINE
        )
        nat_s, _ = _time_kernel(column, fragment, mode, "python", "native")
        by_s, by_rows = _time_kernel(column, fragment, mode, "bytes")
        assert set(by_rows) == set(py_rows)
        return py_s, nat_s, by_s

    py_s, nat_s, by_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"{mode.value:>9}: python/{DEFAULT_ENGINE} {py_s * 1e3:8.2f} ms, "
        f"python/native {nat_s * 1e3:7.2f} ms, bytes {by_s * 1e3:7.2f} ms "
        f"({py_s / by_s:6.1f}x vs default) over {ROWS} rows"
    )
    # "Not slower" with a small noise allowance against the shipped default.
    assert by_s <= py_s * 1.10
