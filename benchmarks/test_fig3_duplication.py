"""Fig 3 — distribution of single-/multi-pattern variable vectors with
respect to duplication rate.

Paper: vectors with low duplication rate are almost always single-pattern
(the assumption behind the tree-expanding extractor); high-duplication
vectors are a mix — hence pattern merging for those."""

from repro.bench.figures import figure3
from repro.bench.report import format_table, print_banner
from repro.workloads import all_specs


def test_fig3_distribution(benchmark, scale):
    buckets = benchmark.pedantic(
        lambda: figure3(all_specs(), max(scale // 2, 600)), rounds=1, iterations=1
    )
    print_banner("Fig 3: variable vectors by duplication rate")
    print(
        format_table(
            ["duplication rate", "single-pattern", "multi-pattern"],
            [[f"{b.low:.1f}-{b.high:.1f}", b.single, b.multi] for b in buckets],
        )
    )
    low_single = sum(b.single for b in buckets[:5])
    low_multi = sum(b.multi for b in buckets[:5])
    high_total = sum(b.single + b.multi for b in buckets[5:])
    print(
        f"below 0.5: {low_single} single vs {low_multi} multi; "
        f"at/above 0.5: {high_total} vectors (mixed)"
    )
    # The heuristic's premise: low-duplication vectors are dominated by a
    # single runtime pattern.
    assert low_single + low_multi > 0
    assert low_single >= 4 * max(low_multi, 1) or low_multi == 0
    # And there must be substantial mass on both sides (bathtub).
    assert high_total > 0
