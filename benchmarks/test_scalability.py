"""Scalability and parser-choice benchmarks (extensions).

* Query latency vs archive size: selective queries should grow *sub-
  linearly* in the raw size thanks to Capsule filtering (most added bytes
  are never decompressed), while gzip+grep grows linearly by construction.
* Parser families: the Drain-style miner vs the SLCT-style frequent-token
  miner — parser choice shifts ratio/latency but never correctness.
"""

from repro.baselines import GzipGrep, grep_lines
from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.report import format_table, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name

SIZES = (2000, 8000, 32000)


def test_latency_scaling_with_archive_size(benchmark):
    spec = spec_by_name("Log H")

    def measure():
        rows = []
        points = []
        for size in SIZES:
            lines = spec.generate(size)
            lg = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
            lg.ingest(lines)
            gg = GzipGrep(block_bytes=BENCH_BLOCK_BYTES)
            gg.ingest(lines)
            lg.loggrep.clear_query_cache()
            _, lg_seconds = lg.timed_query(spec.query)
            _, gg_seconds = gg.timed_query(spec.query)
            rows.append(
                [size, f"{lg_seconds * 1000:.1f}", f"{gg_seconds * 1000:.1f}"]
            )
            points.append((size, lg_seconds, gg_seconds))
        return rows, points

    rows, points = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_banner("Scaling: query latency vs dataset size")
    print(format_table(["lines", "LG (ms)", "ggrep (ms)"], rows))

    (s0, lg0, gg0), (_, _, _), (s2, lg2, gg2) = points
    growth = s2 / s0
    # ggrep is ~linear in raw bytes; LogGrep must grow strictly slower.
    assert gg2 / gg0 > 0.4 * growth
    assert lg2 / lg0 < gg2 / gg0
    # And LG stays an order of magnitude below ggrep at the largest size.
    assert lg2 * 3 < gg2


def test_parser_families(benchmark, scale):
    datasets = ["Log B", "Log H", "Hdfs", "Zookeeper"]

    def measure():
        rows = []
        for dataset in datasets:
            spec = spec_by_name(dataset)
            lines = spec.generate(scale)
            for parser in ("drain", "slct"):
                system = LogGrepSystem(
                    LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES, parser=parser)
                )
                system.ingest(lines)
                system.loggrep.clear_query_cache()
                hits, seconds = system.timed_query(spec.query)
                assert hits == grep_lines(spec.query, lines), (dataset, parser)
                rows.append(
                    [dataset, parser, f"{system.compression_ratio():.1f}x",
                     f"{seconds * 1000:.1f}ms"]
                )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_banner("Parser families: Drain-style vs SLCT-style")
    print(format_table(["dataset", "parser", "ratio", "query latency"], rows))
