"""§2.2 / §2.3 — how much stricter summaries get at each granularity.

Paper averages: log block 5.8 char types / 198.5 length variance;
variable vector 3.1 / 66.1; sub-variable vector 1.5 / 32.5.  The strict
ordering block > vector > sub-variable is the entire justification for
fine-grained Capsules."""

from repro.bench.figures import section23_stats
from repro.bench.report import format_table, print_banner
from repro.workloads import all_specs


def test_summary_strictness_ordering(benchmark, scale):
    stats = benchmark.pedantic(
        lambda: section23_stats(all_specs(), max(scale // 2, 600)),
        rounds=1,
        iterations=1,
    )
    print_banner("§2.2/§2.3: summary strictness by granularity")
    print(
        format_table(
            ["granularity", "char types (paper)", "measured", "len var (paper)", "measured"],
            [
                ["log block", "5.8", f"{stats.block_char_types:.2f}",
                 "198.5", f"{stats.block_length_variance:.1f}"],
                ["variable vector", "3.1", f"{stats.vector_char_types:.2f}",
                 "66.1", f"{stats.vector_length_variance:.1f}"],
                ["sub-variable vector", "1.5", f"{stats.subvar_char_types:.2f}",
                 "32.5", f"{stats.subvar_length_variance:.1f}"],
            ],
        )
    )
    assert stats.block_char_types > stats.vector_char_types > stats.subvar_char_types
    assert stats.block_length_variance > stats.vector_length_variance
    assert stats.vector_length_variance >= stats.subvar_length_variance
    # Blocks mix nearly everything (paper: 5.8 of 6 classes).
    assert stats.block_char_types > 4.0
    # Sub-variables are nearly single-class (paper: 1.5).
    assert stats.subvar_char_types < 3.0
