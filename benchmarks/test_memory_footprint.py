"""Memory footprint of compression and querying.

The paper's testbed had 188 GB of RAM; a reproduction should show that the
block-at-a-time design keeps both pipelines bounded: compression holds one
block's structures, and a selective query materializes only the Capsules
it actually opened."""

import tracemalloc

from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.report import format_table, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name


def _peak_mb(func) -> float:
    tracemalloc.start()
    func()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1e6


def test_memory_footprint(benchmark, scale):
    spec = spec_by_name("Log T")
    # Use a few MB so fixed overheads don't dominate the multiples.
    lines = spec.generate(scale * 4)
    raw_mb = sum(len(l) + 1 for l in lines) / 1e6

    def measure():
        system = LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES))
        compress_peak = _peak_mb(lambda: system.ingest(lines))
        system.loggrep.clear_query_cache()
        query_peak = _peak_mb(lambda: system.query(spec.query))
        return compress_peak, query_peak

    compress_peak, query_peak = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_banner("Memory footprint (tracemalloc peaks)")
    print(
        format_table(
            ["phase", "peak MB", "vs raw"],
            [
                ["raw dataset", f"{raw_mb:.1f}", "1.0x"],
                ["compress", f"{compress_peak:.1f}", f"{compress_peak / raw_mb:.1f}x"],
                ["query", f"{query_peak:.1f}", f"{query_peak / raw_mb:.2f}x"],
            ],
        )
    )
    # Compression is block-at-a-time: peak stays within a small multiple
    # of the raw input (which the harness itself holds in memory).
    assert compress_peak < 8 * raw_mb + 30
    # A selective query materializes far less than compression did.
    assert query_peak < 0.5 * compress_peak
    assert query_peak < 2 * raw_mb + 30
