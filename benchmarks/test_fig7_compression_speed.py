"""Fig 7(c) / §6.2 — compression speed across the five systems.

Paper shape: gzip fastest by an order of magnitude; CLP faster than
LogGrep; LogGrep faster than ElasticSearch; LG-SP slightly faster than LG
(runtime-pattern extraction costs extra CPU)."""

from repro.bench.figures import figure7_summary
from repro.bench.report import format_table, metric_rows, print_banner
from repro.bench.runner import SYSTEM_ORDER, by_system, geomean


def _print_speed(measurements, title):
    print_banner(title)
    print(
        format_table(
            ["dataset"] + list(SYSTEM_ORDER),
            metric_rows(measurements, "compression_speed_mb_s", ".2f"),
        )
    )


def _geo_speed(measurements, system):
    return geomean(
        [m.compression_speed_mb_s for m in by_system(measurements)[system]]
    )


def test_fig7c_production_speed_shape(benchmark, production_measurements):
    speeds = benchmark.pedantic(
        lambda: {s: _geo_speed(production_measurements, s) for s in SYSTEM_ORDER},
        rounds=1,
        iterations=1,
    )
    _print_speed(production_measurements, "Fig 7(c): compression speed, production logs (MB/s)")
    print({k: f"{v:.2f} MB/s" for k, v in speeds.items()})
    # gzip far ahead of everything else (paper: LG at 0.10x of gzip).
    assert speeds["ggrep"] > 3 * speeds["LG"]
    # ES the slowest ingester (paper: LG 8.3x faster than ES).
    assert speeds["LG"] > speeds["ES"]
    # LG-SP does strictly less work than LG per block.
    assert speeds["LG-SP"] >= 0.8 * speeds["LG"]


def test_fig7c_public_speed_shape(benchmark, public_measurements):
    speeds = benchmark.pedantic(
        lambda: {s: _geo_speed(public_measurements, s) for s in SYSTEM_ORDER},
        rounds=1,
        iterations=1,
    )
    _print_speed(public_measurements, "§6.2: compression speed, public logs (MB/s)")
    assert speeds["ggrep"] > 3 * speeds["LG"]
    assert speeds["LG"] > speeds["ES"]
