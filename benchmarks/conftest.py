"""Session-scoped measurements shared by all figure benchmarks.

``REPRO_SCALE`` (default 2000) sets the base lines per dataset; Log T is
``size_factor`` times bigger, like the paper's 964 GB outlier.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import base_lines, run_suite
from repro.workloads import production_specs, public_specs


@pytest.fixture(scope="session")
def scale() -> int:
    return base_lines()


@pytest.fixture(scope="session")
def production_measurements(scale):
    return run_suite(production_specs(), lines_per_spec=scale)


@pytest.fixture(scope="session")
def public_measurements(scale):
    return run_suite(public_specs(), lines_per_spec=scale)
