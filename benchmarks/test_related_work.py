"""§7 related work: compression-only methods vs LogGrep.

Paper: bucket-based and parser-based compressors "usually have a high
compression ratio, but to execute a query, one needs to decompress data
first".  This bench adds the Logzip-style and bucket-based systems next to
gzip+grep and LogGrep on a few datasets and checks that landscape."""

from repro.baselines import BucketCompressor, GzipGrep, LogZip
from repro.baselines.loggrep_system import LogGrepSystem
from repro.bench.report import format_table, print_banner
from repro.bench.runner import BENCH_BLOCK_BYTES, geomean
from repro.core.config import LogGrepConfig
from repro.workloads import spec_by_name

DATASETS = ["Log B", "Log H", "Hdfs"]

FACTORIES = {
    "ggrep": lambda: GzipGrep(block_bytes=BENCH_BLOCK_BYTES),
    "logzip": lambda: LogZip(block_bytes=BENCH_BLOCK_BYTES),
    "bucket": BucketCompressor,
    "LG": lambda: LogGrepSystem(LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES)),
}


def test_related_work_landscape(benchmark, scale):
    def run():
        rows = []
        ratios = {name: [] for name in FACTORIES}
        latencies = {name: [] for name in FACTORIES}
        for dataset in DATASETS:
            spec = spec_by_name(dataset)
            lines = spec.generate(scale)
            for name, factory in FACTORIES.items():
                system = factory()
                system.ingest(list(lines))
                _, seconds = system.timed_query(spec.query)
                ratios[name].append(system.compression_ratio())
                latencies[name].append(seconds)
                rows.append(
                    [dataset, name, f"{system.compression_ratio():.1f}x",
                     f"{seconds * 1000:.1f}ms"]
                )
        return rows, ratios, latencies

    rows, ratios, latencies = benchmark.pedantic(run, rounds=1, iterations=1)
    print_banner("§7 related work: compression-only methods")
    print(format_table(["dataset", "system", "ratio", "query latency"], rows))

    geo_ratio = {name: geomean(values) for name, values in ratios.items()}
    geo_latency = {name: geomean(values) for name, values in latencies.items()}
    # High ratio...
    assert geo_ratio["logzip"] > geo_ratio["ggrep"]
    assert geo_ratio["bucket"] > geo_ratio["ggrep"]
    # ...but decompress-everything queries, much slower than LogGrep.
    assert geo_latency["logzip"] > 2 * geo_latency["LG"]
    assert geo_latency["bucket"] > 2 * geo_latency["LG"]
