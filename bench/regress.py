#!/usr/bin/env python3
"""PR-10 benchmark regression ledger.

Runs the micro-benches and writes a ``BENCH_PR10.json`` regression ledger:

* **Fig-7 grep latency** — LogGrep vs gzip+grep on the Table-1 query of a
  few representative datasets.  The gated metric is the dimensionless
  speedup ``ggrep_over_lg`` (both sides timed in the same process, so the
  ratio travels across CI hosts, unlike absolute milliseconds).
* **Lazy-I/O** — bytes read off the store for one selective query under
  the default ranged reader vs eager whole-blob reads
  (``eager_over_lazy_bytes``; byte counts are exactly reproducible).
* **Aggregation pushdown** — ``agg count-by`` on a selective Table-1
  query vs the reconstruct-then-count baseline over the same store.  The
  PR-7 acceptance bars are hard-gated: pushdown must read ≤ 25 % of the
  baseline's bytes and take ≤ 50 % of its wall time, and the per-query
  ledger's ``read_bytes`` must reconcile exactly with the store's
  ``loggrep_store_range_read_bytes_total`` delta.

* **Cluster scatter/gather** (PR-8) — three hard-gated bars over a
  simulated object-store cluster: the Table-1 selective query must speed
  up ≥ 2x going from 1 to 4 shards; a count-by's partial gather must ship
  ≤ 30 % of the bytes line-shipping would; and with one replica straggling
  +200 ms per RPC, hedged-read p99 must stay within 1.5x of the
  no-straggler p99 (the un-hedged tail is recorded alongside).

* **Shared-scan batching** (PR-10) — three hard-gated bars on the batch
  executor and the predicate-fragment cache: eight concurrent Table-1
  queries over one Log A archive must read ≤ 40 % of the bytes and take
  ≤ 60 % of the wall time that running them sequentially does, a warm
  fragment-cache repeat of the selective query must be ≥ 3x faster than
  the cold first run, and the batched per-query hit counts must equal the
  sequential counts exactly.

* **Lifecycle** (PR-9) — three hard-gated bars on the hot tail and the
  tier engine: ingest-to-queryable latency (building the in-memory tail
  box) must stay within 1.2x of a plain single-block parse; cold-demoting
  several archives into one cross-archive shared template store must cost
  ≤ 85 % of the bytes that per-archive offline rewrites cost on a
  repeated-template workload; and a tail-inclusive grep must equal the
  post-flush grep byte for byte (lines and line ids).

It also asserts the PR-6 acceptance bar that per-query accounting stays
off the hot path: grep latency with the ledger enabled (slow-query
threshold armed) must be within ``--overhead-tolerance`` (default 3%) of
the same query with the default NULL ledger, min-of-rounds on both sides.

Exit status is non-zero when any gated ratio regresses by more than
``--tolerance`` (default 25%) against the checked-in ``bench/baseline.json``
or the overhead bar fails, so CI can gate on this script directly.

Usage::

    python bench/regress.py                       # compare vs baseline
    python bench/regress.py --update-baseline     # regenerate baseline.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.baselines.gzip_grep import GzipGrep  # noqa: E402
from repro.blockstore.store import MemoryStore  # noqa: E402
from repro.core.config import LogGrepConfig  # noqa: E402
from repro.core.loggrep import LogGrep  # noqa: E402
from repro.obs import get_registry  # noqa: E402
from repro.workloads import spec_by_name  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)

#: Representative Table-1 datasets: a production log whose query is
#: variable-selective, one with heavy runtime patterns, and a public log.
FIG7_DATASETS = ("Log A", "Log T", "Hdfs")

#: Small blocks so even the micro-bench corpus spans several blocks.
BLOCK_BYTES = 64 * 1024


def _build_loggrep(lines, **overrides):
    config = LogGrepConfig(block_bytes=BLOCK_BYTES, **overrides)
    lg = LogGrep(store=MemoryStore(), config=config)
    lg.compress(lines)
    return lg


def _timed_grep(lg, query, rounds):
    """Min-of-rounds wall time; the query cache is cleared before every
    round so each measurement exercises the full pipeline."""
    best = float("inf")
    hits = 0
    for _ in range(rounds):
        lg.clear_query_cache()
        start = time.perf_counter()
        result = lg.grep(query)
        best = min(best, time.perf_counter() - start)
        hits = result.count
    return best, hits


def bench_fig7(lines_per_spec, rounds):
    """Fig-7 grep latency: LG vs gzip+grep, per dataset."""
    out = {}
    for name in FIG7_DATASETS:
        spec = spec_by_name(name)
        lines = spec.generate(lines_per_spec)
        lg = _build_loggrep(lines)
        gg = GzipGrep(block_bytes=BLOCK_BYTES)
        gg.ingest(list(lines))
        lg_s, lg_hits = _timed_grep(lg, spec.query, rounds)
        gg_s = float("inf")
        for _ in range(rounds):
            _, elapsed = gg.timed_query(spec.query)
            gg_s = min(gg_s, elapsed)
        out[name] = {
            "query": spec.query,
            "hits": lg_hits,
            "lg_ms": round(lg_s * 1000, 3),
            "ggrep_ms": round(gg_s * 1000, 3),
            "ggrep_over_lg": round(gg_s / lg_s, 3),
        }
    return out


def bench_lazy_io(lines_per_spec):
    """Bytes off the store for one selective query: lazy vs eager."""
    spec = spec_by_name("Log A")
    lines = spec.generate(lines_per_spec)
    counter = get_registry().counter("loggrep_store_read_bytes_total")
    bytes_read = {}
    for mode, overrides in (("lazy", {}), ("eager", {"lazy_io": False})):
        lg = _build_loggrep(lines, **overrides)
        before = counter.value()
        hits = lg.grep(spec.query).count
        bytes_read[mode] = int(counter.value() - before)
    return {
        "query": spec.query,
        "hits": hits,
        "lazy_bytes": bytes_read["lazy"],
        "eager_bytes": bytes_read["eager"],
        "eager_over_lazy_bytes": round(
            bytes_read["eager"] / max(1, bytes_read["lazy"]), 3
        ),
    }


def bench_accounting_overhead(lines_per_spec, rounds):
    """Ledger-on vs ledger-off grep latency over one shared archive.

    The two configs share the compressed store so only the accounting
    differs; rounds are interleaved so drift hits both sides equally.
    """
    spec = spec_by_name("Log A")
    lines = spec.generate(lines_per_spec)
    plain = _build_loggrep(lines)
    # An armed (but unreachable) slow-query threshold activates the full
    # ledger machinery without emitting records or adding budget locks.
    ledgered = LogGrep(
        store=plain.store,
        config=LogGrepConfig(block_bytes=BLOCK_BYTES, slow_query_ms=1e15),
    )
    for lg in (plain, ledgered):  # warm caches on both sides
        lg.grep(spec.query)
    base = instrumented = float("inf")
    for _ in range(rounds):
        base = min(base, _timed_grep(plain, spec.query, 1)[0])
        instrumented = min(instrumented, _timed_grep(ledgered, spec.query, 1)[0])
    return {
        "query": spec.query,
        "base_ms": round(base * 1000, 3),
        "ledger_ms": round(instrumented * 1000, 3),
        "overhead_ratio": round(instrumented / base, 4),
    }


def bench_aggregation(lines_per_spec, rounds):
    """Pushdown count-by vs reconstruct-then-count on a selective query.

    Ratios are agg/baseline (lower is better), gated as hard bars rather
    than baseline-relative: bytes ≤ 0.25, wall time ≤ 0.50.  For the
    baseline-comparison ledger the inverted higher-is-better ratios are
    also reported.
    """
    import re
    from collections import Counter

    from repro.query.aggregate import AggregateSpec
    from repro.query.modes import AggregateKind

    spec = spec_by_name("Log A")
    field, where = "state", "request"
    lines = spec.generate(lines_per_spec)
    store = MemoryStore()
    LogGrep(
        store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
    ).compress(lines)
    range_counter = get_registry().counter("loggrep_store_range_read_bytes_total")
    pattern = re.compile(rf"{field}[:=](\S+)")

    agg_s = base_s = float("inf")
    for _ in range(rounds):
        agg_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        before = range_counter.value()
        start = time.perf_counter()
        result = agg_lg.aggregate(
            AggregateSpec(AggregateKind.COUNT_BY, field), where, analyze=True
        )
        agg_s = min(agg_s, time.perf_counter() - start)
        agg_bytes = int(range_counter.value() - before)
        ledger_bytes = result.ledger.totals().read_bytes

        base_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        before = range_counter.value()
        start = time.perf_counter()
        hits = base_lg.grep(where).lines
        base_counts = Counter(
            m.group(1) for line in hits for m in [pattern.search(line)] if m
        )
        base_s = min(base_s, time.perf_counter() - start)
        base_bytes = int(range_counter.value() - before)

    return {
        "dataset": spec.name,
        "field": field,
        "where": where,
        "matched": result.matched,
        "counts_equal": dict(result.value) == dict(base_counts),
        "agg_bytes": agg_bytes,
        "ledger_bytes": ledger_bytes,
        "baseline_bytes": base_bytes,
        "bytes_ratio": round(agg_bytes / max(1, base_bytes), 3),
        "agg_ms": round(agg_s * 1000, 3),
        "baseline_ms": round(base_s * 1000, 3),
        "time_ratio": round(agg_s / base_s, 3),
        "baseline_over_agg_bytes": round(base_bytes / max(1, agg_bytes), 3),
    }


def bench_cluster(lines_per_spec, rounds):
    """Scatter/gather over a simulated object store: shard scaling,
    partial-gather bytes and hedged straggler mitigation."""
    from repro.blockstore.remote import FaultProfile
    from repro.cluster import ClusterLogGrep, ScatterConfig

    spec = spec_by_name("Log A")
    lines = spec.generate(lines_per_spec)
    # Small blocks so the corpus shards across every node; 2 ms per store
    # request models object-store RTT (sleeps release the GIL, so shard
    # parallelism is genuine wall-clock parallelism).
    config = LogGrepConfig(block_bytes=8 * 1024)
    rtt = FaultProfile(latency_s=0.002)

    def timed_counts(cluster, n):
        samples = []
        hits = 0
        for _ in range(n):
            start = time.perf_counter()
            hits = cluster.count(spec.query)
            samples.append(time.perf_counter() - start)
        return samples, hits

    def p99(samples):
        ordered = sorted(samples)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    # --- shard-count scaling on the Table-1 selective query -----------
    scaling = {}
    for nodes in (1, 2, 4):
        scatter = ScatterConfig(fanout_concurrency=8, hedge=False)
        with ClusterLogGrep(
            nodes, replication=1, config=config,
            scatter=scatter, remote_profile=rtt,
        ) as cluster:
            cluster.compress(lines)
            samples, hits = timed_counts(cluster, rounds)
            scaling[str(nodes)] = {
                "ms": round(min(samples) * 1000, 3),
                "hits": hits,
                "blocks": len(cluster._placement),
            }
    speedup = scaling["1"]["ms"] / scaling["4"]["ms"]

    # --- partial gather vs line shipping (count-by on the same where) --
    with ClusterLogGrep(4, replication=2, config=config) as cluster:
        cluster.compress(lines)
        where = "request"
        grep_hits = cluster.grep(where).count
        line_bytes = sum(
            s.wire_bytes
            for s in cluster.last_report.shards
            if s.phase == "lines"
        )
        counts = cluster.count_by("state", where=where)
        partial_bytes = cluster.last_report.wire_bytes
    single = _build_loggrep(lines)
    counts_equal = counts == single.count_by("state", where=where)
    bytes_ratio = partial_bytes / max(1, line_bytes)

    # --- straggler mitigation: hedged vs un-hedged tail ----------------
    registry = get_registry()
    wins_counter = registry.counter("loggrep_cluster_hedge_wins_total")
    straggle_s = 0.200
    # Fan out only as wide as the cluster: wider floods the single-slot
    # nodes with queueing that the latency tracker would mistake for slow
    # replicas.  The hedge delay is the adaptive p95 of observed shard
    # latencies — the headline tail-at-scale mechanism under test.
    hedge_scatter = ScatterConfig(
        fanout_concurrency=4,
        hedge=True,
        shard_deadline_s=None,
    )
    tail_rounds = max(rounds * 3, 15)
    with ClusterLogGrep(
        4, replication=2, config=config,
        scatter=hedge_scatter, remote_profile=rtt,
    ) as cluster:
        cluster.compress(lines)
        timed_counts(cluster, 2)  # warm both replicas' path
        base_samples, _ = timed_counts(cluster, tail_rounds)
        straggler = cluster._placement[sorted(cluster._placement)[0]][0]
        cluster.set_straggler(straggler, straggle_s)
        wins_before = wins_counter.value()
        hedged_samples, hedged_hits = timed_counts(cluster, tail_rounds)
        hedge_wins = int(wins_counter.value() - wins_before)
    no_hedge_scatter = ScatterConfig(
        fanout_concurrency=4, hedge=False, shard_deadline_s=None
    )
    with ClusterLogGrep(
        4, replication=2, config=config,
        scatter=no_hedge_scatter, remote_profile=rtt,
    ) as cluster:
        cluster.compress(lines)
        straggler = cluster._placement[sorted(cluster._placement)[0]][0]
        cluster.set_straggler(straggler, straggle_s)
        unhedged_samples, _ = timed_counts(cluster, max(rounds, 5))

    no_straggler_p99 = p99(base_samples)
    hedged_p99 = p99(hedged_samples)
    unhedged_p99 = p99(unhedged_samples)
    return {
        "dataset": spec.name,
        "query": spec.query,
        "scaling": scaling,
        "speedup_1_to_4": round(speedup, 3),
        "counts_equal": counts_equal,
        "grep_hits": grep_hits,
        "line_bytes": line_bytes,
        "partial_bytes": partial_bytes,
        "partial_over_line_bytes": round(bytes_ratio, 3),
        "line_over_partial_bytes": round(
            line_bytes / max(1, partial_bytes), 3
        ),
        "straggle_ms": straggle_s * 1000,
        "no_straggler_p99_ms": round(no_straggler_p99 * 1000, 3),
        "hedged_p99_ms": round(hedged_p99 * 1000, 3),
        "unhedged_p99_ms": round(unhedged_p99 * 1000, 3),
        "hedged_over_clean_p99": round(
            hedged_p99 / max(1e-9, no_straggler_p99), 3
        ),
        "hedge_wins": hedge_wins,
        "hedged_hits": hedged_hits,
    }


def bench_lifecycle(lines_per_spec, rounds):
    """PR-9 lifecycle bars: ingest-to-queryable latency, cross-archive
    shared-store dedup, and tail/flush query equivalence."""
    import random

    from repro.blockstore.block import LogBlock
    from repro.blockstore.shared import SharedTemplateStore
    from repro.core.compressor import parse_block
    from repro.core.lifecycle import LifecycleManager, Tier, archive_offline
    from repro.core.streaming import StreamingCompressor
    from repro.staticparse.cache import TemplateCache

    spec = spec_by_name("Log A")
    lines = spec.generate(lines_per_spec)
    config = LogGrepConfig(block_bytes=BLOCK_BYTES)

    # --- ingest-to-queryable vs a plain single-block parse -------------
    # One block's worth of lines held in the append buffer: the tail box
    # build (cheap parse + speed-tier encode) is what stands between
    # append() returning and the line being grep-able.
    block_lines = []
    budget = BLOCK_BYTES - 1024
    for line in lines:
        budget -= len(line) + 1
        if budget <= 0:
            break
        block_lines.append(line)
    parse_s = float("inf")
    for _ in range(rounds):
        block = LogBlock(0, 0, list(block_lines))
        start = time.perf_counter()
        parse_block(block, config, TemplateCache())
        parse_s = min(parse_s, time.perf_counter() - start)
    tail_s = float("inf")
    with StreamingCompressor(config=config) as stream:
        # Steady state: earlier sealed blocks have already warmed the
        # shared template cache, exactly as they would mid-ingest; the
        # measured cost is rebuilding the tail box after an append.
        stream.extend(lines)
        stream.flush()
        stream.extend(block_lines)
        for _ in range(rounds):
            stream._tail_boxes.clear()
            start = time.perf_counter()
            stream._tail_box(stream.tail_snapshot())
            tail_s = min(tail_s, time.perf_counter() - start)

    # --- cross-archive dedup on a repeated-template workload -----------
    # Several archives of the same service emit the same templates and
    # the same low-cardinality (but individually large) dictionary
    # values; per-archive offline rewrites store those dictionaries once
    # per archive, the shared store stores them once, period.
    rng = random.Random(7)
    values = ["req-%024x" % rng.getrandbits(96) for _ in range(120)]
    repeated = [
        f"T{1000 + i % 40} handler state: {values[rng.randrange(120)]} ok"
        for i in range(lines_per_spec)
    ]
    archives = 3
    offline_bytes = 0
    for _ in range(archives):
        _, report = archive_offline(_build_loggrep(repeated))
        offline_bytes += report.offline_bytes
    shared = SharedTemplateStore(MemoryStore())
    shared_bytes = 0
    for _ in range(archives):
        lg = _build_loggrep(repeated)
        LifecycleManager(lg.store, lg.config, shared=shared).demote(Tier.COLD)
        shared_bytes += lg.storage_bytes()
    shared_bytes += shared.total_bytes()

    # --- tail grep ≡ post-flush grep ------------------------------------
    with StreamingCompressor(
        config=LogGrepConfig(block_bytes=8 * 1024)
    ) as stream:
        reader = stream.open_reader(tail=True)
        stream.extend(lines)
        tail_result = reader.grep(spec.query)
        stream.flush()
        sealed_result = stream.open_reader().grep(spec.query)
        tail_equiv = (
            tail_result.lines == sealed_result.lines
            and tail_result.line_ids == sealed_result.line_ids
        )

    return {
        "dataset": spec.name,
        "query": spec.query,
        "parse_ms": round(parse_s * 1000, 3),
        "visible_ms": round(tail_s * 1000, 3),
        "visible_over_parse": round(tail_s / parse_s, 3),
        "parse_over_visible": round(parse_s / max(1e-9, tail_s), 3),
        "archives": archives,
        "offline_bytes": offline_bytes,
        "shared_bytes": shared_bytes,
        "shared_over_offline_bytes": round(
            shared_bytes / max(1, offline_bytes), 3
        ),
        "offline_over_shared_bytes": round(
            offline_bytes / max(1, shared_bytes), 3
        ),
        "tail_hits": tail_result.count,
        "tail_equiv": tail_equiv,
    }


def bench_batch(lines_per_spec, rounds):
    """PR-10 shared-scan bars: a batch of 8 concurrent Table-1 queries
    over one Log A archive vs running the same 8 sequentially, plus the
    warm fragment-cache repeat of the selective incident query.

    Bytes are exactly reproducible (range-read counter deltas); the wall
    times are min-of-rounds with a fresh handle per round so neither side
    inherits the other's warm caches.
    """
    spec = spec_by_name("Log A")
    lines = spec.generate(lines_per_spec)
    store = MemoryStore()
    LogGrep(
        store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
    ).compress(lines)
    # Eight concurrent Table-1-style queries an incident triage fans out:
    # the headline query plus selective refinements over the same fields,
    # so most of the per-query cost is the shared block work (prune,
    # load, locate) rather than reconstruction both sides pay alike.
    queries = [
        spec.query,
        "ERROR and state:REQ_ST_CLOSED",
        "ERROR and code:20012",
        "reqId:5E9D21AD5E473938",
        "WARNING and state:REQ_ST_ABORT",
        "ERROR and state:REQ_ST_ABORT",
        "ERROR and accept conn",
        "WARNING and code:20012",
    ]
    range_counter = get_registry().counter(
        "loggrep_store_range_read_bytes_total"
    )
    loads_counter = get_registry().counter(
        "loggrep_batch_shared_block_loads_total"
    )

    seq_s = batch_s = float("inf")
    for _ in range(rounds):
        seq_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        before = range_counter.value()
        start = time.perf_counter()
        seq_hits = [seq_lg.grep(q).count for q in queries]
        seq_s = min(seq_s, time.perf_counter() - start)
        seq_bytes = int(range_counter.value() - before)

        batch_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        before = range_counter.value()
        loads_before = loads_counter.value()
        start = time.perf_counter()
        results = batch_lg.grep_many(queries)
        batch_s = min(batch_s, time.perf_counter() - start)
        batch_bytes = int(range_counter.value() - before)
        shared_loads = int(loads_counter.value() - loads_before)
        batch_hits = [result.count for result in results]

    # Warm fragment-cache repeat: the same selective query again on the
    # same handle resolves every block from cached fragments (COUNT never
    # reopens a box), vs the cold first run on a fresh handle.
    cold_s = warm_s = float("inf")
    for _ in range(rounds):
        warm_lg = LogGrep(
            store=store, config=LogGrepConfig(block_bytes=BLOCK_BYTES)
        )
        start = time.perf_counter()
        cold_count = warm_lg.count_many([spec.query])[0]
        cold_s = min(cold_s, time.perf_counter() - start)
        for _ in range(3):
            start = time.perf_counter()
            warm_count = warm_lg.count_many([spec.query])[0]
            warm_s = min(warm_s, time.perf_counter() - start)

    return {
        "dataset": spec.name,
        "queries": len(queries),
        "selective_query": spec.query,
        "hits_equal": batch_hits == seq_hits,
        "batch_hits": batch_hits,
        "seq_bytes": seq_bytes,
        "batch_bytes": batch_bytes,
        "bytes_ratio": round(batch_bytes / max(1, seq_bytes), 3),
        "seq_over_batch_bytes": round(seq_bytes / max(1, batch_bytes), 3),
        "seq_ms": round(seq_s * 1000, 3),
        "batch_ms": round(batch_s * 1000, 3),
        "time_ratio": round(batch_s / max(1e-9, seq_s), 3),
        "shared_block_loads": shared_loads,
        "cold_count": cold_count,
        "warm_count": warm_count,
        "cold_ms": round(cold_s * 1000, 3),
        "warm_ms": round(warm_s * 1000, 3),
        "warm_speedup": round(cold_s / max(1e-9, warm_s), 3),
    }


def gated_metrics(results):
    """The dimensionless higher-is-better ratios compared vs baseline."""
    out = {}
    for name, row in results["fig7"].items():
        out[f"fig7/{name}/ggrep_over_lg"] = row["ggrep_over_lg"]
    out["lazy_io/eager_over_lazy_bytes"] = results["lazy_io"][
        "eager_over_lazy_bytes"
    ]
    out["aggregation/baseline_over_agg_bytes"] = results["aggregation"][
        "baseline_over_agg_bytes"
    ]
    out["cluster/speedup_1_to_4"] = results["cluster"]["speedup_1_to_4"]
    out["cluster/line_over_partial_bytes"] = results["cluster"][
        "line_over_partial_bytes"
    ]
    # parse_over_visible is deliberately NOT a baseline-gated ratio: both
    # sides are millisecond-scale timings, so the ±25% band flaps on a
    # loaded runner.  The hard bar (visible ≤ 1.2x parse, checked in
    # main()) is the acceptance criterion and has real margin.
    out["lifecycle/offline_over_shared_bytes"] = results["lifecycle"][
        "offline_over_shared_bytes"
    ]
    # warm_speedup and the batch time ratio are deliberately NOT
    # baseline-gated for the same loaded-runner reason; the byte ratio is
    # exact, so it travels.
    out["batch/seq_over_batch_bytes"] = results["batch"][
        "seq_over_batch_bytes"
    ]
    return out


def compare(results, baseline, tolerance):
    """Return a list of human-readable regression failures."""
    failures = []
    current = gated_metrics(results)
    for key, base_value in baseline.items():
        now = current.get(key)
        if now is None:
            failures.append(f"{key}: missing from this run (baseline {base_value})")
            continue
        floor = base_value / (1.0 + tolerance)
        if now < floor:
            failures.append(
                f"{key}: {now:.3f} is a >{tolerance:.0%} regression vs "
                f"baseline {base_value:.3f} (floor {floor:.3f})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--lines", type=int, default=3000,
        help="base lines per dataset (default: 3000)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5,
        help="timing rounds, min taken (default: 5)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional regression vs baseline (default: 0.25)",
    )
    parser.add_argument(
        "--overhead-tolerance", type=float, default=1.03,
        help="max ledger-on/ledger-off latency ratio (default: 1.03)",
    )
    parser.add_argument(
        "--out", default=os.path.join(REPO, "BENCH_PR10.json"),
        help="result ledger path (default: BENCH_PR10.json at the repo root)",
    )
    parser.add_argument(
        "--agg-bytes-bar", type=float, default=0.25,
        help="max pushdown/baseline bytes ratio for count-by (default: 0.25)",
    )
    parser.add_argument(
        "--agg-time-bar", type=float, default=0.50,
        help="max pushdown/baseline wall-time ratio for count-by (default: 0.50)",
    )
    parser.add_argument(
        "--cluster-speedup-bar", type=float, default=2.0,
        help="min 1-to-4-shard speedup on the selective query (default: 2.0)",
    )
    parser.add_argument(
        "--cluster-bytes-bar", type=float, default=0.30,
        help="max partial-gather/line-shipping bytes ratio (default: 0.30)",
    )
    parser.add_argument(
        "--cluster-hedge-bar", type=float, default=1.5,
        help="max hedged-p99/no-straggler-p99 ratio with one +200ms "
        "replica (default: 1.5)",
    )
    parser.add_argument(
        "--visible-bar", type=float, default=1.2,
        help="max tail-build/single-block-parse latency ratio (default: 1.2)",
    )
    parser.add_argument(
        "--batch-bytes-bar", type=float, default=0.40,
        help="max batched/sequential bytes ratio for the 8-query batch "
        "(default: 0.40)",
    )
    parser.add_argument(
        "--batch-time-bar", type=float, default=0.60,
        help="max batched/sequential wall-time ratio for the 8-query "
        "batch (default: 0.60)",
    )
    parser.add_argument(
        "--warm-speedup-bar", type=float, default=3.0,
        help="min cold/warm speedup for the fragment-cache repeat of the "
        "selective query (default: 3.0)",
    )
    parser.add_argument(
        "--shared-bytes-bar", type=float, default=0.85,
        help="max shared-cold/per-archive-offline bytes ratio on the "
        "repeated-template workload (default: 0.85)",
    )
    parser.add_argument(
        "--baseline", default=os.path.join(HERE, "baseline.json"),
        help="checked-in baseline path (default: bench/baseline.json)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from this run instead of comparing",
    )
    args = parser.parse_args(argv)

    results = {
        "bench": "PR10 shared-scan batching + predicate-fragment cache",
        "lines_per_spec": args.lines,
        "rounds": args.rounds,
        "fig7": bench_fig7(args.lines, args.rounds),
        "lazy_io": bench_lazy_io(args.lines),
        "aggregation": bench_aggregation(args.lines, args.rounds),
        "cluster": bench_cluster(args.lines, args.rounds),
        "lifecycle": bench_lifecycle(args.lines, args.rounds),
        "batch": bench_batch(args.lines, args.rounds),
        # The overhead bar is the tightest gate (3%), so it gets triple
        # rounds: min-of-rounds on both sides needs the extra samples to
        # stay under the noise floor of shared CI runners.
        "accounting_overhead": bench_accounting_overhead(
            args.lines, max(3 * args.rounds, 9)
        ),
    }

    failures = []
    overhead = results["accounting_overhead"]["overhead_ratio"]
    if overhead > args.overhead_tolerance:
        failures.append(
            f"accounting overhead {overhead:.4f} exceeds the "
            f"{args.overhead_tolerance:.2f} bar (ledger not off the hot path)"
        )

    agg = results["aggregation"]
    if not agg["counts_equal"]:
        failures.append("aggregation: pushdown counts diverge from the baseline")
    if agg["ledger_bytes"] != agg["agg_bytes"]:
        failures.append(
            f"aggregation: ledger read_bytes {agg['ledger_bytes']} does not "
            f"reconcile with loggrep_store_range_read_bytes_total delta "
            f"{agg['agg_bytes']}"
        )
    if agg["bytes_ratio"] > args.agg_bytes_bar:
        failures.append(
            f"aggregation: pushdown read {agg['bytes_ratio']:.1%} of baseline "
            f"bytes (bar {args.agg_bytes_bar:.0%})"
        )
    if agg["time_ratio"] > args.agg_time_bar:
        failures.append(
            f"aggregation: pushdown took {agg['time_ratio']:.1%} of baseline "
            f"wall time (bar {args.agg_time_bar:.0%})"
        )

    cluster = results["cluster"]
    if not cluster["counts_equal"]:
        failures.append("cluster: gathered count-by diverges from single-node")
    if cluster["speedup_1_to_4"] < args.cluster_speedup_bar:
        failures.append(
            f"cluster: 1->4 shard speedup {cluster['speedup_1_to_4']:.2f}x "
            f"is under the {args.cluster_speedup_bar:.1f}x bar"
        )
    if cluster["partial_over_line_bytes"] > args.cluster_bytes_bar:
        failures.append(
            f"cluster: partial gather shipped "
            f"{cluster['partial_over_line_bytes']:.1%} of line-shipping "
            f"bytes (bar {args.cluster_bytes_bar:.0%})"
        )
    if cluster["hedged_over_clean_p99"] > args.cluster_hedge_bar:
        failures.append(
            f"cluster: hedged p99 is {cluster['hedged_over_clean_p99']:.2f}x "
            f"the no-straggler p99 (bar {args.cluster_hedge_bar:.1f}x) — "
            f"hedging is not hiding the +{cluster['straggle_ms']:.0f}ms replica"
        )

    lifecycle = results["lifecycle"]
    if not lifecycle["tail_equiv"]:
        failures.append(
            "lifecycle: tail-inclusive grep diverges from the post-flush grep"
        )
    if lifecycle["visible_over_parse"] > args.visible_bar:
        failures.append(
            f"lifecycle: ingest-to-queryable is "
            f"{lifecycle['visible_over_parse']:.2f}x a single-block parse "
            f"(bar {args.visible_bar:.1f}x)"
        )
    if lifecycle["shared_over_offline_bytes"] > args.shared_bytes_bar:
        failures.append(
            f"lifecycle: shared cold storage is "
            f"{lifecycle['shared_over_offline_bytes']:.1%} of per-archive "
            f"offline bytes (bar {args.shared_bytes_bar:.0%})"
        )

    batch = results["batch"]
    if not batch["hits_equal"]:
        failures.append(
            "batch: batched per-query hit counts diverge from sequential"
        )
    if batch["bytes_ratio"] > args.batch_bytes_bar:
        failures.append(
            f"batch: batched execution read {batch['bytes_ratio']:.1%} of "
            f"sequential bytes (bar {args.batch_bytes_bar:.0%})"
        )
    if batch["time_ratio"] > args.batch_time_bar:
        failures.append(
            f"batch: batched execution took {batch['time_ratio']:.1%} of "
            f"sequential wall time (bar {args.batch_time_bar:.0%})"
        )
    if batch["warm_speedup"] < args.warm_speedup_bar:
        failures.append(
            f"batch: warm fragment-cache repeat is only "
            f"{batch['warm_speedup']:.2f}x the cold run "
            f"(bar {args.warm_speedup_bar:.1f}x)"
        )

    if args.update_baseline:
        with open(args.baseline, "w", encoding="utf-8") as fh:
            json.dump(gated_metrics(results), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"baseline rewritten: {args.baseline}")
    elif os.path.exists(args.baseline):
        with open(args.baseline, "r", encoding="utf-8") as fh:
            failures.extend(compare(results, json.load(fh), args.tolerance))
    else:
        failures.append(f"no baseline at {args.baseline} (run --update-baseline)")

    results["failures"] = failures
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(json.dumps(results, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("benchmark regression ledger: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
