"""Command-line interface: ``loggrep compress/grep/stats/metrics/report``.

Examples::

    loggrep compress app.log -a /tmp/archive
    loggrep compress app.log -a /tmp/archive -j 4 --executor process
    loggrep grep -a /tmp/archive "ERROR AND dst:11.8.* NOT state:503"
    loggrep grep -a /tmp/archive ERROR --trace       # span tree to stderr
    loggrep stats -a /tmp/archive --json
    loggrep metrics -a /tmp/archive -q ERROR         # Prometheus text format
    loggrep report            # regenerate EXPERIMENTS.md (slow)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .blockstore.store import ArchiveStore
from .core.config import LogGrepConfig
from .core.loggrep import LogGrep


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loggrep",
        description="LogGrep (EuroSys '23 reproduction): compress logs and "
        "run grep-like queries on the compressed archive.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser("compress", help="compress a log file into an archive")
    compress.add_argument("input", help="raw log file (one entry per line)")
    compress.add_argument("-a", "--archive", required=True, help="archive directory")
    compress.add_argument(
        "--block-bytes", type=int, default=LogGrepConfig.block_bytes,
        help="log block size in bytes (default: 64 MiB)",
    )
    compress.add_argument(
        "--preset", type=int, default=1, choices=range(10),
        help="LZMA preset for Capsule payloads",
    )
    compress.add_argument(
        "-j", "--parallelism", type=int, default=None, metavar="N",
        help="encode blocks on an N-worker pool (default: serial; archives "
        "are byte-identical for any N)",
    )
    compress.add_argument(
        "--executor", choices=("thread", "process"), default=None,
        help="worker pool kind for -j: threads overlap LZMA, processes "
        "sidestep the GIL for the encoding loops (default: thread)",
    )
    compress.add_argument(
        "--tier", choices=("hot", "warm", "cold"), default=None,
        help="compress at a lifecycle tier's config: hot = speed-tier "
        "codec, warm = archive default, cold = offline preset with 4x "
        "merged blocks",
    )

    grep = sub.add_parser("grep", help="query a compressed archive")
    grep.add_argument(
        "query", nargs="?", default=None,
        help='e.g. "ERROR AND dst:11.8.* NOT state:503"',
    )
    grep.add_argument(
        "--batch-file", metavar="PATH",
        help="run every query in PATH (one per line, # comments) as one "
        "shared-scan batch: each block is opened once for all queries "
        "and every distinct term is matched once; output is grouped per "
        "query",
    )
    grep.add_argument("-a", "--archive", required=True, help="archive directory")
    grep.add_argument("-c", "--count", action="store_true", help="print only the hit count")
    grep.add_argument("-i", "--ignore-case", action="store_true", help="case-insensitive match")
    grep.add_argument("--stats", action="store_true", help="print execution statistics")
    grep.add_argument(
        "--json", action="store_true",
        help="with --stats: emit the statistics as JSON (stderr)",
    )
    grep.add_argument(
        "--trace", action="store_true",
        help="trace the query and print the span tree with per-stage "
        "percentages to stderr",
    )
    grep.add_argument(
        "--trace-out", metavar="PATH",
        help="trace the query and write a Chrome trace-event JSON file to "
        "PATH (viewable in chrome://tracing or ui.perfetto.dev)",
    )
    grep.add_argument(
        "--analyze", action="store_true",
        help="EXPLAIN ANALYZE: execute the query with the per-query "
        "resource ledger and print the per-operator table to stderr",
    )
    grep.add_argument(
        "-j", "--parallelism", type=int, default=1, metavar="N",
        help="query blocks on an N-thread pool (default: 1, serial)",
    )
    grep.add_argument(
        "--scan-kernel", choices=("bytes", "python"), default=None,
        help="capsule matching kernel: direct byte-level scanning (default) "
        "or the original per-position python path",
    )
    grep.add_argument(
        "--eager-io", action="store_true",
        help="read whole block blobs instead of lazy ranged reads "
        "(the differential oracle; equivalent to LOGGREP_LAZY_IO=0)",
    )
    grep.add_argument(
        "--mmap", action="store_true",
        help="serve ranged reads from memory-mapped blobs",
    )
    grep.add_argument(
        "--from", dest="from_time", metavar="TIME",
        help='start of the time window ("2024-01-01 00:00:00" or epoch '
        "seconds); blocks wholly before it are pruned without any read",
    )
    grep.add_argument(
        "--to", dest="to_time", metavar="TIME",
        help="end of the time window (same formats as --from)",
    )
    grep.add_argument(
        "--templates", metavar="DIR",
        help="shared template store directory (needed to read cold-tier "
        "archives that were demoted with cross-archive dedup and not "
        "exported self-contained)",
    )

    stats = sub.add_parser("stats", help="show archive statistics")
    stats.add_argument("-a", "--archive", required=True, help="archive directory")
    stats.add_argument("--json", action="store_true", help="emit JSON instead of text")

    metrics = sub.add_parser(
        "metrics", help="dump the process metrics registry (Prometheus or JSON)"
    )
    metrics.add_argument("-a", "--archive", required=True, help="archive directory")
    metrics.add_argument(
        "--format", choices=("prom", "prometheus", "json"), default="prometheus",
        help="export format (default: prometheus text format; "
        '"prom" is an alias)',
    )
    metrics.add_argument(
        "-q", "--query", metavar="QUERY",
        help="run this query first so query metrics are populated",
    )
    metrics.add_argument(
        "--reset", action="store_true",
        help="zero every metric after printing (fresh baseline for the "
        "next in-process reading)",
    )

    analyze = sub.add_parser(
        "analyze", help="structure-based aggregation without reconstruction"
    )
    analyze.add_argument("-a", "--archive", required=True, help="archive directory")
    analyze.add_argument("--fields", action="store_true", help="list discovered fields")
    analyze.add_argument("--count-by", metavar="FIELD", help="value histogram of a field")
    analyze.add_argument("--stats-of", metavar="FIELD", help="numeric summary of a field")
    analyze.add_argument("--top", type=int, default=20, help="rows to print (default 20)")
    analyze.add_argument("-w", "--where", help="optional query filter")

    agg = sub.add_parser(
        "agg",
        help="pushed-down aggregation: GROUP BY / top-k / stats / timeseries "
        "without reconstructing lines",
    )
    agg.add_argument(
        "kind",
        choices=("count-by", "top-k", "stats", "timeseries", "count-templates"),
        help="aggregate to run",
    )
    agg.add_argument(
        "field", nargs="?",
        help="field to aggregate (required for count-by/top-k/stats)",
    )
    agg.add_argument("-a", "--archive", required=True, help="archive directory")
    agg.add_argument("-w", "--where", help="optional query filter (WHERE clause)")
    agg.add_argument(
        "-k", "--top", type=int, default=10, metavar="K",
        help="rows for top-k / rows printed for count-by (default 10)",
    )
    agg.add_argument(
        "--buckets", type=int, default=20,
        help="bucket count for timeseries (default 20)",
    )
    agg.add_argument("-i", "--ignore-case", action="store_true")
    agg.add_argument(
        "-j", "--parallelism", type=int, default=1, metavar="N",
        help="aggregate blocks on an N-thread pool (default: 1, serial)",
    )
    agg.add_argument(
        "--analyze", action="store_true",
        help="EXPLAIN ANALYZE: run with the per-query resource ledger and "
        "print the per-operator table to stderr",
    )
    agg.add_argument("--json", action="store_true", help="emit the result as JSON")
    agg.add_argument(
        "--templates", metavar="DIR",
        help="shared template store directory (see grep --templates)",
    )

    lifecycle = sub.add_parser(
        "lifecycle",
        help="tier state machine: inspect and demote blocks between "
        "hot/warm/cold",
    )
    lsub = lifecycle.add_subparsers(dest="lifecycle_command", required=True)
    lstatus = lsub.add_parser(
        "status", help="per-tier block and byte accounting of an archive"
    )
    lstatus.add_argument("-a", "--archive", required=True, help="archive directory")
    lstatus.add_argument("--json", action="store_true", help="emit JSON instead of text")
    ldemote = lsub.add_parser(
        "demote",
        help="rewrite the eligible block prefix at a colder tier's config "
        "(cold merges blocks and rewrites the prune-index sidecar)",
    )
    ldemote.add_argument("-a", "--archive", required=True, help="archive directory")
    ldemote.add_argument(
        "--tier", choices=("warm", "cold"), required=True,
        help="target tier",
    )
    ldemote.add_argument(
        "--older-than", default="0s", metavar="AGE",
        help="age cutoff: seconds or <number><s|m|h|d|w>, e.g. 30d "
        "(default 0s = everything; blocks with no parseable timestamps "
        "are treated as eligible)",
    )
    ldemote.add_argument(
        "--templates", metavar="DIR",
        help="shared template store directory: cold rewrites deduplicate "
        "templates/dictionaries into it across archives",
    )
    ldemote.add_argument(
        "--self-contained", action="store_true",
        help="export the fallback bank after demotion so the archive "
        "reads without the shared store",
    )

    explain = sub.add_parser("explain", help="show the query plan (stamp/pattern decisions)")
    explain.add_argument("query", help="query command to plan")
    explain.add_argument("-a", "--archive", required=True, help="archive directory")
    explain.add_argument("-i", "--ignore-case", action="store_true")

    verify = sub.add_parser("verify", help="deep integrity check of an archive")
    verify.add_argument("-a", "--archive", required=True, help="archive directory")

    cluster = sub.add_parser(
        "cluster",
        help="one-shot distributed run: ingest a log file into an in-memory "
        "cluster and scatter a query (hedged reads, per-shard ANALYZE)",
    )
    cluster.add_argument("input", help="raw log file (one entry per line)")
    cluster.add_argument("query", help='e.g. "ERROR AND dst:11.8.*"')
    cluster.add_argument(
        "-n", "--nodes", type=int, default=4, help="worker nodes (default 4)"
    )
    cluster.add_argument(
        "-r", "--replication", type=int, default=2,
        help="replicas per block (default 2)",
    )
    cluster.add_argument(
        "--block-bytes", type=int, default=1024 * 1024,
        help="log block size in bytes (default: 1 MiB — small blocks shard "
        "better in a demo cluster)",
    )
    cluster.add_argument("-c", "--count", action="store_true", help="print only the hit count")
    cluster.add_argument("-i", "--ignore-case", action="store_true")
    cluster.add_argument("--from", dest="from_time", metavar="TIME",
                         help="start of the time window (see grep --from)")
    cluster.add_argument("--to", dest="to_time", metavar="TIME",
                         help="end of the time window")
    cluster.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="reconstruct at most N matches (bounds the final fetch)",
    )
    cluster.add_argument(
        "--analyze", action="store_true",
        help="print the per-shard delivery table (attempts, retries, "
        "hedges, gather bytes) to stderr",
    )
    cluster.add_argument(
        "--store-latency-ms", type=float, default=0.0,
        help="inject this per-request latency into every node's store "
        "(simulated object-store RTT)",
    )
    cluster.add_argument(
        "--store-jitter-ms", type=float, default=0.0,
        help="add up to this much random extra latency per store request",
    )
    cluster.add_argument(
        "--straggler-ms", type=float, default=0.0,
        help="make one node this much slower per RPC (hedged reads should "
        "route around it)",
    )
    cluster.add_argument(
        "--no-hedge", action="store_true",
        help="disable hedged replica reads (observe the straggler's tail)",
    )

    sub.add_parser("report", help="run the full benchmark suite and write EXPERIMENTS.md")
    return parser


def _parse_window(args) -> tuple:
    """Resolve --from/--to into epoch floats (None when absent)."""
    from .common.timeparse import parse_time_arg

    window = []
    for text in (getattr(args, "from_time", None), getattr(args, "to_time", None)):
        if text is None:
            window.append(None)
        else:
            window.append(parse_time_arg(text))
    return tuple(window)


def _shared_store(path: Optional[str]):
    if path is None:
        return None
    from .blockstore.shared import SharedTemplateStore

    return SharedTemplateStore(ArchiveStore(path))


def _open(
    archive: str,
    templates: Optional[str] = None,
    config: Optional[LogGrepConfig] = None,
    **config_overrides,
) -> LogGrep:
    store = ArchiveStore(archive)
    lg = LogGrep(
        store=store,
        config=config or LogGrepConfig(**config_overrides),
        templates=_shared_store(templates),
    )
    # Resume block numbering after existing archives.
    existing = store.names()
    lg._next_block_id = len(existing)
    return lg


def _run_grep_batch(lg, args, from_time, to_time) -> int:
    """``grep --batch-file``: one shared-scan pass over many queries."""
    with open(args.batch_file, "r", encoding="utf-8") as fh:
        queries = [
            line.strip()
            for line in fh
            if line.strip() and not line.lstrip().startswith("#")
        ]
    if not queries:
        print("loggrep: batch file holds no queries", file=sys.stderr)
        return 2
    if args.count:
        counts = lg.count_many(queries, ignore_case=args.ignore_case)
        for query, count in zip(queries, counts):
            print(f"{count}\t{query}")
    else:
        results = lg.grep_many(
            queries,
            ignore_case=args.ignore_case,
            from_time=from_time,
            to_time=to_time,
        )
        for query, result in zip(queries, results):
            print(f"# query: {query} ({result.count} hit(s))")
            for line in result.lines:
                print(line)
    if args.stats:
        report = lg.last_batch_report
        if report is not None:
            print(
                f"# batch: {report.queries} quer(ies) over {report.blocks} "
                f"block(s) in {report.elapsed * 1000:.1f} ms; shared block "
                f"loads: {report.shared_loads}",
                file=sys.stderr,
            )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "compress":
        overrides = {"block_bytes": args.block_bytes, "preset": args.preset}
        if args.parallelism is not None:
            overrides["compress_parallelism"] = args.parallelism
        if args.executor is not None:
            overrides["compress_executor"] = args.executor
        config = LogGrepConfig(**overrides)
        if args.tier is not None:
            from .core.lifecycle import Tier, tier_config

            config = tier_config(Tier(args.tier), config)
        lg = _open(args.archive, config=config)
        with open(args.input, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        report = lg.compress(lines)
        print(
            f"compressed {report.blocks} block(s): {report.raw_bytes} -> "
            f"{report.compressed_bytes} bytes "
            f"(ratio {report.ratio:.2f}x, {report.speed_mb_s:.2f} MB/s)"
        )
        return 0

    if args.command == "grep":
        overrides = {"query_parallelism": args.parallelism}
        if args.scan_kernel is not None:
            overrides["scan_kernel"] = args.scan_kernel
        if args.eager_io:
            overrides["lazy_io"] = False
        if args.mmap:
            overrides["store_mmap"] = True
        from .common.errors import BudgetExceeded

        if (args.query is None) == (args.batch_file is None):
            print(
                "loggrep: grep needs a query or --batch-file (not both)",
                file=sys.stderr,
            )
            return 2
        lg = _open(args.archive, templates=args.templates, **overrides)
        tracing_wanted = args.trace or args.trace_out is not None
        from_time, to_time = _parse_window(args)
        if args.batch_file is not None:
            return _run_grep_batch(lg, args, from_time, to_time)
        if args.analyze and (from_time is not None or to_time is not None):
            print(
                "loggrep: note: --from/--to are ignored under --analyze",
                file=sys.stderr,
            )
        try:
            if args.count and not args.stats and not tracing_wanted and not args.analyze:
                # Counting skips reconstruction entirely (grep -c fast path).
                print(
                    lg.count(
                        args.query,
                        ignore_case=args.ignore_case,
                        from_time=from_time,
                        to_time=to_time,
                    )
                )
                return 0

            def run_query():
                if args.analyze:
                    return lg.explain_analyze(args.query, ignore_case=args.ignore_case)
                return lg.grep(
                    args.query,
                    ignore_case=args.ignore_case,
                    from_time=from_time,
                    to_time=to_time,
                )

            if tracing_wanted:
                from .obs import render_span_tree, tracing

                with tracing() as tracer:
                    result = run_query()
                root = tracer.last_root()
            else:
                result = run_query()
        except BudgetExceeded as exc:
            print(f"loggrep: {exc}", file=sys.stderr)
            if exc.ledger is not None:
                spent = exc.ledger.totals()
                print(
                    f"loggrep: partial ledger at abort: "
                    f"{spent.read_bytes} byte(s) read in {spent.range_reads} "
                    f"range read(s), {exc.ledger.decoded_values} value(s) "
                    "decoded",
                    file=sys.stderr,
                )
            return 1
        if args.count:
            print(result.count)
        else:
            for line in result.lines:
                print(line)
        if args.trace:
            print(render_span_tree(root), file=sys.stderr)
        if args.trace_out is not None:
            from .obs import write_chrome_trace

            events = write_chrome_trace(args.trace_out, tracer.roots)
            print(
                f"# wrote {events} trace event(s) to {args.trace_out}",
                file=sys.stderr,
            )
        if args.analyze:
            print(result.report, file=sys.stderr)
        if args.stats:
            if args.json:
                doc = {
                    "query": args.query,
                    "hits": result.count,
                    "elapsed_ms": result.elapsed * 1000,
                    "stats": result.stats.as_dict(),
                }
                print(json.dumps(doc, indent=2), file=sys.stderr)
            else:
                print(
                    f"# {result.count} hit(s) in {result.elapsed * 1000:.1f} ms; "
                    f"capsules decompressed: {result.stats.capsules_decompressed}, "
                    f"filtered: {result.stats.capsules_filtered}",
                    file=sys.stderr,
                )
        return 0

    if args.command == "stats":
        store = ArchiveStore(args.archive)
        from .blockstore.shared import as_resolver
        from .capsule.box import CapsuleBox

        resolver = as_resolver(None, store)
        blocks = []
        total = 0
        for name in store.names():
            box = CapsuleBox.deserialize(store.get(name), templates=resolver)
            total += box.num_lines
            blocks.append(
                {
                    "name": name,
                    "lines": box.num_lines,
                    "groups": len(box.groups),
                    "capsules": box.capsule_count(),
                    "payload_bytes": box.payload_bytes(),
                }
            )
        if args.json:
            doc = {
                "blocks": blocks,
                "total_lines": total,
                "stored_bytes": store.total_bytes(),
            }
            print(json.dumps(doc, indent=2))
            return 0
        for b in blocks:
            print(
                f"{b['name']}: {b['lines']} lines, {b['groups']} groups, "
                f"{b['capsules']} capsules, {b['payload_bytes']} payload bytes"
            )
        print(f"total: {total} lines, {store.total_bytes()} stored bytes")
        return 0

    if args.command == "metrics":
        from .obs import get_registry

        lg = _open(args.archive)
        registry = get_registry()
        registry.gauge(
            "loggrep_store_bytes", "Total stored bytes of the archive"
        ).set(lg.storage_bytes())
        registry.gauge(
            "loggrep_store_blocks", "Blocks in the archive"
        ).set(len(lg.store.names()))
        if args.query:
            lg.grep(args.query)
        if args.format == "json":
            print(registry.to_json(indent=2))
        else:  # "prometheus" or its "prom" alias
            print(registry.to_prometheus(), end="")
        if args.reset:
            registry.reset()
        return 0

    if args.command == "explain":
        lg = _open(args.archive)
        print(lg.explain(args.query, ignore_case=args.ignore_case))
        return 0

    if args.command == "verify":
        from .blockstore.shared import as_resolver
        from .capsule.box import CapsuleBox
        from .common.errors import ReproError

        store = ArchiveStore(args.archive)
        resolver = as_resolver(None, store)
        bad = 0
        for name in store.names():
            try:
                problems = CapsuleBox.deserialize(
                    store.get(name), templates=resolver
                ).verify()
            except ReproError as exc:
                problems = [str(exc)]
            if problems:
                bad += 1
                for problem in problems:
                    print(f"{name}: {problem}")
            else:
                print(f"{name}: ok")
        print(f"{len(store.names()) - bad}/{len(store.names())} block(s) healthy")
        return 1 if bad else 0

    if args.command == "analyze":
        from .analytics import Analyzer

        analyzer = Analyzer(_open(args.archive))
        did_something = False
        if args.fields:
            print("fields:", ", ".join(analyzer.fields()))
            did_something = True
        if args.count_by:
            for value, count in analyzer.count_by(
                args.count_by, where=args.where
            ).most_common(args.top):
                print(f"{count:8d}  {value}")
            did_something = True
        if args.stats_of:
            stats = analyzer.stats_of(args.stats_of, where=args.where)
            print(
                f"count={stats.count} min={stats.minimum} max={stats.maximum} "
                f"mean={stats.mean:.2f} p50={stats.p50} p95={stats.p95} p99={stats.p99}"
            )
            did_something = True
        if not did_something:
            print("nothing to do: pass --fields, --count-by or --stats-of")
            return 2
        return 0

    if args.command == "agg":
        from .query.aggregate import AggregateSpec, NumericStats
        from .query.modes import AggregateKind

        needs_field = args.kind in ("count-by", "top-k", "stats")
        if needs_field and not args.field:
            print(f"loggrep: agg {args.kind} requires a FIELD", file=sys.stderr)
            return 2

        lg = _open(
            args.archive,
            templates=args.templates,
            query_parallelism=args.parallelism,
        )
        if args.kind == "timeseries":
            total = lg.total_lines()
            if total == 0 or args.buckets <= 0:
                spec = None
            else:
                spec = LogGrep._timeseries_spec(total, args.buckets)
        elif args.kind == "count-templates":
            spec = AggregateSpec(AggregateKind.COUNT_BY_TEMPLATE)
        elif args.kind == "count-by":
            spec = AggregateSpec(AggregateKind.COUNT_BY, args.field)
        elif args.kind == "top-k":
            spec = AggregateSpec(AggregateKind.TOP_K, args.field, k=args.top)
        else:  # stats
            spec = AggregateSpec(AggregateKind.STATS, args.field)

        if spec is None:
            result_value: object = []
            report = ""
        else:
            result = lg.aggregate(
                spec,
                args.where,
                ignore_case=args.ignore_case,
                analyze=args.analyze,
            )
            result_value = result.value
            report = result.report

        if args.json:
            if isinstance(result_value, NumericStats):
                doc: object = result_value.__dict__
            elif hasattr(result_value, "most_common"):
                doc = dict(result_value)  # type: ignore[call-overload]
            else:
                doc = result_value
            print(json.dumps(doc, indent=2, default=str))
        elif args.kind == "stats":
            s = result_value
            assert isinstance(s, NumericStats)
            print(
                f"count={s.count} nulls={s.nulls} min={s.minimum} "
                f"max={s.maximum} mean={s.mean:.2f} p50={s.p50} "
                f"p95={s.p95} p99={s.p99}"
            )
        elif args.kind == "timeseries":
            for low, high, hits in result_value:  # type: ignore[union-attr]
                print(f"[{low:10d} .. {high:10d}]  {hits}")
        elif args.kind == "top-k":
            for value, count in result_value:  # type: ignore[union-attr]
                print(f"{count:8d}  {value}")
        else:  # count-by / count-templates: a Counter
            for value, count in result_value.most_common(args.top):  # type: ignore[union-attr]
                print(f"{count:8d}  {value}")
        if args.analyze and report:
            print(report, file=sys.stderr)
        return 0

    if args.command == "lifecycle":
        from .core.lifecycle import LifecycleManager, Tier

        store = ArchiveStore(args.archive)
        if args.lifecycle_command == "status":
            mgr = LifecycleManager(store, LogGrepConfig())
            status = mgr.status()
            if args.json:
                doc = {
                    tier.value: {
                        "blocks": status.blocks[tier],
                        "bytes": status.bytes[tier],
                    }
                    for tier in Tier
                }
                print(json.dumps(doc, indent=2))
            else:
                for tier in Tier:
                    print(
                        f"{tier.value:5s}: {status.blocks[tier]:5d} block(s), "
                        f"{status.bytes[tier]} bytes"
                    )
                print(
                    f"total: {status.total_blocks():5d} block(s), "
                    f"{status.total_bytes()} bytes"
                )
            return 0

        # demote
        from .common.timeparse import parse_age_arg

        try:
            age = parse_age_arg(args.older_than)
        except ValueError as exc:
            print(f"loggrep: {exc}", file=sys.stderr)
            return 2
        mgr = LifecycleManager(
            store, LogGrepConfig(), shared=_shared_store(args.templates)
        )
        report = mgr.demote(Tier(args.tier), older_than_seconds=age)
        print(
            f"demoted to {report.tier.value}: "
            f"{report.blocks_before} -> {report.blocks_after} block(s), "
            f"{report.bytes_before} -> {report.bytes_after} bytes "
            f"({report.ratio_gain:.2f}x) in {report.rewrite_seconds:.2f}s"
        )
        if report.shared_bytes:
            print(f"shared store: {report.shared_bytes} bytes (cross-archive)")
        if args.self_contained:
            size = mgr.export_bank()
            print(f"fallback bank exported: {size} bytes")
        return 0

    if args.command == "cluster":
        from .blockstore.remote import FaultProfile
        from .cluster import ClusterLogGrep, ScatterConfig

        with open(args.input, "r", encoding="utf-8", errors="replace") as fh:
            lines = fh.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        profile = None
        if args.store_latency_ms > 0 or args.store_jitter_ms > 0:
            profile = FaultProfile(
                latency_s=args.store_latency_ms / 1000.0,
                jitter_s=args.store_jitter_ms / 1000.0,
            )
        scatter = ScatterConfig(
            fanout_concurrency=max(2, args.nodes),
            hedge=not args.no_hedge,
        )
        from_time, to_time = _parse_window(args)
        with ClusterLogGrep(
            args.nodes,
            args.replication,
            config=LogGrepConfig(block_bytes=args.block_bytes),
            scatter=scatter,
            remote_profile=profile,
        ) as cluster:
            cluster.compress(lines)
            if args.straggler_ms > 0:
                victim = sorted(cluster.nodes)[-1]
                cluster.set_straggler(victim, args.straggler_ms / 1000.0)
                print(
                    f"# straggler: {victim} +{args.straggler_ms:.0f} ms/RPC",
                    file=sys.stderr,
                )
            if args.count:
                print(
                    cluster.count(
                        args.query,
                        ignore_case=args.ignore_case,
                        from_time=from_time,
                        to_time=to_time,
                    )
                )
                if args.analyze and cluster.last_report is not None:
                    print(cluster.last_report.render(), file=sys.stderr)
                return 0
            result = cluster.grep(
                args.query,
                ignore_case=args.ignore_case,
                from_time=from_time,
                to_time=to_time,
                limit=args.limit,
                analyze=args.analyze,
            )
            for line in result.lines:
                print(line)
            if args.analyze:
                print(result.report, file=sys.stderr)
        return 0

    if args.command == "report":
        from .bench.report import main as report_main

        return report_main()

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
