"""Reference query evaluation over raw lines.

Every baseline verifies its candidate lines with this evaluator, so all
five systems agree exactly on query semantics (the tests assert it).  The
semantics mirror the LogGrep engine's token model: a single-keyword search
string matches as a substring of some token; a multi-keyword string must
match consecutive tokens (suffix / exact / prefix); ``*``/``?`` wildcards
stay within one token.
"""

from __future__ import annotations

from typing import List, Sequence

from ..common.tokenizer import tokenize
from ..query.language import Keyword, QueryCommand, SearchString, parse_query
from ..query.modes import MatchMode


def keyword_matches_token(keyword: Keyword, token: str, mode: MatchMode) -> bool:
    if keyword.needs_regex:
        return keyword.regex_for(mode).search(token) is not None
    text = keyword.text
    if mode is MatchMode.EXACT:
        return token == text
    if mode is MatchMode.PREFIX:
        return token.startswith(text)
    if mode is MatchMode.SUFFIX:
        return token.endswith(text)
    return text in token


def search_string_in_line(search: SearchString, tokens: Sequence[str]) -> bool:
    keywords = search.keywords
    k = len(keywords)
    if k == 1:
        keyword = keywords[0]
        return any(
            keyword_matches_token(keyword, token, MatchMode.SUBSTRING)
            for token in tokens
        )
    for start in range(0, len(tokens) - k + 1):
        for j, keyword in enumerate(keywords):
            if j == 0:
                mode = MatchMode.SUFFIX
            elif j == k - 1:
                mode = MatchMode.PREFIX
            else:
                mode = MatchMode.EXACT
            if not keyword_matches_token(keyword, tokens[start + j], mode):
                break
        else:
            return True
    return False


def line_matches(command: QueryCommand, line: str) -> bool:
    tokens = tokenize(line)
    for disjunct in command.disjuncts:
        ok = True
        for term in disjunct:
            hit = search_string_in_line(term.search, tokens)
            if hit == term.negated:
                ok = False
                break
        if ok:
            return True
    return False


def grep_lines(
    command_text: str, lines: Sequence[str], ignore_case: bool = False
) -> List[str]:
    """Reference implementation: evaluate a command over raw lines."""
    command = parse_query(command_text, ignore_case)
    return [line for line in lines if line_matches(command, line)]
