"""CLP reimplementation (Rodrigues et al., OSDI '21) — the paper's main
comparator (§2.1, §6).

CLP tokenizes each entry, treats tokens containing digits as variables and
the rest as the *logtype* (static text).  Variables with non-digit
characters go into a **variable dictionary**; purely numeric variables are
encoded inline.  Encoded messages are packed into fixed-size **segments**
(zlib-compressed — the stand-in for CLP's zstd second stage), and inverted
indexes record which segments contain each logtype and each dictionary
variable.

A query uses the indexes to pick candidate segments, then decompresses and
scans only those — partition-level filtering, but at a *much* coarser
granularity than LogGrep's Capsules, which is exactly the gap the paper
measures.  CLP lacks logical operators, so (as the paper did, after
consulting the CLP authors) the first positive search string drives the
index filtering and the remaining conditions are applied like a piped
grep.
"""

from __future__ import annotations

import time
import zlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..common.binio import BinaryReader, BinaryWriter
from ..common.tokenizer import join_tokens, tokenize
from ..query.language import QueryCommand, SearchString, parse_query
from .base import LogStoreSystem
from .evalutil import line_matches

#: Messages per segment (CLP compresses segments of encoded messages).
DEFAULT_SEGMENT_MESSAGES = 1024

#: Variable kinds within an encoded message.
_VAR_DICT = 0
_VAR_NUMERIC = 1


class CLP(LogStoreSystem):
    """Compressed log store with segment-level inverted-index filtering."""

    name = "CLP"

    def __init__(self, segment_messages: int = DEFAULT_SEGMENT_MESSAGES):
        super().__init__()
        self.segment_messages = segment_messages
        # logtype: tuple of tokens with None at variable slots
        self._logtype_ids: Dict[Tuple, int] = {}
        self._logtypes: List[Tuple] = []
        self._var_ids: Dict[str, int] = {}
        self._vars: List[str] = []
        self._logtype_postings: List[Set[int]] = []
        self._var_postings: List[Set[int]] = []
        self._segments: List[bytes] = []
        self._pending: List[Tuple[int, List[Tuple[int, object]]]] = []
        self._meta_blob: bytes = b""
        # Tokens repeat massively; memoize their classification/encoding.
        self._token_cache: Dict[str, Optional[Tuple[int, object]]] = {}

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def ingest(self, lines: Sequence[str]) -> None:
        start = time.perf_counter()
        for line in lines:
            self._encode_line(line)
            self.raw_bytes += len(line) + 1
            if len(self._pending) >= self.segment_messages:
                self._flush_segment()
        if self._pending:
            self._flush_segment()
        self._meta_blob = self._serialize_meta()
        self.compress_seconds += time.perf_counter() - start

    def _encode_line(self, line: str) -> None:
        tokens = tokenize(line)
        logtype: List[Optional[str]] = []
        variables: List[Tuple[int, object]] = []
        cache = self._token_cache
        for token in tokens:
            try:
                encoded = cache[token]
            except KeyError:
                if _is_variable(token):
                    if token.isdigit():
                        encoded = (_VAR_NUMERIC, token)
                    else:
                        encoded = (_VAR_DICT, self._var_id(token))
                else:
                    encoded = None
                cache[token] = encoded
            if encoded is None:
                logtype.append(token)
            else:
                logtype.append(None)
                variables.append(encoded)
        logtype_id = self._logtype_id(tuple(logtype))
        segment_id = len(self._segments)
        self._logtype_postings[logtype_id].add(segment_id)
        for kind, payload in variables:
            if kind == _VAR_DICT:
                self._var_postings[payload].add(segment_id)
        self._pending.append((logtype_id, variables))

    def _logtype_id(self, logtype: Tuple) -> int:
        existing = self._logtype_ids.get(logtype)
        if existing is not None:
            return existing
        new_id = len(self._logtypes)
        self._logtype_ids[logtype] = new_id
        self._logtypes.append(logtype)
        self._logtype_postings.append(set())
        return new_id

    def _var_id(self, value: str) -> int:
        existing = self._var_ids.get(value)
        if existing is not None:
            return existing
        new_id = len(self._vars)
        self._var_ids[value] = new_id
        self._vars.append(value)
        self._var_postings.append(set())
        return new_id

    def _flush_segment(self) -> None:
        writer = BinaryWriter()
        writer.write_varint(len(self._pending))
        for logtype_id, variables in self._pending:
            writer.write_varint(logtype_id)
            writer.write_varint(len(variables))
            for kind, payload in variables:
                writer.write_u8(kind)
                if kind == _VAR_DICT:
                    writer.write_varint(payload)
                else:
                    writer.write_str(payload)
        self._segments.append(zlib.compress(writer.getvalue(), 6))
        self._pending = []

    def _serialize_meta(self) -> bytes:
        """Dictionaries + postings, as they would be stored on disk."""
        writer = BinaryWriter()
        writer.write_varint(len(self._logtypes))
        for logtype, postings in zip(self._logtypes, self._logtype_postings):
            writer.write_varint(len(logtype))
            for token in logtype:
                if token is None:
                    writer.write_u8(1)
                else:
                    writer.write_u8(0)
                    writer.write_str(token)
            writer.write_u32_list(sorted(postings))
        writer.write_varint(len(self._vars))
        for value, postings in zip(self._vars, self._var_postings):
            writer.write_str(value)
            writer.write_u32_list(sorted(postings))
        return zlib.compress(writer.getvalue(), 6)

    def storage_bytes(self) -> int:
        return sum(len(seg) for seg in self._segments) + len(self._meta_blob)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(self, command: str) -> List[str]:
        parsed = parse_query(command)
        candidates = self._candidates_for_command(parsed)
        out: List[str] = []
        for segment_id in range(len(self._segments)):
            if candidates is not None and segment_id not in candidates:
                continue
            for line in self._decode_segment(segment_id):
                if line_matches(parsed, line):
                    out.append(line)
        return out

    def _candidates_for_command(self, parsed: QueryCommand) -> Optional[Set[int]]:
        """Segments to scan, or None for a full scan.

        Per OR branch, the longest positive search string (the "obscurest"
        condition, as the paper ran CLP) drives the index filtering; the
        other conditions are applied by the grep-style verification pass.
        """
        total: Set[int] = set()
        for disjunct in parsed.disjuncts:
            positives = [term.search for term in disjunct if not term.negated]
            if not positives:
                return None  # a pure-negative branch forces a full scan
            driver = max(positives, key=lambda search: len(search.text))
            total |= self._candidate_segments(driver)
        return total

    def _candidate_segments(self, search: SearchString) -> Set[int]:
        """Segments that may contain the search string (over-inclusive)."""
        all_segments = set(range(len(self._segments)))
        result = all_segments
        for keyword in search.keywords:
            if keyword.ignore_case:
                # Dictionaries store exact-case values; skip filtering.
                continue
            fragments = keyword.literals() if keyword.is_wildcard else [keyword.text]
            per_keyword: Set[int] = set()
            filterable = True
            for fragment in fragments:
                if not fragment:
                    continue
                if fragment.isdigit():
                    # Could be a numeric-encoded variable: not filterable.
                    filterable = False
                    break
                per_keyword |= self._segments_with_fragment(fragment)
            if not filterable or not fragments:
                continue
            result = result & per_keyword
        return result

    def _segments_with_fragment(self, fragment: str) -> Set[int]:
        hits: Set[int] = set()
        for logtype, postings in zip(self._logtypes, self._logtype_postings):
            static_text = join_tokens([t if t is not None else "\x01" for t in logtype])
            if fragment in static_text:
                hits |= postings
        for value, postings in zip(self._vars, self._var_postings):
            if fragment in value:
                hits |= postings
        return hits

    def _decode_segment(self, segment_id: int) -> List[str]:
        reader = BinaryReader(zlib.decompress(self._segments[segment_id]))
        lines: List[str] = []
        for _ in range(reader.read_varint()):
            logtype = self._logtypes[reader.read_varint()]
            tokens: List[str] = []
            values: List[str] = []
            for _ in range(reader.read_varint()):
                kind = reader.read_u8()
                if kind == _VAR_DICT:
                    values.append(self._vars[reader.read_varint()])
                else:
                    values.append(reader.read_str())
            it = iter(values)
            for token in logtype:
                tokens.append(next(it) if token is None else token)
            lines.append(join_tokens(tokens))
        return lines


def _is_variable(token: str) -> bool:
    """CLP's heuristic: tokens containing digits are variables."""
    return any(ch.isdigit() for ch in token)
