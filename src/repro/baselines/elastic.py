"""Mini-ElasticSearch: a Lucene-style segmented inverted index (§6).

ElasticSearch's trade-off in the paper: lowest query latency (index
lookups instead of scans), but the largest storage footprint (term
dictionaries + positional postings + stored sources, often bigger than
the raw logs) and by far the slowest ingest.  The slow ingest is not
incidental — Lucene buffers documents, *flushes* them as immutable index
segments, and continually *merges* segments of similar size, rewriting
postings several times (logarithmic write amplification).

This stand-in reproduces that architecture:

* documents are analyzed like ES's standard analyzer (lowercased, split
  on non-alphanumerics) into terms with positions (text fields index
  positions by default);
* every ``flush_docs`` documents the in-memory buffer becomes a serialized
  immutable segment; a tiered merge policy rewrites similarly-sized
  segments into bigger ones, exactly Lucene's write pattern;
* originals are stored in lightly-compressed source blocks (ES optimizes
  retrieval speed, not ratio);
* queries resolve candidate documents per segment (substring keywords
  scan the term dictionary, as ES wildcard queries do) and then verify
  exactly, so every system in this repo returns identical results.
"""

from __future__ import annotations

import re
import time
import zlib
from bisect import bisect_right
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..common.binio import BinaryReader, BinaryWriter
from ..query.language import SearchString, parse_query
from .base import LogStoreSystem
from .evalutil import line_matches

_TERM_SPLIT = re.compile(r"[^0-9A-Za-z]+")

#: Documents buffered before a segment flush (Lucene's RAM buffer).
DEFAULT_FLUSH_DOCS = 256

#: Merge policy: when this many segments share a size tier, merge them.
MERGE_FANIN = 3

#: Documents per stored-source block.
SOURCE_BLOCK_DOCS = 4096

#: ES trades ratio for speed when storing _source.
SOURCE_COMPRESSION_LEVEL = 1


def analyze(text: str) -> List[str]:
    """Standard-analyzer-like tokenization: lowercase alphanumeric runs."""
    return [term for term in _TERM_SPLIT.split(text.lower()) if term]


class _Segment:
    """One immutable index segment: sorted term dict + positional postings."""

    __slots__ = ("blob", "doc_count", "_terms")

    def __init__(self, blob: bytes, doc_count: int):
        self.blob = blob
        self.doc_count = doc_count
        self._terms: Optional[Dict[str, List[int]]] = None

    @classmethod
    def build(cls, postings: Dict[str, List[int]], doc_count: int) -> "_Segment":
        writer = BinaryWriter()
        writer.write_varint(doc_count)
        writer.write_varint(len(postings))
        for term in sorted(postings):
            writer.write_str(term)
            entry = postings[term]
            writer.write_varint(len(entry) // 2)
            prev_doc = 0
            for i in range(0, len(entry), 2):
                writer.write_varint(entry[i] - prev_doc)
                writer.write_varint(entry[i + 1])
                prev_doc = entry[i]
        segment = cls(writer.getvalue(), doc_count)
        # ES keeps open segments' term dictionaries resident; queries must
        # not pay the decode.
        segment._terms = dict(postings)
        return segment

    def terms(self) -> Dict[str, List[int]]:
        """Decode term → [doc, pos, ...] (cached)."""
        if self._terms is None:
            reader = BinaryReader(self.blob)
            reader.read_varint()  # doc_count
            terms: Dict[str, List[int]] = {}
            for _ in range(reader.read_varint()):
                term = reader.read_str()
                entry: List[int] = []
                doc = 0
                for _ in range(reader.read_varint()):
                    doc += reader.read_varint()
                    entry.append(doc)
                    entry.append(reader.read_varint())
                terms[term] = entry
            self._terms = terms
        return self._terms

    @classmethod
    def merge(cls, segments: Sequence["_Segment"]) -> "_Segment":
        """Rewrite several segments into one (Lucene's merge)."""
        merged: Dict[str, List[int]] = {}
        doc_count = 0
        for segment in segments:
            for term, entry in segment.terms().items():
                merged.setdefault(term, []).extend(entry)
            doc_count += segment.doc_count
        for entry in merged.values():
            # Keep postings doc-ordered after concatenation.
            pairs = sorted(zip(entry[::2], entry[1::2]))
            entry[:] = [value for pair in pairs for value in pair]
        return cls.build(merged, doc_count)


class MiniElastic(LogStoreSystem):
    """Segmented inverted-index log search with stored sources."""

    name = "ES"

    def __init__(self, flush_docs: int = DEFAULT_FLUSH_DOCS):
        super().__init__()
        self.flush_docs = flush_docs
        self._segments: List[_Segment] = []
        self._buffer: Dict[str, List[int]] = {}
        self._buffered_docs = 0
        # (first doc id, blob) per stored-source block: ingest() may be
        # called repeatedly, so blocks are not uniformly sized.
        self._source_blocks: List[Tuple[int, bytes]] = []
        self._pending_sources: List[str] = []
        self._num_docs = 0

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(self, lines: Sequence[str]) -> None:
        start = time.perf_counter()
        for line in lines:
            doc_id = self._num_docs
            self._num_docs += 1
            self.raw_bytes += len(line) + 1
            buffer = self._buffer
            for position, term in enumerate(analyze(line)):
                entry = buffer.get(term)
                if entry is None:
                    buffer[term] = [doc_id, position]
                else:
                    entry.append(doc_id)
                    entry.append(position)
            self._buffered_docs += 1
            self._pending_sources.append(line)
            if self._buffered_docs >= self.flush_docs:
                self._flush()
            if len(self._pending_sources) >= SOURCE_BLOCK_DOCS:
                self._flush_sources()
        self._flush()
        self._flush_sources()
        self.compress_seconds += time.perf_counter() - start

    def _flush(self) -> None:
        if not self._buffered_docs:
            return
        self._segments.append(_Segment.build(self._buffer, self._buffered_docs))
        self._buffer = {}
        self._buffered_docs = 0
        self._maybe_merge()

    def _maybe_merge(self) -> None:
        """Tiered merging: rewrite runs of similarly-sized segments."""
        while True:
            tiers: Dict[int, List[int]] = {}
            for idx, segment in enumerate(self._segments):
                tier = max(0, (len(segment.blob)).bit_length() // 2)
                tiers.setdefault(tier, []).append(idx)
            to_merge = next(
                (idxs for idxs in tiers.values() if len(idxs) >= MERGE_FANIN), None
            )
            if to_merge is None:
                return
            group = [self._segments[i] for i in to_merge]
            merged = _Segment.merge(group)
            self._segments = [
                s for i, s in enumerate(self._segments) if i not in set(to_merge)
            ]
            self._segments.append(merged)

    def _flush_sources(self) -> None:
        if not self._pending_sources:
            return
        blob = zlib.compress(
            "\n".join(self._pending_sources).encode("utf-8"),
            SOURCE_COMPRESSION_LEVEL,
        )
        first_doc = self._num_docs - len(self._pending_sources)
        self._source_blocks.append((first_doc, blob))
        self._pending_sources = []

    def storage_bytes(self) -> int:
        index = sum(len(segment.blob) for segment in self._segments)
        sources = sum(len(blob) for _, blob in self._source_blocks)
        return index + sources

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def query(self, command: str) -> List[str]:
        parsed = parse_query(command)
        hit_ids: List[int] = []
        seen: Set[int] = set()
        block_cache: Dict[int, List[str]] = {}
        for disjunct in parsed.disjuncts:
            candidates = self._disjunct_candidates(disjunct)
            if candidates is None:
                candidates = set(range(self._num_docs))
            for doc_id in candidates:
                if doc_id in seen:
                    continue
                line = self._fetch(doc_id, block_cache)
                if line_matches(parsed, line):
                    seen.add(doc_id)
                    hit_ids.append(doc_id)
        hit_ids.sort()
        return [self._fetch(doc_id, block_cache) for doc_id in hit_ids]

    def _disjunct_candidates(self, disjunct) -> Optional[Set[int]]:
        result: Optional[Set[int]] = None
        for term in disjunct:
            if term.negated:
                continue
            docs = self._search_string_docs(term.search)
            if docs is None:
                continue
            result = docs if result is None else result & docs
        return result

    def _search_string_docs(self, search: SearchString) -> Optional[Set[int]]:
        """Candidate docs for one search string; None = unfilterable."""
        result: Optional[Set[int]] = None
        for keyword in search.keywords:
            fragments = keyword.literals() if keyword.is_wildcard else [keyword.text]
            for fragment in fragments:
                for sub in analyze(fragment):
                    docs = self._docs_with_term_substring(sub)
                    result = docs if result is None else result & docs
        return result

    def _docs_with_term_substring(self, fragment: str) -> Set[int]:
        """ES-wildcard-style scan of every segment's term dictionary."""
        docs: Set[int] = set()
        for segment in self._segments:
            for term, entry in segment.terms().items():
                if fragment in term:
                    docs.update(entry[::2])
        return docs

    def _fetch(self, doc_id: int, cache: Dict[int, List[str]]) -> str:
        starts = [start for start, _ in self._source_blocks]
        block_id = bisect_right(starts, doc_id) - 1
        lines = cache.get(block_id)
        if lines is None:
            blob = zlib.decompress(self._source_blocks[block_id][1])
            lines = blob.decode("utf-8").split("\n")
            cache[block_id] = lines
        return lines[doc_id - starts[block_id]]
