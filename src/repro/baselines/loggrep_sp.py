"""LogGrep-SP: the §2.2 "first attempt" — static patterns only.

Logs are parsed into variable vectors exactly like full LogGrep, each
vector is compressed whole with a vector-level summary (type number + max
length), and there is no runtime-pattern structurization, no fixed-length
padding and no dictionary/index split.  The paper evaluates this version
to isolate the gain of runtime patterns (Fig 7/8's "LG-SP" series).
"""

from __future__ import annotations

from ..core.config import LogGrepConfig, sp_config
from .loggrep_system import LogGrepSystem


class LogGrepSP(LogGrepSystem):
    """LogGrep restricted to static-pattern structurization."""

    name = "LG-SP"

    def __init__(self, config: LogGrepConfig = None):
        super().__init__(sp_config(config))
