"""gzip+grep — Alibaba Cloud's incumbent method for near-line logs (§6).

Blocks of raw text are DEFLATE-compressed at ingest.  Every query must
decompress *all* blocks and scan every line — the long-latency baseline
the paper's engineers live with today.  Compression is fast and the ratio
is moderate; the entire cost is paid at query time.
"""

from __future__ import annotations

import time
import zlib
from typing import List, Sequence

from ..blockstore.block import DEFAULT_BLOCK_BYTES, split_lines
from ..blockstore.store import ArchiveStore, MemoryStore
from ..query.language import parse_query
from .base import LogStoreSystem
from .evalutil import line_matches

#: gzip's default compression level.
GZIP_LEVEL = 6


class GzipGrep(LogStoreSystem):
    """DEFLATE blocks + full-scan grep."""

    name = "ggrep"

    def __init__(
        self,
        store: ArchiveStore = None,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        level: int = GZIP_LEVEL,
    ):
        super().__init__()
        self.store = store or MemoryStore()
        self.block_bytes = block_bytes
        self.level = level
        self._next_block = 0

    # ------------------------------------------------------------------
    def ingest(self, lines: Sequence[str]) -> None:
        start = time.perf_counter()
        for block in split_lines(lines, self.block_bytes):
            data = zlib.compress(block.text().encode("utf-8"), self.level)
            self.store.put(f"block-{self._next_block:08d}.gz", data)
            self._next_block += 1
            self.raw_bytes += block.raw_bytes
        self.compress_seconds += time.perf_counter() - start

    # ------------------------------------------------------------------
    def query(self, command: str) -> List[str]:
        parsed = parse_query(command)
        out: List[str] = []
        for name in self.store.names():
            text = zlib.decompress(self.store.get(name)).decode("utf-8")
            for line in text.split("\n"):
                if line and line_matches(parsed, line):
                    out.append(line)
        return out

    def storage_bytes(self) -> int:
        return self.store.total_bytes()
