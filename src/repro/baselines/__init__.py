"""The §6 comparators: gzip+grep, CLP, mini-ElasticSearch, LogGrep-SP,
plus the LogGrep adapter and the reference line evaluator."""

from .base import LogStoreSystem
from .bucket import BucketCompressor
from .clp import CLP
from .elastic import MiniElastic, analyze
from .evalutil import grep_lines, line_matches, search_string_in_line
from .gzip_grep import GzipGrep
from .loggrep_sp import LogGrepSP
from .loggrep_system import LogGrepSystem
from .logzip import LogZip

__all__ = [
    "LogStoreSystem",
    "GzipGrep",
    "CLP",
    "MiniElastic",
    "analyze",
    "LogGrepSP",
    "LogGrepSystem",
    "LogZip",
    "BucketCompressor",
    "grep_lines",
    "line_matches",
    "search_string_in_line",
]
