"""Adapter presenting :class:`~repro.core.loggrep.LogGrep` through the
common :class:`~repro.baselines.base.LogStoreSystem` interface, so the
benchmark harness drives it like every comparator."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..core.config import LogGrepConfig
from ..core.loggrep import LogGrep
from .base import LogStoreSystem


class LogGrepSystem(LogStoreSystem):
    """Full LogGrep behind the benchmark interface."""

    name = "LG"

    def __init__(self, config: Optional[LogGrepConfig] = None):
        super().__init__()
        self.loggrep = LogGrep(config=config or LogGrepConfig())

    def ingest(self, lines: Sequence[str]) -> None:
        self.loggrep.compress(lines)
        self.compress_seconds = self.loggrep.compress_seconds
        self.raw_bytes = self.loggrep.raw_bytes

    def query(self, command: str) -> List[str]:
        return self.loggrep.grep(command).lines

    def storage_bytes(self) -> int:
        return self.loggrep.storage_bytes()
