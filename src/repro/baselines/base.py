"""The common interface every compared system implements (§6).

The benchmark harness drives five systems — gzip+grep, CLP, ElasticSearch
(mini), LogGrep-SP and LogGrep — through this interface and measures the
same three quantities the paper reports: query latency, compression ratio
and compression speed, which Equation 1 then folds into overall cost.
"""

from __future__ import annotations

import abc
import time
from typing import Iterable, List, Sequence


class LogStoreSystem(abc.ABC):
    """A compress-then-query log store."""

    #: Short display name used in benchmark tables ("ggrep", "CLP", ...).
    name: str = "?"

    def __init__(self) -> None:
        self.compress_seconds = 0.0
        self.raw_bytes = 0

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def ingest(self, lines: Sequence[str]) -> None:
        """Compress/ingest a batch of raw log lines."""

    @abc.abstractmethod
    def query(self, command: str) -> List[str]:
        """Run a query command; return matching original lines in order."""

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Total bytes persisted (compressed data + any indexes)."""

    # ------------------------------------------------------------------
    def compression_ratio(self) -> float:
        stored = self.storage_bytes()
        return self.raw_bytes / stored if stored else 0.0

    def compression_speed_mb_s(self) -> float:
        if not self.compress_seconds:
            return 0.0
        return (self.raw_bytes / 1e6) / self.compress_seconds

    def timed_query(self, command: str) -> tuple:
        """(matching lines, seconds) for one query."""
        start = time.perf_counter()
        lines = self.query(command)
        return lines, time.perf_counter() - start

    @staticmethod
    def _raw_size(lines: Iterable[str]) -> int:
        return sum(len(line) + 1 for line in lines)
