"""Logzip-style parser-based compression (related work, §7).

Logzip (Liu et al., ASE'19) extracts hidden structure via iterative
clustering and compresses templates and variable columns — achieving high
compression ratios, but with **no query support on compressed data**: a
query must decompress everything first.  This stand-in shares LogGrep's
parser, stores each block as columnar structure (template ids + variable
columns) LZMA-compressed *as one unit* — no Capsules, no stamps, no
selective decompression — and scans decompressed lines at query time.

It demonstrates the paper's point about this family: the ratio is as good
as (often slightly better than) LogGrep's because there is no per-Capsule
metadata, but every query pays the full decompression + scan cost.
"""

from __future__ import annotations

import lzma
import time
from typing import List, Sequence

from ..blockstore.block import split_lines
from ..common.binio import BinaryReader, BinaryWriter
from ..query.language import parse_query
from ..staticparse.parser import BlockParser
from ..staticparse.template import Template
from .base import LogStoreSystem
from .evalutil import line_matches

#: Keep blocks comparable to the other systems at bench scale.
DEFAULT_BLOCK_BYTES = 1 << 20


class LogZip(LogStoreSystem):
    """High-ratio columnar log compression without query support."""

    name = "logzip"

    def __init__(self, block_bytes: int = DEFAULT_BLOCK_BYTES, preset: int = 6):
        super().__init__()
        self.block_bytes = block_bytes
        self.preset = preset
        self._blocks: List[bytes] = []

    # ------------------------------------------------------------------
    def ingest(self, lines: Sequence[str]) -> None:
        start = time.perf_counter()
        for block in split_lines(lines, self.block_bytes):
            self.raw_bytes += block.raw_bytes
            self._blocks.append(self._compress_block(block.lines))
        self.compress_seconds += time.perf_counter() - start

    def _compress_block(self, lines: Sequence[str]) -> bytes:
        parsed = BlockParser().parse(lines)
        writer = BinaryWriter()
        writer.write_varint(len(lines))
        writer.write_varint(len(parsed.groups))
        for group in parsed.groups:
            template = group.template
            writer.write_varint(len(template.tokens))
            for token in template.tokens:
                if token is None:
                    writer.write_u8(1)
                else:
                    writer.write_u8(0)
                    writer.write_str(token)
            writer.write_u32_array(group.line_ids)
            # Columnar variable storage: values of one variable together.
            for vector in group.variable_vectors:
                writer.write_str_list(list(vector))
        return lzma.compress(writer.getvalue(), preset=self.preset)

    # ------------------------------------------------------------------
    def _decompress_block(self, blob: bytes) -> List[str]:
        reader = BinaryReader(lzma.decompress(blob))
        num_lines = reader.read_varint()
        lines: List[str] = [""] * num_lines
        for _ in range(reader.read_varint()):
            tokens = []
            for _ in range(reader.read_varint()):
                if reader.read_u8() == 1:
                    tokens.append(None)
                else:
                    tokens.append(reader.read_str())
            template = Template(0, tokens)
            line_ids = reader.read_u32_array()
            columns = [
                reader.read_str_list() for _ in range(template.num_variables)
            ]
            for row, line_id in enumerate(line_ids):
                values = [column[row] for column in columns]
                lines[line_id] = template.render(values)
        return lines

    def query(self, command: str) -> List[str]:
        parsed = parse_query(command)
        out: List[str] = []
        for blob in self._blocks:
            for line in self._decompress_block(blob):
                if line_matches(parsed, line):
                    out.append(line)
        return out

    def storage_bytes(self) -> int:
        return sum(len(blob) for blob in self._blocks)