"""Bucket-based log compression (related work, §7 — MLC/Cowic family).

Bucket-based methods group similar log entries and compress each bucket
independently: similarity improves the codec's context, so the ratio beats
compressing the raw stream, but — like every compression-only method — a
query must decompress all buckets and scan.

Entries are bucketed by a cheap similarity signature (token count plus the
digit-masked leading tokens), each bucket's text is LZMA-compressed, and
original order is restored from per-entry sequence numbers.
"""

from __future__ import annotations

import lzma
import time
from typing import Dict, List, Sequence, Tuple

from ..common.binio import BinaryReader, BinaryWriter
from ..common.tokenizer import tokenize
from ..query.language import parse_query
from .base import LogStoreSystem
from .evalutil import line_matches

_DIGIT_MASK = str.maketrans("0123456789", "##########")

#: Entries per flush unit, so memory stays bounded for big ingests.
DEFAULT_FLUSH_LINES = 50_000


def _signature(line: str) -> str:
    tokens = tokenize(line)
    head = " ".join(token.translate(_DIGIT_MASK) for token in tokens[:3])
    return f"{len(tokens)}|{head}"


class BucketCompressor(LogStoreSystem):
    """Similarity-bucketed compression; decompress-then-grep queries."""

    name = "bucket"

    def __init__(self, flush_lines: int = DEFAULT_FLUSH_LINES, preset: int = 6):
        super().__init__()
        self.flush_lines = flush_lines
        self.preset = preset
        self._chunks: List[bytes] = []
        self._pending: List[str] = []

    # ------------------------------------------------------------------
    def ingest(self, lines: Sequence[str]) -> None:
        start = time.perf_counter()
        for line in lines:
            self.raw_bytes += len(line) + 1
            self._pending.append(line)
            if len(self._pending) >= self.flush_lines:
                self._flush()
        self._flush()
        self.compress_seconds += time.perf_counter() - start

    def _flush(self) -> None:
        if not self._pending:
            return
        buckets: Dict[str, List[Tuple[int, str]]] = {}
        for seq, line in enumerate(self._pending):
            buckets.setdefault(_signature(line), []).append((seq, line))
        writer = BinaryWriter()
        writer.write_varint(len(self._pending))
        writer.write_varint(len(buckets))
        for members in buckets.values():
            writer.write_u32_array([seq for seq, _ in members])
            writer.write_str_list([line for _, line in members])
        self._chunks.append(lzma.compress(writer.getvalue(), preset=self.preset))
        self._pending = []

    # ------------------------------------------------------------------
    def _decompress_chunk(self, blob: bytes) -> List[str]:
        reader = BinaryReader(lzma.decompress(blob))
        total = reader.read_varint()
        lines: List[str] = [""] * total
        for _ in range(reader.read_varint()):
            sequence = reader.read_u32_array()
            members = reader.read_str_list()
            for seq, line in zip(sequence, members):
                lines[seq] = line
        return lines

    def query(self, command: str) -> List[str]:
        parsed = parse_query(command)
        out: List[str] = []
        for blob in self._chunks:
            for line in self._decompress_chunk(blob):
                if line_matches(parsed, line):
                    out.append(line)
        return out

    def storage_bytes(self) -> int:
        return sum(len(blob) for blob in self._chunks)