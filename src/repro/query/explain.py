"""Query EXPLAIN: the dry-run rendering of the physical plan.

``LogGrep.explain(command)`` builds the same :class:`QueryPlan` that
``grep``/``count`` execute and hands it to the executor in ``EXPLAIN``
mode; instead of locating rows, each block's pipeline renders *why* each
Capsule would or would not be touched — Bloom prunes, stamp checks,
runtime-pattern candidates.  Invaluable for understanding a slow query
and for teaching the §5 machinery.

The per-vector decisions below are produced by the same
:func:`~repro.query.locator.locate` the Locate operator uses, so the
rendering cannot drift from what execution actually does; which search
strings are planned (deduped, in evaluation order) comes straight from
:meth:`QueryPlan.search_strings`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from ..capsule.assembler import (
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
)
from ..capsule.box import CapsuleBox
from ..query.language import QueryCommand
from ..query.locator import TOO_COMPLEX, locate
from ..query.modes import MatchMode
from ..query.plan import OutputMode, QueryPlan, build_plan


@dataclass
class VectorPlan:
    """What one keyword does to one variable vector."""

    group: int
    var: int
    kind: str  # real / nominal / plain
    keyword: str
    mode: str
    decision: str  # filtered / candidates / scan / regex-scan
    detail: str = ""


@dataclass
class BlockPlan:
    """Explain output for one block."""

    block: str
    template_hits: List[str] = field(default_factory=list)
    vector_plans: List[VectorPlan] = field(default_factory=list)

    def summary(self) -> str:
        filtered = sum(1 for p in self.vector_plans if p.decision == "filtered")
        total = len(self.vector_plans)
        lines = [f"block {self.block}: {filtered}/{total} keyword-vector pairs filtered"]
        for hit in self.template_hits:
            lines.append(f"  template hit: {hit}")
        for plan in self.vector_plans:
            lines.append(
                f"  g{plan.group}/v{plan.var} [{plan.kind}] "
                f"{plan.keyword!r} ({plan.mode}): {plan.decision}"
                + (f" — {plan.detail}" if plan.detail else "")
            )
        return "\n".join(lines)


def render_analyze(
    ledger, stats, elapsed: float, physical_plan: str = ""
) -> str:
    """The ``EXPLAIN ANALYZE`` report: the physical plan followed by a
    per-operator resource table from a :class:`~repro.query.stats.QueryLedger`.

    The ``read_bytes`` column counts exactly what the store-level metric
    ``loggrep_store_range_read_bytes_total`` counts, so the table's total
    reconciles with the registry's delta for the query.
    """
    columns = (
        ("calls", "calls"),
        ("time_ms", None),  # derived from seconds
        ("range_reads", "range_reads"),
        ("read_bytes", "read_bytes"),
        ("capsules", "capsules_fetched"),
        ("decompressed", "bytes_decompressed"),
        ("rows_scanned", "rows_scanned"),
    )
    rows = []
    for name, op in ledger.ordered_operators():
        cells = [name]
        for header, attr in columns:
            if attr is None:
                cells.append(f"{op.seconds * 1000:.2f}")
            else:
                cells.append(str(getattr(op, attr)))
        rows.append(cells)
    total = ledger.totals()
    total_cells = ["TOTAL"]
    for header, attr in columns:
        if attr is None:
            total_cells.append(f"{total.seconds * 1000:.2f}")
        else:
            total_cells.append(str(getattr(total, attr)))
    rows.append(total_cells)

    headers = ["operator"] + [header for header, _ in columns]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]

    def fmt(cells):
        first = cells[0].ljust(widths[0])
        rest = "  ".join(
            cell.rjust(widths[i + 1]) for i, cell in enumerate(cells[1:])
        )
        return f"  {first}  {rest}"

    lines = []
    if physical_plan:
        lines.append(physical_plan)
    lines.append(f"resource ledger (wall time {elapsed * 1000:.2f} ms):")
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    for cells in rows:
        lines.append(fmt(cells))
    caches = [
        f"{kind}={getattr(ledger, f'{kind}_cache_hits')}"
        f"/{getattr(ledger, f'{kind}_cache_hits') + getattr(ledger, f'{kind}_cache_misses')}"
        for kind in ("box", "query", "value")
    ]
    lines.append(f"  cache hits (hit/lookups): {', '.join(caches)}")
    lines.append(f"  decoded values: {ledger.decoded_values}")
    if ledger.budget is not None:
        budget = ledger.budget.as_dict()
        lines.append(
            "  budget: "
            f"read_bytes {budget['read_bytes']}"
            + (
                f"/{budget['max_read_bytes']}"
                if budget["max_read_bytes"] is not None
                else ""
            )
            + f", decoded_values {budget['decoded_values']}"
            + (
                f"/{budget['max_decoded_values']}"
                if budget["max_decoded_values"] is not None
                else ""
            )
        )
    if stats is not None:
        lines.append(
            "  stats: "
            f"{stats.blocks_visited} block(s) visited, "
            f"{stats.blocks_pruned} pruned, "
            f"{stats.capsules_considered} capsule(s) considered, "
            f"{stats.capsules_filtered} filtered, "
            f"{stats.entries_matched} entr(ies) matched"
        )
    return "\n".join(lines)


def explain_block(
    box: CapsuleBox, command: Union[QueryCommand, QueryPlan], name: str
) -> BlockPlan:
    """Render every (search string keyword, vector) decision of one block.

    Accepts a pre-built :class:`QueryPlan` (the executor's EXPLAIN path)
    or a raw :class:`QueryCommand`, which is planned on the spot.  The
    distinct search strings and their order come from the plan — the same
    dedup the Match operator's memo performs.
    """
    query_plan = (
        command
        if isinstance(command, QueryPlan)
        else build_plan(command, OutputMode.EXPLAIN)
    )
    plan = BlockPlan(name)
    searches = query_plan.search_strings()

    for group_idx, group in enumerate(box.groups):
        template = group.template
        constants = [t for t in template.tokens if t is not None]
        for search in searches:
            for keyword in search.keywords:
                if keyword.needs_regex:
                    continue  # handled by the regex path; skip in summary
                if any(keyword.text in const for const in constants):
                    plan.template_hits.append(
                        f"{keyword.text!r} inside static pattern of group {group_idx}"
                    )
        for var_idx, encoded in enumerate(group.vectors):
            for search in searches:
                for keyword in search.keywords:
                    plan.vector_plans.append(
                        _plan_vector(group_idx, var_idx, encoded, keyword)
                    )
    return plan


def _plan_vector(group_idx: int, var_idx: int, encoded, keyword) -> VectorPlan:
    mode = MatchMode.SUBSTRING
    base = dict(
        group=group_idx,
        var=var_idx,
        keyword=keyword.text,
        mode=mode.value,
    )
    if keyword.needs_regex:
        return VectorPlan(
            kind=_kind(encoded), decision="regex-scan",
            detail="wildcard/ignore-case keywords verify candidate rows by regex",
            **base,
        )
    if isinstance(encoded, RealEncodedVector):
        stamps = [c.stamp for c in encoded.subvar_capsules]
        candidates = locate(encoded.pattern, stamps, keyword.text, mode)
        if candidates is TOO_COMPLEX:
            decision, detail = "scan", "candidate enumeration exceeded budget"
        elif not candidates:
            decision = "filtered"
            detail = f"pattern {encoded.pattern.display()!r} + stamps prove absence"
        elif candidates == [()]:
            decision, detail = "candidates", "keyword inside the runtime pattern's constants"
        else:
            decision = "candidates"
            detail = f"{len(candidates)} possible match(es)"
        if encoded.outlier_rows and decision == "filtered":
            decision = "candidates"
            detail += "; outlier capsule still scanned"
        return VectorPlan(kind="real", decision=decision, detail=detail, **base)
    if isinstance(encoded, NominalEncodedVector):
        alive = 0
        for dp in encoded.dict_patterns:
            from ..capsule.stamp import CapsuleStamp

            stamps = [
                CapsuleStamp(m, l)
                for m, l in zip(dp.subvar_masks, dp.subvar_maxlens)
            ]
            result = locate(dp.pattern, stamps, keyword.text, mode)
            if result is TOO_COMPLEX or result:
                alive += 1
        if alive == 0:
            return VectorPlan(
                kind="nominal", decision="filtered",
                detail="no dictionary pattern can produce the keyword",
                **base,
            )
        return VectorPlan(
            kind="nominal", decision="candidates",
            detail=f"{alive}/{len(encoded.dict_patterns)} dictionary region(s) to check",
            **base,
        )
    if isinstance(encoded, PlainEncodedVector):
        if not encoded.capsule.stamp.admits(keyword.text):
            return VectorPlan(
                kind="plain", decision="filtered",
                detail="vector-level stamp rejects the keyword",
                **base,
            )
        return VectorPlan(
            kind="plain", decision="scan", detail="whole-vector scan required", **base
        )
    return VectorPlan(kind="?", decision="scan", **base)


def _kind(encoded) -> str:
    if isinstance(encoded, RealEncodedVector):
        return "real"
    if isinstance(encoded, NominalEncodedVector):
        return "nominal"
    return "plain"
