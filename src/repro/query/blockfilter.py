"""Block-level query pruning: trigram Bloom filters and charset masks.

:func:`command_might_match` decides whether a whole CapsuleBox can be
skipped for a query: if every OR-branch contains some positive literal
fragment whose trigrams are missing from the block's Bloom filter, no
entry of the block can match.  Wildcard keywords contribute their literal
runs; ignore-case and short (<3 char) fragments cannot be checked and
conservatively pass — the prune is always sound, never lossy.

:func:`summary_might_match` is the zero-read variant over a
:class:`~repro.blockstore.index.BlockSummary` from the persistent prune
index: it applies the same Bloom check (when bloom bits were compiled
into the archive) plus the §5.1 charset-mask check hoisted to block
granularity.  The engine matches every keyword fragment within a single
rendered token, and the summary mask is the union of template-constant,
capsule-stamp and pattern-constant masks, so a fragment whose mask is
not subsumed cannot occur anywhere in the block.  Case-insensitive
fragments skip the mask check (the classes are case-split); negated
terms never prune.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..common import chartypes
from ..common.bloom import BloomFilter
from .language import QueryCommand, Term

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..blockstore.index import BlockSummary


def term_might_match(bloom: BloomFilter, term: Term) -> bool:
    """Could this (positive) term match some line of the block?"""
    if term.negated:
        # A negated term is satisfied by absence; it cannot prune.
        return True
    search = term.search
    if search.ignore_case:
        return True  # trigrams are case-exact
    for keyword in search.keywords:
        fragments = (
            keyword.literals() if keyword.is_wildcard else [keyword.text]
        )
        for fragment in fragments:
            if not bloom.might_contain_text(fragment):
                return False
    return True


def command_might_match(bloom: BloomFilter, command: QueryCommand) -> bool:
    """Could any entry of the block satisfy *command*?"""
    for disjunct in command.disjuncts:
        if all(term_might_match(bloom, term) for term in disjunct):
            return True
    return False


def summary_term_might_match(
    summary: "BlockSummary",
    term: Term,
    use_stamps: bool = True,
    use_bloom: bool = True,
) -> bool:
    """Zero-read variant of :func:`term_might_match` over an index entry."""
    if term.negated:
        return True
    search = term.search
    for keyword in search.keywords:
        fragments = (
            keyword.literals() if keyword.is_wildcard else [keyword.text]
        )
        for fragment in fragments:
            if not fragment:
                continue
            if (
                use_stamps
                and not search.ignore_case
                and not chartypes.mask_subsumes(
                    summary.type_mask, chartypes.type_mask(fragment)
                )
            ):
                return False
            if (
                use_bloom
                and summary.bloom is not None
                and not search.ignore_case
                and not summary.bloom.might_contain_text(fragment)
            ):
                return False
    return True


def summary_might_match(
    summary: "BlockSummary",
    command: QueryCommand,
    use_stamps: bool = True,
    use_bloom: bool = True,
) -> bool:
    """Could any entry of the summarized block satisfy *command*?

    Sound for the same reason the per-capsule checks are: every check is
    necessary for a match, so a False here proves no line can match.
    """
    for disjunct in command.disjuncts:
        if all(
            summary_term_might_match(summary, term, use_stamps, use_bloom)
            for term in disjunct
        ):
            return True
    return False
