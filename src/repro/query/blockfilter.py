"""Block-level query pruning via trigram Bloom filters (extension).

:func:`command_might_match` decides whether a whole CapsuleBox can be
skipped for a query: if every OR-branch contains some positive literal
fragment whose trigrams are missing from the block's Bloom filter, no
entry of the block can match.  Wildcard keywords contribute their literal
runs; ignore-case and short (<3 char) fragments cannot be checked and
conservatively pass — the prune is always sound, never lossy.
"""

from __future__ import annotations

from ..common.bloom import BloomFilter
from .language import QueryCommand, Term


def term_might_match(bloom: BloomFilter, term: Term) -> bool:
    """Could this (positive) term match some line of the block?"""
    if term.negated:
        # A negated term is satisfied by absence; it cannot prune.
        return True
    search = term.search
    if search.ignore_case:
        return True  # trigrams are case-exact
    for keyword in search.keywords:
        fragments = (
            keyword.literals() if keyword.is_wildcard else [keyword.text]
        )
        for fragment in fragments:
            if not bloom.might_contain_text(fragment):
                return False
    return True


def command_might_match(bloom: BloomFilter, command: QueryCommand) -> bool:
    """Could any entry of the block satisfy *command*?"""
    for disjunct in command.disjuncts:
        if all(term_might_match(bloom, term) for term in disjunct):
            return True
    return False
