"""Fixed-length matching within decompressed Capsules (paper §5.2).

For the fixed layout, every value occupies ``width`` bytes, so:

* a hit at byte position ``p`` belongs to row ``p // width`` (O(1));
* candidate rows from one Capsule can be *checked directly* in another
  Capsule without scanning it;
* matches never silently cross value boundaries, because values cannot
  contain the NUL pad byte (bounds are still checked explicitly).

Two scan kernels implement these rules, selected by
``QuerySettings.scan_kernel`` (config ``scan_kernel``, env
``LOGGREP_SCAN_KERNEL``):

* ``"bytes"`` (default) — the kernels of :mod:`repro.capsule.scan`:
  ``bytes.find`` hops over the padded payload with stride-aligned resume
  points, memoryview slice comparison, zero per-row decoding.
* ``"python"`` — the original per-position path over the pluggable search
  engines of :mod:`repro.common.textalgo` (Boyer–Moore, the paper's
  choice; KMP for the ``w/o fixed`` ablation; CPython ``find``).  Kept
  selectable for fidelity experiments and as the differential-testing
  oracle for the bytes kernels.

Every scan is instrumented: ``loggrep_scan_rows_total`` counts rows
covered, ``loggrep_scan_kernel_seconds`` records per-Capsule latency
(both labelled by kernel), and a ``scan`` span nests under the Match
operator when tracing is on.

For the variable layout (the ``w/o fixed`` ablation and LogGrep-SP),
values are NUL-separated and rows must be recovered by counting
separators, which costs an offsets scan per Capsule — exactly the overhead
padding exists to remove.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import List, Optional, Sequence

from ..capsule import scan
from ..capsule.capsule import LAYOUT_FIXED, PAD, Capsule
from ..common.rowset import RowSet
from ..common.textalgo import find_all
from ..obs import ledger as ledger_channel
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .modes import MatchMode, value_matches

#: Selectable scan kernels.
SCAN_KERNELS = ("bytes", "python")

_SCAN_ROWS = get_registry().counter(
    "loggrep_scan_rows_total",
    "Capsule rows covered by scan kernels, by kernel",
)
_SCAN_SECONDS = get_registry().histogram(
    "loggrep_scan_kernel_seconds",
    "Per-Capsule scan kernel latency, by kernel",
)


def search_capsule(
    capsule: Capsule,
    fragment: str,
    mode: MatchMode,
    engine: str = "native",
    rows_hint: Optional[Sequence[int]] = None,
    kernel: str = "python",
) -> RowSet:
    """Rows of *capsule* whose value matches *fragment* under *mode*.

    ``rows_hint`` (§5.2's direct checking) restricts the test to candidate
    rows found in another Capsule — only possible with the fixed layout.
    ``kernel`` selects the bytes kernels or the original python path.
    """
    if kernel not in SCAN_KERNELS:
        raise ValueError(
            f"unknown scan kernel {kernel!r}; pick one of {SCAN_KERNELS}"
        )
    covered = len(rows_hint) if rows_hint is not None else capsule.count
    start = time.perf_counter()
    with get_tracer().span(
        "scan", kernel=kernel, mode=mode.value, rows=covered
    ):
        if kernel == "bytes":
            result = _search_bytes(capsule, fragment, mode, rows_hint)
        elif capsule.layout == LAYOUT_FIXED:
            result = _search_fixed(capsule, fragment, mode, engine, rows_hint)
        else:
            result = _search_variable(capsule, fragment, mode, engine)
    _SCAN_ROWS.inc(covered, kernel=kernel)
    _SCAN_SECONDS.observe(time.perf_counter() - start, kernel=kernel)
    if kernel != "bytes":
        # The python path never enters capsule.scan, so its coverage is
        # charged here; the bytes kernels charge inside scan_region.
        ledger_channel.charge_rows_scanned(covered)
    return result


def _search_bytes(
    capsule: Capsule,
    fragment: str,
    mode: MatchMode,
    rows_hint: Optional[Sequence[int]],
) -> RowSet:
    """Dispatch to the byte-level kernels of :mod:`repro.capsule.scan`."""
    n = capsule.count
    if n == 0:
        return RowSet.empty(n)
    needle = fragment.encode("utf-8")
    plain = capsule.plain()
    if capsule.layout == LAYOUT_FIXED:
        if rows_hint is not None:
            rows = scan.check_rows_fixed(
                plain, capsule.width, rows_hint, needle, mode.value
            )
        else:
            rows = scan.scan_fixed(
                plain, capsule.width, n, needle, mode.value
            )
    else:
        rows = scan.scan_variable(
            plain, capsule._variable_offsets(), n, needle, mode.value
        )
    # Kernel rows are already in-universe; build the bitmap without the
    # per-row bounds check of RowSet.add.
    bits = 0
    for row in rows:
        bits |= 1 << row
    return RowSet(n, bits)


def _search_fixed(
    capsule: Capsule,
    fragment: str,
    mode: MatchMode,
    engine: str,
    rows_hint: Optional[Sequence[int]],
) -> RowSet:
    n = capsule.count
    width = capsule.width
    result = RowSet.empty(n)
    if n == 0:
        return result
    frag = fragment.encode("utf-8")
    flen = len(frag)

    if width == 0:
        # Every value is the empty string: only the empty fragment matches.
        return RowSet.full(n) if flen == 0 else result
    if flen > width:
        return result

    buf = capsule.plain()

    if flen == 0:
        if mode is not MatchMode.EXACT:
            return RowSet.full(n)  # "" is a prefix/suffix/substring of all
        for row in range(n):
            if buf[row * width] == 0:  # value is entirely padding
                result.add(row)
        return result

    if rows_hint is not None:
        # Direct checking of candidate rows (no scan).
        for row in rows_hint:
            start = row * width
            value = buf[start : start + width]
            if _slot_matches(value, frag, mode):
                result.add(row)
        return result

    if mode is MatchMode.EXACT:
        target = frag.ljust(width, PAD)
        for pos in find_all(buf, target, engine):
            if pos % width == 0:
                result.add(pos // width)
        return result

    if mode is MatchMode.PREFIX:
        for pos in find_all(buf, frag, engine):
            if pos % width == 0:
                result.add(pos // width)
        return result

    if mode is MatchMode.SUFFIX:
        for pos in find_all(buf, frag, engine):
            row = pos // width
            end = pos + flen
            if end > (row + 1) * width:
                continue  # crosses a row boundary
            if end == (row + 1) * width or buf[end] == 0:
                result.add(row)
        return result

    # SUBSTRING: fragment contains no NUL, so a match that fits inside a
    # row's slot lies entirely within the real (unpadded) value.
    for pos in find_all(buf, frag, engine):
        row = pos // width
        if pos + flen <= (row + 1) * width:
            result.add(row)
    return result


def _slot_matches(slot: bytes, frag: bytes, mode: MatchMode) -> bool:
    value = slot.rstrip(PAD)
    if mode is MatchMode.EXACT:
        return value == frag
    if mode is MatchMode.PREFIX:
        return value.startswith(frag)
    if mode is MatchMode.SUFFIX:
        return value.endswith(frag)
    return frag in value


def _search_variable(
    capsule: Capsule, fragment: str, mode: MatchMode, engine: str
) -> RowSet:
    """Variable-length layout: scan, then recover rows from separators."""
    n = capsule.count
    result = RowSet.empty(n)
    if n == 0:
        return result
    buf = capsule.plain()
    frag = fragment.encode("utf-8")

    # Value boundaries: this offsets scan is the per-query cost that the
    # paper's fixed-length padding eliminates.
    offsets: List[int] = [0]
    pos = buf.find(PAD)
    while pos != -1:
        offsets.append(pos + 1)
        pos = buf.find(PAD, pos + 1)

    if len(frag) == 0 and mode is not MatchMode.EXACT:
        return RowSet.full(n)

    if mode is MatchMode.SUBSTRING:
        flen = len(frag)
        for pos in find_all(buf, frag, engine):
            row = bisect_right(offsets, pos) - 1
            end = offsets[row + 1] - 1 if row + 1 < len(offsets) else len(buf)
            if pos + flen <= end:
                result.add(row)
        return result

    text_frag = fragment
    for row in range(n):
        start = offsets[row]
        end = offsets[row + 1] - 1 if row + 1 < len(offsets) else len(buf)
        value = buf[start:end].decode("utf-8")
        if value_matches(value, text_frag, mode):
            result.add(row)
    return result
