"""Fixed-length matching within decompressed Capsules (paper §5.2).

For the fixed layout, every value occupies ``width`` bytes, so:

* Boyer–Moore can be used even though it skips characters — the hit row is
  ``position // width``;
* candidate rows from one Capsule can be *checked directly* in another
  Capsule without scanning it;
* matches never silently cross value boundaries, because values cannot
  contain the NUL pad byte (bounds are still checked explicitly).

For the variable layout (the ``w/o fixed`` ablation and LogGrep-SP),
values are NUL-separated and rows must be recovered by counting
separators, which costs an offsets scan per Capsule — exactly the overhead
padding exists to remove.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional, Sequence

from ..capsule.capsule import LAYOUT_FIXED, PAD, Capsule
from ..common.rowset import RowSet
from ..common.textalgo import find_all
from .modes import MatchMode, value_matches


def search_capsule(
    capsule: Capsule,
    fragment: str,
    mode: MatchMode,
    engine: str = "native",
    rows_hint: Optional[Sequence[int]] = None,
) -> RowSet:
    """Rows of *capsule* whose value matches *fragment* under *mode*.

    ``rows_hint`` (§5.2's direct checking) restricts the test to candidate
    rows found in another Capsule — only possible with the fixed layout.
    """
    if capsule.layout == LAYOUT_FIXED:
        return _search_fixed(capsule, fragment, mode, engine, rows_hint)
    return _search_variable(capsule, fragment, mode, engine)


def _search_fixed(
    capsule: Capsule,
    fragment: str,
    mode: MatchMode,
    engine: str,
    rows_hint: Optional[Sequence[int]],
) -> RowSet:
    n = capsule.count
    width = capsule.width
    result = RowSet.empty(n)
    if n == 0:
        return result
    frag = fragment.encode("utf-8")
    flen = len(frag)

    if width == 0:
        # Every value is the empty string: only the empty fragment matches.
        return RowSet.full(n) if flen == 0 else result
    if flen > width:
        return result

    buf = capsule.plain()

    if flen == 0:
        if mode is not MatchMode.EXACT:
            return RowSet.full(n)  # "" is a prefix/suffix/substring of all
        for row in range(n):
            if buf[row * width] == 0:  # value is entirely padding
                result.add(row)
        return result

    if rows_hint is not None:
        # Direct checking of candidate rows (no scan).
        for row in rows_hint:
            start = row * width
            value = buf[start : start + width]
            if _slot_matches(value, frag, mode):
                result.add(row)
        return result

    if mode is MatchMode.EXACT:
        target = frag.ljust(width, PAD)
        for pos in find_all(buf, target, engine):
            if pos % width == 0:
                result.add(pos // width)
        return result

    if mode is MatchMode.PREFIX:
        for pos in find_all(buf, frag, engine):
            if pos % width == 0:
                result.add(pos // width)
        return result

    if mode is MatchMode.SUFFIX:
        for pos in find_all(buf, frag, engine):
            row = pos // width
            end = pos + flen
            if end > (row + 1) * width:
                continue  # crosses a row boundary
            if end == (row + 1) * width or buf[end] == 0:
                result.add(row)
        return result

    # SUBSTRING: fragment contains no NUL, so a match that fits inside a
    # row's slot lies entirely within the real (unpadded) value.
    for pos in find_all(buf, frag, engine):
        row = pos // width
        if pos + flen <= (row + 1) * width:
            result.add(row)
    return result


def _slot_matches(slot: bytes, frag: bytes, mode: MatchMode) -> bool:
    value = slot.rstrip(PAD)
    if mode is MatchMode.EXACT:
        return value == frag
    if mode is MatchMode.PREFIX:
        return value.startswith(frag)
    if mode is MatchMode.SUFFIX:
        return value.endswith(frag)
    return frag in value


def _search_variable(
    capsule: Capsule, fragment: str, mode: MatchMode, engine: str
) -> RowSet:
    """Variable-length layout: scan, then recover rows from separators."""
    n = capsule.count
    result = RowSet.empty(n)
    if n == 0:
        return result
    buf = capsule.plain()
    frag = fragment.encode("utf-8")

    # Value boundaries: this offsets scan is the per-query cost that the
    # paper's fixed-length padding eliminates.
    offsets = [0]
    pos = buf.find(PAD)
    while pos != -1:
        offsets.append(pos + 1)
        pos = buf.find(PAD, pos + 1)

    if len(frag) == 0 and mode is not MatchMode.EXACT:
        return RowSet.full(n)

    if mode is MatchMode.SUBSTRING:
        flen = len(frag)
        for pos in find_all(buf, frag, engine):
            row = bisect_right(offsets, pos) - 1
            end = offsets[row + 1] - 1 if row + 1 < len(offsets) else len(buf)
            if pos + flen <= end:
                result.add(row)
        return result

    text_frag = fragment
    for row in range(n):
        start = offsets[row]
        end = offsets[row + 1] - 1 if row + 1 < len(offsets) else len(buf)
        value = buf[start:end].decode("utf-8")
        if value_matches(value, text_frag, mode):
            result.add(row)
    return result
