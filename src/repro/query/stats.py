"""Query execution counters.

The whole point of LogGrep is to *not* decompress Capsules; these counters
make that observable.  Benchmarks and the filtering-efficacy tests assert
on them, and `LogGrep.grep` returns them with every result.

The counters are one half of the observability layer (`repro.obs`): every
field is published into the process-wide MetricsRegistry after each query
via :meth:`QueryStats.publish`, and :func:`touch_capsule` — the single
choke point through which every Capsule decompression flows — emits a
``decompress`` span so traced queries account for every byte inflated.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import ContextManager, Dict, List, Optional, Tuple

from ..common.errors import BudgetExceeded
from ..obs import ledger as ledger_channel
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer


@dataclass
class QueryStats:
    """Counters accumulated while executing one query."""

    capsules_considered: int = 0
    capsules_filtered: int = 0  # proven irrelevant without decompression
    capsules_decompressed: int = 0
    bytes_decompressed: int = 0
    candidates_evaluated: int = 0
    fallback_scans: int = 0  # TOO_COMPLEX locator fallbacks
    cache_hits: int = 0
    blocks_visited: int = 0
    blocks_pruned: int = 0  # skipped via block-level Bloom filters
    blocks_time_pruned: int = 0  # subset of blocks_pruned: time window
    entries_matched: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Accumulate *other* field by field.

        Iterates ``dataclasses.fields`` so a newly added counter can never
        be silently dropped from aggregation.
        """
        for spec in dataclasses.fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def publish(self, elapsed: float) -> None:
        """Record this query in the process-wide metrics registry."""
        registry = get_registry()
        registry.counter(
            "loggrep_queries_total", "Queries executed"
        ).inc()
        registry.histogram(
            "loggrep_query_seconds", "End-to-end query latency"
        ).observe(elapsed)
        for spec in dataclasses.fields(self):
            registry.counter(
                f"loggrep_query_{spec.name}_total",
                f"QueryStats.{spec.name} summed over all queries",
            ).inc(getattr(self, spec.name))
        touched = self.capsules_filtered + self.capsules_decompressed
        if touched:
            registry.gauge(
                "loggrep_capsule_filter_ratio",
                "Fraction of capsules proven irrelevant without decompression "
                "in the most recent query",
            ).set(self.capsules_filtered / touched)


def touch_capsule(capsule, stats: QueryStats) -> None:
    """Record a decompression if *capsule* has not been opened yet."""
    if capsule.is_decompressed:
        return
    with get_tracer().span("decompress") as span:
        data = capsule.plain()
        span.set("bytes", len(data))
    stats.capsules_decompressed += 1
    stats.bytes_decompressed += len(data)
    ledger_channel.charge_decompress(len(data))


# ----------------------------------------------------------------------
# per-query resource ledger
# ----------------------------------------------------------------------

#: Canonical operator order of the per-block pipeline (plus the plan
#: stage); the EXPLAIN ANALYZE table and as_dict render in this order.
OPERATORS = (
    "plan",
    "block_filter",
    "load_box",
    "locate",
    "match",
    "aggregate",
    "reconstruct",
)


@dataclass
class OperatorStats:
    """What one pipeline operator cost across every block of a query.

    ``match`` runs nested inside ``locate`` (exactly like the span tree),
    so wall times of the two overlap rather than sum; the deep charges
    (reads, fetches, rows) are attributed to the *innermost* open
    operator, so those columns are disjoint and additive.
    """

    calls: int = 0
    seconds: float = 0.0
    range_reads: int = 0  # ranged store reads issued while this op was open
    read_bytes: int = 0  # bytes off the store (ranged + whole-blob)
    capsules_fetched: int = 0  # payloads materialized (lazy or prefetch)
    capsules_decompressed: int = 0
    bytes_decompressed: int = 0
    rows_scanned: int = 0  # capsule rows covered by the scan kernels

    def merge(self, other: "OperatorStats") -> None:
        """Accumulate *other* field by field (drift-proof, like QueryStats)."""
        for name in _OPSTAT_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


#: Field names resolved once — merge() runs per (block, operator) pair on
#: every accounted query, too hot for a dataclasses.fields() call each time.
_OPSTAT_FIELDS = tuple(spec.name for spec in dataclasses.fields(OperatorStats))


class BudgetMeter:
    """Query-global spend tracker for the soft per-query budgets.

    One meter is shared by every per-block ledger of a query (worker
    threads included), so the budget bounds the *query*, not one block.
    Charges are lock-protected; the lock is only ever taken when a budget
    is configured, so unbudgeted accounting pays nothing here.
    """

    __slots__ = ("max_read_bytes", "max_decoded_values", "read_bytes",
                 "decoded_values", "_lock")

    def __init__(
        self,
        max_read_bytes: Optional[int] = None,
        max_decoded_values: Optional[int] = None,
    ):
        self.max_read_bytes = max_read_bytes
        self.max_decoded_values = max_decoded_values
        self.read_bytes = 0
        self.decoded_values = 0
        self._lock = threading.Lock()

    def charge_read(self, nbytes: int) -> None:
        limit = self.max_read_bytes
        if limit is None:
            return
        with self._lock:
            self.read_bytes += nbytes
            spent = self.read_bytes
        if spent > limit:
            raise BudgetExceeded("read_bytes", limit, spent)

    def charge_decoded(self, count: int) -> None:
        limit = self.max_decoded_values
        if limit is None:
            return
        with self._lock:
            self.decoded_values += count
            spent = self.decoded_values
        if spent > limit:
            raise BudgetExceeded("decoded_values", limit, spent)

    def as_dict(self) -> dict:
        return {
            "max_read_bytes": self.max_read_bytes,
            "max_decoded_values": self.max_decoded_values,
            "read_bytes": self.read_bytes,
            "decoded_values": self.decoded_values,
        }


class _OperatorTimer:
    """Context manager timing one operator and routing deep charges to it.

    Safe to reuse sequentially (each entry accumulates another call onto
    the same :class:`OperatorStats`) — the executor's Match stage keeps
    one per block and re-enters it for every search instead of paying an
    allocation per match.  The entry tuple is built once up front; the
    enter/exit path is two ``perf_counter`` reads and two thread-local
    stores.
    """

    __slots__ = ("_entry", "_op", "_prev", "_start")

    def __init__(self, ledger: "QueryLedger", op: OperatorStats):
        self._entry: ledger_channel.Entry = (ledger, op)
        self._op = op
        self._prev: Optional[ledger_channel.Entry] = None
        self._start = 0.0

    def __enter__(self) -> None:
        self._prev = ledger_channel.set_entry(self._entry)
        self._start = time.perf_counter()
        return None

    def __exit__(self, *exc: object) -> None:
        op = self._op
        op.seconds += time.perf_counter() - self._start
        op.calls += 1
        ledger_channel.set_entry(self._prev)
        return None


#: Cache-lookup kinds the ledger distinguishes.
CACHE_KINDS = ("box", "query", "value", "fragment")

#: kind -> (miss attribute, hit attribute); indexed by the hit bool on the
#: per-lookup charge path, so no f-string formatting per cache access.
_CACHE_ATTRS = {
    kind: (f"{kind}_cache_misses", f"{kind}_cache_hits") for kind in CACHE_KINDS
}


class QueryLedger:
    """Per-query resource accounting across the whole read path.

    The executor opens one :meth:`operator` context per pipeline stage;
    while it is open, every deep charge of that thread — ranged reads
    (:mod:`repro.blockstore.blobsource`), capsule payload fetches
    (:mod:`repro.capsule.capsule`), rows covered by the byte kernels
    (:mod:`repro.capsule.scan`), decompressions (:func:`touch_capsule`)
    and cache lookups (:mod:`repro.query.cache`) — lands on that
    operator's :class:`OperatorStats`.  Under ``query_parallelism > 1``
    the scheduler gives each block a child ledger (:meth:`spawn`) and
    folds them back with :meth:`merge_children`, so the totals are exact
    regardless of the worker count, while the shared :class:`BudgetMeter`
    enforces the per-query budgets globally and immediately.
    """

    def __init__(self, budget: Optional[BudgetMeter] = None):
        self.operators: Dict[str, OperatorStats] = {}
        self.box_cache_hits = 0
        self.box_cache_misses = 0
        self.query_cache_hits = 0
        self.query_cache_misses = 0
        self.value_cache_hits = 0
        self.value_cache_misses = 0
        self.fragment_cache_hits = 0
        self.fragment_cache_misses = 0
        self.decoded_values = 0
        self.budget = budget
        self._children: List["QueryLedger"] = []
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # executor surface
    # ------------------------------------------------------------------
    def operator(self, name: str) -> ContextManager[None]:
        """Time one pipeline stage and route this thread's deep charges
        to it.  Reentrant: ``match`` inside ``locate`` restores the outer
        operator on exit, exactly like the span stack."""
        return _OperatorTimer(self, self._op(name))

    def spawn(self) -> "QueryLedger":
        """A child ledger for one block (same budget meter, merged later)."""
        child = QueryLedger(self.budget)
        with self._lock:
            self._children.append(child)
        return child

    def merge_children(self) -> None:
        """Fold every spawned per-block ledger into this one, in order."""
        with self._lock:
            children, self._children = self._children, []
        for child in children:
            self.merge(child)

    def merge(self, other: "QueryLedger") -> None:
        for name, op in other.operators.items():
            self._op(name).merge(op)
        self.box_cache_hits += other.box_cache_hits
        self.box_cache_misses += other.box_cache_misses
        self.query_cache_hits += other.query_cache_hits
        self.query_cache_misses += other.query_cache_misses
        self.value_cache_hits += other.value_cache_hits
        self.value_cache_misses += other.value_cache_misses
        self.fragment_cache_hits += other.fragment_cache_hits
        self.fragment_cache_misses += other.fragment_cache_misses
        self.decoded_values += other.decoded_values

    # ------------------------------------------------------------------
    # charge sinks (called via repro.obs.ledger from the deep layers)
    # ------------------------------------------------------------------
    def charge_read(self, op: OperatorStats, nbytes: int, reads: int = 1) -> None:
        op.range_reads += reads
        op.read_bytes += nbytes
        if self.budget is not None:
            self.budget.charge_read(nbytes)

    def charge_blob_read(self, op: OperatorStats, nbytes: int) -> None:
        op.read_bytes += nbytes
        if self.budget is not None:
            self.budget.charge_read(nbytes)

    def charge_capsule_fetch(self, op: OperatorStats, nbytes: int) -> None:
        op.capsules_fetched += 1

    def charge_decompress(self, op: OperatorStats, nbytes: int) -> None:
        op.capsules_decompressed += 1
        op.bytes_decompressed += nbytes

    def charge_rows_scanned(self, op: OperatorStats, rows: int) -> None:
        op.rows_scanned += rows

    def charge_decoded_values(self, count: int) -> None:
        self.decoded_values += count
        if self.budget is not None:
            self.budget.charge_decoded(count)

    def charge_cache(self, kind: str, hit: bool) -> None:
        attr = _CACHE_ATTRS[kind][hit]
        setattr(self, attr, getattr(self, attr) + 1)

    def charge_box_cache(self, hit: bool) -> None:
        """Direct box-cache charge (the lookup precedes any operator)."""
        if hit:
            self.box_cache_hits += 1
        else:
            self.box_cache_misses += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _op(self, name: str) -> OperatorStats:
        op = self.operators.get(name)
        if op is None:
            op = self.operators[name] = OperatorStats()
        return op

    def ordered_operators(self) -> List[Tuple[str, OperatorStats]]:
        """(name, stats) pairs in canonical pipeline order."""
        out = [
            (name, self.operators[name])
            for name in OPERATORS
            if name in self.operators
        ]
        out.extend(
            (name, op)
            for name, op in self.operators.items()
            if name not in OPERATORS
        )
        return out

    def totals(self) -> OperatorStats:
        """Every operator summed — the query-level resource bill."""
        total = OperatorStats()
        for op in self.operators.values():
            total.merge(op)
        return total

    @property
    def read_bytes(self) -> int:
        return sum(op.read_bytes for op in self.operators.values())

    @property
    def range_reads(self) -> int:
        return sum(op.range_reads for op in self.operators.values())

    @property
    def rows_scanned(self) -> int:
        return sum(op.rows_scanned for op in self.operators.values())

    def as_dict(self) -> dict:
        return {
            "operators": {
                name: op.as_dict() for name, op in self.ordered_operators()
            },
            "caches": {
                kind: {
                    "hits": getattr(self, f"{kind}_cache_hits"),
                    "misses": getattr(self, f"{kind}_cache_misses"),
                }
                for kind in CACHE_KINDS
            },
            "decoded_values": self.decoded_values,
            "budget": self.budget.as_dict() if self.budget is not None else None,
            "totals": self.totals().as_dict(),
        }


_NULL_CONTEXT: ContextManager[None] = nullcontext()


class NullQueryLedger(QueryLedger):
    """The disabled ledger: every surface is a no-op.

    The executor always holds *a* ledger, so the pipeline has no
    ``if ledger:`` branches; when accounting is off this object keeps the
    thread-local charge channel empty and allocates nothing per block.
    """

    @property
    def enabled(self) -> bool:
        return False

    def operator(self, name: str) -> ContextManager[None]:
        return _NULL_CONTEXT

    def spawn(self) -> "QueryLedger":
        return self

    def merge_children(self) -> None:
        return None

    def charge_box_cache(self, hit: bool) -> None:
        return None


#: Shared disabled ledger (analogous to ``NULL_TRACER``).
NULL_LEDGER = NullQueryLedger()
