"""Query execution counters.

The whole point of LogGrep is to *not* decompress Capsules; these counters
make that observable.  Benchmarks and the filtering-efficacy tests assert
on them, and `LogGrep.grep` returns them with every result.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class QueryStats:
    """Counters accumulated while executing one query."""

    capsules_considered: int = 0
    capsules_filtered: int = 0  # proven irrelevant without decompression
    capsules_decompressed: int = 0
    bytes_decompressed: int = 0
    candidates_evaluated: int = 0
    fallback_scans: int = 0  # TOO_COMPLEX locator fallbacks
    cache_hits: int = 0
    blocks_visited: int = 0
    blocks_pruned: int = 0  # skipped via block-level Bloom filters
    entries_matched: int = 0

    def merge(self, other: "QueryStats") -> None:
        self.capsules_considered += other.capsules_considered
        self.capsules_filtered += other.capsules_filtered
        self.capsules_decompressed += other.capsules_decompressed
        self.bytes_decompressed += other.bytes_decompressed
        self.candidates_evaluated += other.candidates_evaluated
        self.fallback_scans += other.fallback_scans
        self.cache_hits += other.cache_hits
        self.blocks_visited += other.blocks_visited
        self.blocks_pruned += other.blocks_pruned
        self.entries_matched += other.entries_matched


def touch_capsule(capsule, stats: QueryStats) -> None:
    """Record a decompression if *capsule* has not been opened yet."""
    if capsule._plain is None:  # noqa: SLF001 - deliberate peek at the cache
        stats.capsules_decompressed += 1
        stats.bytes_decompressed += len(capsule.plain())
