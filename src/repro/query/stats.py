"""Query execution counters.

The whole point of LogGrep is to *not* decompress Capsules; these counters
make that observable.  Benchmarks and the filtering-efficacy tests assert
on them, and `LogGrep.grep` returns them with every result.

The counters are one half of the observability layer (`repro.obs`): every
field is published into the process-wide MetricsRegistry after each query
via :meth:`QueryStats.publish`, and :func:`touch_capsule` — the single
choke point through which every Capsule decompression flows — emits a
``decompress`` span so traced queries account for every byte inflated.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..obs.metrics import get_registry
from ..obs.trace import get_tracer


@dataclass
class QueryStats:
    """Counters accumulated while executing one query."""

    capsules_considered: int = 0
    capsules_filtered: int = 0  # proven irrelevant without decompression
    capsules_decompressed: int = 0
    bytes_decompressed: int = 0
    candidates_evaluated: int = 0
    fallback_scans: int = 0  # TOO_COMPLEX locator fallbacks
    cache_hits: int = 0
    blocks_visited: int = 0
    blocks_pruned: int = 0  # skipped via block-level Bloom filters
    entries_matched: int = 0

    def merge(self, other: "QueryStats") -> None:
        """Accumulate *other* field by field.

        Iterates ``dataclasses.fields`` so a newly added counter can never
        be silently dropped from aggregation.
        """
        for spec in dataclasses.fields(self):
            setattr(
                self,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def publish(self, elapsed: float) -> None:
        """Record this query in the process-wide metrics registry."""
        registry = get_registry()
        registry.counter(
            "loggrep_queries_total", "Queries executed"
        ).inc()
        registry.histogram(
            "loggrep_query_seconds", "End-to-end query latency"
        ).observe(elapsed)
        for spec in dataclasses.fields(self):
            registry.counter(
                f"loggrep_query_{spec.name}_total",
                f"QueryStats.{spec.name} summed over all queries",
            ).inc(getattr(self, spec.name))
        touched = self.capsules_filtered + self.capsules_decompressed
        if touched:
            registry.gauge(
                "loggrep_capsule_filter_ratio",
                "Fraction of capsules proven irrelevant without decompression "
                "in the most recent query",
            ).set(self.capsules_filtered / touched)


def touch_capsule(capsule, stats: QueryStats) -> None:
    """Record a decompression if *capsule* has not been opened yet."""
    if capsule.is_decompressed:
        return
    with get_tracer().span("decompress") as span:
        data = capsule.plain()
        span.set("bytes", len(data))
    stats.capsules_decompressed += 1
    stats.bytes_decompressed += len(data)
