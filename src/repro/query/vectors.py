"""Query-time views over encoded variable vectors.

A reader answers two questions about one variable vector of one group:

* ``search(fragment, mode)`` — which group rows could contain the
  fragment?  (Locator → stamp filter → fixed-length matching.)
* ``value_at(row)`` — the exact original value (for reconstruction).

Readers translate between *capsule row space* (rows stored in a Capsule,
excluding outliers) and *group row space* (entry rows of the group).

Candidate filtering runs on payload **bytes** (``settings.scan_kernel ==
"bytes"``, the default): the scan kernels of :mod:`repro.capsule.scan`
match fragments directly against the padded buffers, dictionary regions
are scanned in place with the §5.2 Σ count·width jump, and index Capsules
are compared slot-by-slot as raw byte cells.  Only rows that survive
matching are ever decoded, and those decoded columns are retained in the
bounded :class:`~repro.query.cache.CapsuleValueCache` so wildcard
verification, reconstruction and dictionary reads never re-decode the
same Capsule across queries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from typing import Callable, List, Optional, Sequence, Union

from ..capsule import scan
from ..obs import ledger as ledger_channel
from ..capsule.assembler import (
    NominalEncodedVector,
    PlainEncodedVector,
    RealEncodedVector,
)
from ..capsule.capsule import LAYOUT_FIXED, LAYOUT_REGION, Capsule
from ..capsule.stamp import CapsuleStamp
from ..common.rowset import RowSet
from ..common.textalgo import find_all
from ..runtime.pattern import Const, RuntimePattern
from .cache import get_value_cache
from .locator import TOO_COMPLEX, locate
from .matcher import search_capsule
from .modes import MatchMode, value_matches
from .stats import QueryStats, touch_capsule

from dataclasses import dataclass


@dataclass
class QuerySettings:
    """Per-query execution switches (see §6.3 ablations)."""

    use_stamps: bool = True
    engine: str = "native"
    #: "bytes" = direct byte-level kernels (repro.capsule.scan);
    #: "python" = the original per-position path over textalgo engines.
    scan_kernel: str = "bytes"


def _cached_values(capsule: Capsule) -> List[str]:
    """Decoded values of *capsule* via the process-wide value cache."""
    return get_value_cache().get(capsule)


def _cached_value_at(capsule: Capsule, row: int) -> str:
    """One decoded value: cached column when present, O(1) fetch otherwise."""
    return get_value_cache().value_at(capsule, row)


class RealVectorReader:
    """Reader over a real variable vector (sub-variable Capsules)."""

    def __init__(
        self,
        encoded: RealEncodedVector,
        settings: QuerySettings,
        stats: QueryStats,
    ):
        self.encoded = encoded
        self.settings = settings
        self.stats = stats
        self.num_rows = encoded.num_rows
        self._stamps: List[CapsuleStamp] = [
            capsule.stamp for capsule in encoded.subvar_capsules
        ]
        self._outlier_set = set(encoded.outlier_rows)
        self._matched_map: Optional[List[int]] = None  # capsule row → group row

    # ------------------------------------------------------------------
    def _matched_rows(self) -> List[int]:
        if self._matched_map is None:
            if not self._outlier_set:
                self._matched_map = list(range(self.num_rows))
            else:
                self._matched_map = [
                    row for row in range(self.num_rows) if row not in self._outlier_set
                ]
        return self._matched_map

    @property
    def _num_matched(self) -> int:
        return self.num_rows - len(self.encoded.outlier_rows)

    def _search_one(
        self,
        capsule: Capsule,
        fragment: str,
        mode: MatchMode,
        rows_hint: Optional[Sequence[int]] = None,
    ) -> RowSet:
        return search_capsule(
            capsule,
            fragment,
            mode,
            self.settings.engine,
            rows_hint=rows_hint,
            kernel=self.settings.scan_kernel,
        )

    # ------------------------------------------------------------------
    def search(self, fragment: str, mode: MatchMode) -> RowSet:
        result = RowSet.empty(self.num_rows)
        self._search_matched(fragment, mode, result)
        self._search_outliers_plain(fragment, mode, result)
        return result

    def _search_matched(self, fragment: str, mode: MatchMode, result: RowSet) -> None:
        num_matched = self._num_matched
        if num_matched == 0:
            return
        encoded = self.encoded
        candidates = locate(
            encoded.pattern,
            self._stamps,
            fragment,
            mode,
            use_stamps=self.settings.use_stamps,
        )
        if candidates is TOO_COMPLEX:
            self.stats.fallback_scans += 1
            self._scan_matched(fragment, mode, result)
            return
        capsule_rows = RowSet.empty(num_matched)
        for candidate in candidates:
            self.stats.candidates_evaluated += 1
            if not candidate:
                capsule_rows = RowSet.full(num_matched)
                break
            current: Optional[RowSet] = None
            for subvar, frag, frag_mode in candidate:
                capsule = encoded.subvar_capsules[subvar]
                self.stats.capsules_considered += 1
                hint = None
                if (
                    current is not None
                    and capsule.layout == LAYOUT_FIXED
                    and len(current) <= 64
                ):
                    # §5.2 direct checking: probe only candidate rows.
                    hint = current.rows()
                touch_capsule(capsule, self.stats)
                rows = self._search_one(capsule, frag, frag_mode, rows_hint=hint)
                current = rows if current is None else current & rows
                if not current:
                    break
            if current:
                capsule_rows = capsule_rows | current
        if capsule_rows:
            mapping = self._matched_rows()
            for crow in capsule_rows:
                result.add(mapping[crow])

    def _scan_matched(self, fragment: str, mode: MatchMode, result: RowSet) -> None:
        """Correct-but-slow fallback: reconstruct and test every value.

        The bytes kernel renders and matches raw byte values — no UTF-8
        decode, no string materialization beyond one ``bytes`` join per
        row; the python kernel keeps the original string path.
        """
        encoded = self.encoded
        for capsule in encoded.subvar_capsules:
            touch_capsule(capsule, self.stats)
        mapping = self._matched_rows()
        if self.settings.scan_kernel == "bytes":
            columns_b = [
                capsule.values_bytes() for capsule in encoded.subvar_capsules
            ]
            render_b = _byte_renderer(encoded.pattern, columns_b)
            needle = fragment.encode("utf-8")
            for crow in range(self._num_matched):
                if value_matches(render_b(crow), needle, mode):
                    result.add(mapping[crow])
            return
        columns = [_cached_values(capsule) for capsule in encoded.subvar_capsules]
        for crow in range(self._num_matched):
            value = encoded.pattern.render([col[crow] for col in columns])
            if value_matches(value, fragment, mode):
                result.add(mapping[crow])

    def _search_outliers_plain(
        self, fragment: str, mode: MatchMode, result: RowSet
    ) -> None:
        encoded = self.encoded
        if encoded.outlier_capsule is None:
            return
        # Outliers escaped the pattern, so every query must scan them.
        touch_capsule(encoded.outlier_capsule, self.stats)
        rows = self._search_one(encoded.outlier_capsule, fragment, mode)
        for orow in rows:
            result.add(encoded.outlier_rows[orow])

    # ------------------------------------------------------------------
    def search_wildcard(self, keyword, mode: MatchMode) -> RowSet:
        """Wildcard search: literal runs narrow the candidate rows through
        the normal pattern/stamp machinery (byte-level under the bytes
        kernel), then only those rows are decoded and regex-verified —
        the structured analogue of index-assisted wildcard matching."""
        result = RowSet.empty(self.num_rows)
        encoded = self.encoded
        regex = keyword.regex_for(mode)
        candidates = self._wildcard_candidates(keyword)
        if candidates is None:
            # No usable literal run: verify every matched row.
            if self._num_matched:
                mapping = self._matched_rows()
                for crow, value in enumerate(self._matched_values()):
                    if regex.search(value):
                        result.add(mapping[crow])
        elif candidates:
            for row in candidates:
                if regex.search(self.value_at(row)):
                    result.add(row)
        if encoded.outlier_capsule is not None:
            touch_capsule(encoded.outlier_capsule, self.stats)
            for orow, value in enumerate(_cached_values(encoded.outlier_capsule)):
                if regex.search(value):
                    result.add(encoded.outlier_rows[orow])
        return result

    def _wildcard_candidates(self, keyword) -> Optional[RowSet]:
        """Rows that contain every (case-sensitive) literal run of the
        keyword; None when no run is checkable."""
        literals = [run for run in keyword.literals() if run] if not getattr(
            keyword, "ignore_case", False
        ) else []
        if not literals:
            return None
        candidates: Optional[RowSet] = None
        result_space = RowSet.empty(self.num_rows)
        for run in literals:
            rows = RowSet.empty(self.num_rows)
            self._search_matched(run, MatchMode.SUBSTRING, rows)
            candidates = rows if candidates is None else candidates & rows
            if not candidates:
                self.stats.capsules_filtered += len(
                    self.encoded.subvar_capsules
                )
                return result_space
        return candidates

    def _matched_values(self) -> List[str]:
        encoded = self.encoded
        for capsule in encoded.subvar_capsules:
            touch_capsule(capsule, self.stats)
        columns = [_cached_values(capsule) for capsule in encoded.subvar_capsules]
        render = encoded.pattern.render
        if not columns:
            return [render(())] * self._num_matched
        return [render(parts) for parts in zip(*columns)]

    # ------------------------------------------------------------------
    def value_at(self, row: int) -> str:
        encoded = self.encoded
        if row in self._outlier_set:
            pos = bisect_left(encoded.outlier_rows, row)
            return _cached_value_at(encoded.outlier_capsule, pos)
        crow = row - bisect_left(encoded.outlier_rows, row)
        subvalues = [
            _cached_value_at(capsule, crow) for capsule in encoded.subvar_capsules
        ]
        return encoded.pattern.render(subvalues)

    def value_counts(self, rows: Optional[RowSet] = None) -> "Counter[str]":
        """value → occurrences among *rows* (all rows when None).

        Real vectors have no dictionary, so counting renders each row's
        sub-variable parts — this is the documented slow path of the
        Aggregate operator (its fast path is nominal index-cell
        counting).
        """
        if rows is None or rows.is_full():
            return Counter(self.values_list())
        return Counter(self.value_at(row) for row in rows)

    def values_list(self) -> List[str]:
        """Every value of the vector, decoded in bulk.

        Reconstruction of many rows amortizes one ``values()`` pass per
        Capsule instead of per-row fetches, and the decoded columns stay
        in the value cache for subsequent queries.
        """
        encoded = self.encoded
        for capsule in encoded.subvar_capsules:
            touch_capsule(capsule, self.stats)
        columns = [_cached_values(capsule) for capsule in encoded.subvar_capsules]
        render = encoded.pattern.render
        matched = iter(zip(*columns)) if columns else iter(())
        if not self._outlier_set:
            if not columns:
                constant = render(())
                return [constant] * self.num_rows
            return [render(parts) for parts in matched]
        outliers = _cached_values(encoded.outlier_capsule)
        out: List[str] = []
        opos = 0
        for row in range(self.num_rows):
            if row in self._outlier_set:
                out.append(outliers[opos])
                opos += 1
            elif columns:
                out.append(render(next(matched)))
            else:
                out.append(render(()))
        return out


def _byte_renderer(
    pattern: RuntimePattern, columns: List[List[bytes]]
) -> Callable[[int], bytes]:
    """Row → rendered raw-bytes value, constants encoded exactly once."""
    pieces: List[Union[bytes, List[bytes]]] = [
        el.text.encode("utf-8") if isinstance(el, Const) else columns[el.index]
        for el in pattern.elements
    ]

    def render(crow: int) -> bytes:
        return b"".join(
            piece if isinstance(piece, bytes) else piece[crow]
            for piece in pieces
        )

    return render


class NominalVectorReader:
    """Reader over a nominal variable vector (dictionary + index)."""

    def __init__(
        self,
        encoded: NominalEncodedVector,
        settings: QuerySettings,
        stats: QueryStats,
    ):
        self.encoded = encoded
        self.settings = settings
        self.stats = stats
        self.num_rows = encoded.num_rows
        self._region_slots: List[int] = []  # first slot of each pattern region
        slot = 0
        for dp in encoded.dict_patterns:
            self._region_slots.append(slot)
            slot += dp.count

    # ------------------------------------------------------------------
    def _pattern_stamps(self, dp) -> List[CapsuleStamp]:
        return [
            CapsuleStamp(mask, maxlen)
            for mask, maxlen in zip(dp.subvar_masks, dp.subvar_maxlens)
        ]

    def _decode_dict(self) -> List[str]:
        """Decode the whole dictionary (region metadata aware)."""
        encoded = self.encoded
        if encoded.dict_capsule.layout != LAYOUT_REGION:
            return encoded.dict_capsule.values()
        values: List[str] = []
        byte = 0
        for dp in encoded.dict_patterns:
            for _ in range(dp.count):
                values.append(encoded.dict_capsule.region_value(byte, dp.width))
                byte += dp.width
        return values

    def _dict_values(self) -> List[str]:
        """The decoded dictionary, via the bounded CapsuleValueCache.

        This generalizes the per-reader dictionary memo that used to live
        here: the cache is shared across readers and queries and its
        entries die with the Capsule (BoxCache eviction).
        """
        encoded = self.encoded
        touch_capsule(encoded.dict_capsule, self.stats)
        return get_value_cache().get(encoded.dict_capsule, self._decode_dict)

    def _region_values(self, pattern_idx: int) -> List[str]:
        """Values of one pattern's region — a direct Σ count·width jump."""
        encoded = self.encoded
        dp = encoded.dict_patterns[pattern_idx]
        start = self._region_slots[pattern_idx]
        if encoded.dict_capsule.layout != LAYOUT_REGION:
            return self._dict_values()[start : start + dp.count]
        cached = get_value_cache().peek(encoded.dict_capsule)
        if cached is not None:
            return cached[start : start + dp.count]
        touch_capsule(encoded.dict_capsule, self.stats)
        byte = encoded.region_start_byte(pattern_idx)
        out = []
        for _ in range(dp.count):
            out.append(encoded.dict_capsule.region_value(byte, dp.width))
            byte += dp.width
        return out

    # ------------------------------------------------------------------
    def matching_slots(self, fragment: str, mode: MatchMode) -> List[int]:
        """Dictionary slots whose value matches the fragment.

        Under the bytes kernel, each surviving pattern's region is scanned
        in place on the dictionary payload (§5.2 direct locating) — no
        dictionary entry is decoded at all.
        """
        encoded = self.encoded
        use_bytes = (
            self.settings.scan_kernel == "bytes"
            and encoded.dict_capsule.layout == LAYOUT_REGION
        )
        needle = fragment.encode("utf-8") if use_bytes else b""
        slots: List[int] = []
        for pattern_idx, dp in enumerate(encoded.dict_patterns):
            candidates = locate(
                dp.pattern,
                self._pattern_stamps(dp),
                fragment,
                mode,
                use_stamps=self.settings.use_stamps,
            )
            if candidates is not TOO_COMPLEX and not candidates:
                self.stats.capsules_filtered += 1
                continue  # the pattern cannot produce the fragment
            base = self._region_slots[pattern_idx]
            if use_bytes:
                touch_capsule(encoded.dict_capsule, self.stats)
                plain = encoded.dict_capsule.plain()
                for local in scan.scan_region(
                    plain,
                    encoded.region_start_byte(pattern_idx),
                    dp.width,
                    dp.count,
                    needle,
                    mode.value,
                ):
                    slots.append(base + local)
                continue
            for local, value in enumerate(self._region_values(pattern_idx)):
                if value_matches(value, fragment, mode):
                    slots.append(base + local)
        return slots

    def search(self, fragment: str, mode: MatchMode) -> RowSet:
        slots = self.matching_slots(fragment, mode)
        return self._rows_for_slots(slots)

    def search_wildcard(self, keyword, mode: MatchMode) -> RowSet:
        regex = keyword.regex_for(mode)
        slots = [
            slot
            for slot, value in enumerate(self._dict_values())
            if regex.search(value)
        ]
        return self._rows_for_slots(slots)

    def _rows_for_slots(self, slots: Sequence[int]) -> RowSet:
        encoded = self.encoded
        result = RowSet.empty(self.num_rows)
        if not slots:
            # The index Capsule is never decompressed — the dictionary
            # proved the keyword absent (§5.1).
            self.stats.capsules_filtered += 1
            return result
        touch_capsule(encoded.index_capsule, self.stats)
        width = encoded.index_width
        capsule = encoded.index_capsule
        use_bytes = self.settings.scan_kernel == "bytes"
        if capsule.layout == LAYOUT_FIXED and width > 0:
            buf = capsule.plain()
            if len(slots) <= 4:
                # Selective dictionary hit: search each index number (§5.1).
                for slot in slots:
                    target = str(slot).zfill(width).encode("utf-8")
                    if use_bytes:
                        for row in scan.scan_fixed(
                            buf, width, self.num_rows, target, scan.MODE_EXACT
                        ):
                            result.add(row)
                    else:
                        for pos in find_all(buf, target, self.settings.engine):
                            if pos % width == 0:
                                result.add(pos // width)
            else:
                # Unselective keyword: one row-wise membership pass beats
                # a separate scan per matching dictionary entry.
                targets = {
                    str(slot).zfill(width).encode("utf-8") for slot in slots
                }
                for row in range(self.num_rows):
                    if buf[row * width : (row + 1) * width] in targets:
                        result.add(row)
        elif use_bytes:
            # Variable-layout index (w/o-fixed ablation): compare raw byte
            # cells against the wanted (zero-filled) slot numbers, no decode.
            targets = {str(slot).zfill(width).encode("utf-8") for slot in slots}
            buf = capsule.plain()
            view = memoryview(buf)
            offsets = capsule._variable_offsets()
            n = capsule.count
            for row in range(n):
                start = offsets[row]
                end = offsets[row + 1] - 1 if row + 1 < n else len(buf)
                if view[start:end] in targets:
                    result.add(row)
        else:
            wanted = set(slots)
            for row, text in enumerate(capsule.values()):
                if int(text) in wanted:
                    result.add(row)
        return result

    # ------------------------------------------------------------------
    def value_counts(self, rows: Optional[RowSet] = None) -> "Counter[str]":
        """value → occurrences among *rows* (all rows when None), counted
        on raw index cells — the §2 "dictionary is the group-by index"
        fast path.

        The index Capsule is tallied cell-by-cell on its raw payload (no
        per-row value is ever decoded), then only the dictionary slots
        that actually occur are resolved to their values — for a region
        dictionary via direct Σ count·width jumps, so payload decoding is
        proportional to the number of *distinct* values, not rows.
        """
        encoded = self.encoded
        capsule = encoded.index_capsule
        touch_capsule(capsule, self.stats)
        width = encoded.index_width
        buf = capsule.plain()
        cell_counts: "Counter[bytes]" = Counter()
        if capsule.layout == LAYOUT_FIXED and width > 0:
            if rows is None or rows.is_full():
                cell_counts.update(
                    buf[i : i + width]
                    for i in range(0, self.num_rows * width, width)
                )
            else:
                cell_counts.update(
                    buf[row * width : (row + 1) * width] for row in rows
                )
        else:
            # Variable-layout index (w/o-fixed ablation): slice raw cells
            # at the separator offsets, still without decoding.
            offsets = capsule._variable_offsets()
            n = capsule.count

            def cell(row: int) -> bytes:
                end = offsets[row + 1] - 1 if row + 1 < n else len(buf)
                return buf[offsets[row] : end]

            iter_rows: Sequence[int] = (
                range(n) if rows is None or rows.is_full() else list(rows)
            )
            cell_counts.update(cell(row) for row in iter_rows)
        counted = sum(cell_counts.values())
        ledger_channel.charge_rows_scanned(counted)
        out: "Counter[str]" = Counter()
        cached_dict = get_value_cache().peek(encoded.dict_capsule)
        for cell_bytes, n in cell_counts.items():
            slot = int(cell_bytes)
            value = (
                cached_dict[slot]
                if cached_dict is not None
                else self._slot_value(slot)
            )
            out[value] += n
        return out

    def _slot_value(self, slot: int) -> str:
        """Decode one dictionary slot without decoding the whole dict.

        Region dictionaries jump straight to the slot's fixed-width cell
        (§5.2); other layouts go through the value cache.
        """
        encoded = self.encoded
        if encoded.dict_capsule.layout != LAYOUT_REGION:
            touch_capsule(encoded.dict_capsule, self.stats)
            return _cached_value_at(encoded.dict_capsule, slot)
        pattern_idx = bisect_right(self._region_slots, slot) - 1
        dp = encoded.dict_patterns[pattern_idx]
        local = slot - self._region_slots[pattern_idx]
        touch_capsule(encoded.dict_capsule, self.stats)
        byte = encoded.region_start_byte(pattern_idx) + local * dp.width
        return encoded.dict_capsule.region_value(byte, dp.width)

    def value_at(self, row: int) -> str:
        encoded = self.encoded
        touch_capsule(encoded.index_capsule, self.stats)
        slot = int(_cached_value_at(encoded.index_capsule, row))
        return self._dict_values()[slot]

    def values_list(self) -> List[str]:
        """Bulk decode: one dictionary pass + one index pass."""
        encoded = self.encoded
        touch_capsule(encoded.index_capsule, self.stats)
        dictionary = self._dict_values()
        return [
            dictionary[int(text)]
            for text in _cached_values(encoded.index_capsule)
        ]


class PlainVectorReader:
    """Reader over a whole-vector Capsule (§2.2's first attempt)."""

    def __init__(
        self,
        encoded: PlainEncodedVector,
        settings: QuerySettings,
        stats: QueryStats,
    ):
        self.encoded = encoded
        self.settings = settings
        self.stats = stats
        self.num_rows = encoded.num_rows

    def search(self, fragment: str, mode: MatchMode) -> RowSet:
        capsule = self.encoded.capsule
        self.stats.capsules_considered += 1
        if self.settings.use_stamps and not capsule.stamp.admits(fragment):
            self.stats.capsules_filtered += 1
            return RowSet.empty(self.num_rows)
        touch_capsule(capsule, self.stats)
        return search_capsule(
            capsule,
            fragment,
            mode,
            self.settings.engine,
            kernel=self.settings.scan_kernel,
        )

    def search_wildcard(self, keyword, mode: MatchMode) -> RowSet:
        capsule = self.encoded.capsule
        regex = keyword.regex_for(mode)
        result = RowSet.empty(self.num_rows)
        literals = (
            [run for run in keyword.literals() if run]
            if not keyword.ignore_case
            else []
        )
        if literals and self.settings.use_stamps:
            if any(not capsule.stamp.admits(run) for run in literals):
                self.stats.capsules_filtered += 1
                return result
        touch_capsule(capsule, self.stats)
        if literals:
            # Narrow with the literal runs, verify only candidate rows.
            candidates: Optional[RowSet] = None
            for run in literals:
                rows = search_capsule(
                    capsule,
                    run,
                    MatchMode.SUBSTRING,
                    self.settings.engine,
                    kernel=self.settings.scan_kernel,
                )
                candidates = rows if candidates is None else candidates & rows
                if not candidates:
                    return result
            for row in candidates:
                if regex.search(_cached_value_at(capsule, row)):
                    result.add(row)
            return result
        for row, value in enumerate(_cached_values(capsule)):
            if regex.search(value):
                result.add(row)
        return result

    def value_at(self, row: int) -> str:
        return _cached_value_at(self.encoded.capsule, row)

    def values_list(self) -> List[str]:
        touch_capsule(self.encoded.capsule, self.stats)
        return _cached_values(self.encoded.capsule)

    def value_counts(self, rows: Optional[RowSet] = None) -> "Counter[str]":
        """value → occurrences among *rows* (all rows when None).

        Plain vectors store the column verbatim, so counting decodes it
        (once, via the value cache) — no index cells to exploit.
        """
        if rows is None or rows.is_full():
            return Counter(self.values_list())
        return Counter(self.value_at(row) for row in rows)


def make_reader(encoded, settings: QuerySettings, stats: QueryStats):
    """Reader factory over the three encodings."""
    if isinstance(encoded, RealEncodedVector):
        return RealVectorReader(encoded, settings, stats)
    if isinstance(encoded, NominalEncodedVector):
        return NominalVectorReader(encoded, settings, stats)
    if isinstance(encoded, PlainEncodedVector):
        return PlainVectorReader(encoded, settings, stats)
    raise TypeError(f"unknown encoded vector {type(encoded)!r}")
