"""Per-block query execution.

The engine evaluates a parsed query command over one CapsuleBox.  For each
group (static pattern) it matches every search string at the token level:

* a single-keyword search string matches an entry when the keyword occurs
  as a substring of *any* token (constants checked directly, variables via
  their vector readers);
* a multi-keyword search string must match a window of *consecutive*
  tokens: the first keyword as a token suffix, interior keywords exactly,
  the last as a token prefix — i.e. plain grep substring semantics lifted
  onto the token model.

Results are row sets per group, combined with the query's logical
operators, and finally handed to the Reconstructor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from ..capsule.box import CapsuleBox, GroupBox
from ..common.rowset import RowSet
from .language import Keyword, QueryCommand, SearchString
from .modes import MatchMode
from .plan import QueryPlan, build_plan
from .stats import QueryStats
from .vectors import QuerySettings, make_reader

#: Block-level result: group index → matching entry rows.
GroupRows = Dict[int, RowSet]

#: Resolver hook used for the query cache: maps a search string to its
#: block-level result (the engine's ``search_string_rows`` by default).
Resolver = Callable[[SearchString], GroupRows]


class BlockEngine:
    """Query executor bound to one deserialized CapsuleBox."""

    def __init__(
        self,
        box: CapsuleBox,
        settings: Optional[QuerySettings] = None,
        stats: Optional[QueryStats] = None,
    ):
        self.box = box
        self.settings = settings or QuerySettings()
        self.stats = stats if stats is not None else QueryStats()
        self._readers: Dict[Tuple[int, int], object] = {}
        # token position → variable ordinal, per group
        self._var_ordinals: List[Dict[int, int]] = [
            {pos: k for k, pos in enumerate(group.template.var_positions)}
            for group in box.groups
        ]

    # ------------------------------------------------------------------
    @property
    def readers(self) -> Dict[Tuple[int, int], object]:
        """The (group, var) → vector-reader cache.

        Shared with the Reconstructor so Capsules decompressed during
        matching are reused for reconstruction.
        """
        return self._readers

    def reader(self, group_idx: int, var_idx: int):
        key = (group_idx, var_idx)
        reader = self._readers.get(key)
        if reader is None:
            encoded = self.box.groups[group_idx].vectors[var_idx]
            reader = make_reader(encoded, self.settings, self.stats)
            self._readers[key] = reader
        return reader

    # ------------------------------------------------------------------
    def execute(
        self,
        command: Union[QueryCommand, QueryPlan],
        resolver: Optional[Resolver] = None,
    ) -> GroupRows:
        """Evaluate a planned command; returns matching rows per group.

        A raw :class:`QueryCommand` is planned on the spot; callers that
        run one plan over many blocks (the executor, the cluster) build
        the :class:`QueryPlan` once and pass it directly, so term ordering
        is decided a single time per query.
        """
        plan = command if isinstance(command, QueryPlan) else build_plan(command)
        resolve = resolver or self.search_string_rows
        total: GroupRows = {}
        for disjunct in plan.disjuncts:
            acc = self.full_rows()
            for term in disjunct.terms:
                rows = resolve(term.search)
                if term.negated:
                    acc = _difference(acc, rows)
                else:
                    acc = _intersect(acc, rows)
                if not acc:
                    break
            total = _union(total, acc)
        return {g: rs for g, rs in total.items() if rs}

    def full_rows(self) -> GroupRows:
        """Every row of every non-empty group — the identity of the
        row-set algebra, and the row source for unfiltered aggregates
        (``agg count-by`` with no WHERE)."""
        return {
            g: RowSet.full(group.num_entries)
            for g, group in enumerate(self.box.groups)
            if group.num_entries
        }

    # ------------------------------------------------------------------
    def search_string_rows(self, search: SearchString) -> GroupRows:
        """Block-level match of one search string."""
        out: GroupRows = {}
        for group_idx, group in enumerate(self.box.groups):
            rows = self._match_group(group_idx, group, search)
            if rows:
                out[group_idx] = rows
        return out

    def _match_group(
        self, group_idx: int, group: GroupBox, search: SearchString
    ) -> RowSet:
        n = group.num_entries
        result = RowSet.empty(n)
        keywords = search.keywords
        tokens = group.template.tokens
        k = len(keywords)
        if k == 1:
            keyword = keywords[0]
            for pos, token in enumerate(tokens):
                if token is not None:
                    if _const_matches(token, keyword, MatchMode.SUBSTRING):
                        return RowSet.full(n)
                    continue
                var_idx = self._var_ordinals[group_idx][pos]
                result = result | self._search_var(
                    group_idx, var_idx, keyword, MatchMode.SUBSTRING
                )
                if result.is_full():
                    break
            return result

    # multi-keyword: consecutive token windows
        for start in range(0, len(tokens) - k + 1):
            window = self._match_window(group_idx, group, keywords, start)
            if window is not None:
                result = result | window
                if result.is_full():
                    break
        return result

    def _match_window(
        self,
        group_idx: int,
        group: GroupBox,
        keywords: List[Keyword],
        start: int,
    ) -> Optional[RowSet]:
        """Match keywords against tokens[start : start+k]; None = no match."""
        tokens = group.template.tokens
        n = group.num_entries
        k = len(keywords)
        # Constants first: they are free and prune whole windows.
        var_checks = []
        for j, keyword in enumerate(keywords):
            mode = _mode_for(j, k)
            token = tokens[start + j]
            if token is not None:
                if not _const_matches(token, keyword, mode):
                    return None
            else:
                var_checks.append((start + j, keyword, mode))
        acc = RowSet.full(n)
        for pos, keyword, mode in var_checks:
            var_idx = self._var_ordinals[group_idx][pos]
            acc = acc & self._search_var(group_idx, var_idx, keyword, mode)
            if not acc:
                return acc
        return acc

    def _search_var(
        self, group_idx: int, var_idx: int, keyword: Keyword, mode: MatchMode
    ) -> RowSet:
        reader = self.reader(group_idx, var_idx)
        if keyword.needs_regex:
            return reader.search_wildcard(keyword, mode)
        return reader.search(keyword.text, mode)


def _mode_for(j: int, k: int) -> MatchMode:
    if k == 1:
        return MatchMode.SUBSTRING
    if j == 0:
        return MatchMode.SUFFIX
    if j == k - 1:
        return MatchMode.PREFIX
    return MatchMode.EXACT


def _const_matches(token: str, keyword: Keyword, mode: MatchMode) -> bool:
    if keyword.needs_regex:
        return keyword.regex_for(mode).search(token) is not None
    text = keyword.text
    if mode is MatchMode.EXACT:
        return token == text
    if mode is MatchMode.PREFIX:
        return token.startswith(text)
    if mode is MatchMode.SUFFIX:
        return token.endswith(text)
    return text in token


# ----------------------------------------------------------------------
# group-rows algebra
# ----------------------------------------------------------------------
def _intersect(a: GroupRows, b: GroupRows) -> GroupRows:
    return {g: a[g] & b[g] for g in a.keys() & b.keys() if a[g] & b[g]}


def _union(a: GroupRows, b: GroupRows) -> GroupRows:
    out = dict(a)
    for g, rows in b.items():
        out[g] = (out[g] | rows) if g in out else rows
    return {g: rs for g, rs in out.items() if rs}


def _difference(a: GroupRows, b: GroupRows) -> GroupRows:
    out = {}
    for g, rows in a.items():
        remainder = rows - b[g] if g in b else rows
        if remainder:
            out[g] = remainder
    return out
