"""Query Cache (paper §3, §6.3).

LogGrep keeps a hashmap from query text to located rows so that the
*refining mode* — an engineer growing ``ERROR`` into ``ERROR AND x`` into
``ERROR AND x NOT y`` over a debugging session — never re-matches a search
string it has already located.  The cache is keyed per (block, search
string) and stores group row sets, the exact intermediate the engine
consumes, so cached entries compose under AND/OR/NOT for free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from ..common.rowset import RowSet
from ..obs.metrics import get_registry

_HITS = get_registry().counter(
    "loggrep_query_cache_hits_total", "Query cache lookups that hit"
)
_MISSES = get_registry().counter(
    "loggrep_query_cache_misses_total", "Query cache lookups that missed"
)
_EVICTIONS = get_registry().counter(
    "loggrep_query_cache_evictions_total", "Entries evicted by the LRU bound"
)
_ENTRIES = get_registry().gauge(
    "loggrep_query_cache_entries", "Entries currently cached"
)

#: Block-level located rows (group index → row set).
GroupRows = Dict[int, RowSet]

DEFAULT_CAPACITY = 4096


class QueryCache:
    """A bounded LRU of per-block search-string results."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, GroupRows]" = OrderedDict()
        # Parallel query execution (query_parallelism > 1) shares the cache
        # across worker threads.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, block_name: str, search_text: str) -> Optional[GroupRows]:
        key = (block_name, search_text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _HITS.inc()
            return entry

    def put(self, block_name: str, search_text: str, rows: GroupRows) -> None:
        key = (block_name, search_text)
        with self._lock:
            self._entries[key] = rows
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _EVICTIONS.inc()
            _ENTRIES.set(len(self._entries))

    def invalidate_block(self, block_name: str) -> None:
        """Drop all entries of one block (used when a block is rewritten)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == block_name]
            for key in stale:
                del self._entries[key]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)
