"""Query Cache (paper §3, §6.3) and the decoded-value cache.

LogGrep keeps a hashmap from query text to located rows so that the
*refining mode* — an engineer growing ``ERROR`` into ``ERROR AND x`` into
``ERROR AND x NOT y`` over a debugging session — never re-matches a search
string it has already located.  The cache is keyed per (block, search
string) and stores group row sets, the exact intermediate the engine
consumes, so cached entries compose under AND/OR/NOT for free.

:class:`CapsuleValueCache` is the second cache of this module: a bounded
LRU of *decoded* Capsule value columns.  With the bytes scan kernels,
matching never decodes values — decoding happens only for surviving rows
(reconstruction, wildcard verification, dictionary region reads), and
those paths used to re-decode the same Capsule on every query.  The cache
generalizes the ad-hoc per-reader dictionary cache that existed before:
entries are keyed by Capsule identity, invalidated automatically when the
Capsule is garbage-collected, so the cache's lifetime rides the existing
BoxCache accounting — a box evicted from the BoxCache LRU drops its
decoded columns with it.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict, deque
from typing import Callable, Dict, List, Optional

from ..common.rowset import RowSet
from ..obs import ledger as ledger_channel
from ..obs.metrics import get_registry

_HITS = get_registry().counter(
    "loggrep_query_cache_hits_total", "Query cache lookups that hit"
)
_MISSES = get_registry().counter(
    "loggrep_query_cache_misses_total", "Query cache lookups that missed"
)
_EVICTIONS = get_registry().counter(
    "loggrep_query_cache_evictions_total", "Entries evicted by the LRU bound"
)
_ENTRIES = get_registry().gauge(
    "loggrep_query_cache_entries", "Entries currently cached"
)

#: Block-level located rows (group index → row set).
GroupRows = Dict[int, RowSet]

DEFAULT_CAPACITY = 4096


class QueryCache:
    """A bounded LRU of per-block search-string results."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, GroupRows]" = OrderedDict()
        # Parallel query execution (query_parallelism > 1) shares the cache
        # across worker threads.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, block_name: str, search_text: str) -> Optional[GroupRows]:
        key = (block_name, search_text)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _MISSES.inc()
                ledger_channel.charge_cache("query", False)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _HITS.inc()
            ledger_channel.charge_cache("query", True)
            return entry

    def put(self, block_name: str, search_text: str, rows: GroupRows) -> None:
        key = (block_name, search_text)
        with self._lock:
            self._entries[key] = rows
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _EVICTIONS.inc()
            _ENTRIES.set(len(self._entries))

    def invalidate_block(self, block_name: str) -> None:
        """Drop all entries of one block (used when a block is rewritten)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == block_name]
            for key in stale:
                del self._entries[key]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# decoded-value cache
# ----------------------------------------------------------------------
_VALUE_HITS = get_registry().counter(
    "loggrep_value_cache_hits_total", "Decoded-value cache lookups that hit"
)
_VALUE_MISSES = get_registry().counter(
    "loggrep_value_cache_misses_total", "Decoded-value cache lookups that missed"
)
_VALUE_EVICTIONS = get_registry().counter(
    "loggrep_value_cache_evictions_total",
    "Decoded-value columns evicted by the LRU bound",
)
_VALUE_ENTRIES = get_registry().gauge(
    "loggrep_value_cache_entries", "Decoded Capsule columns currently cached"
)
_VALUE_VALUES = get_registry().gauge(
    "loggrep_value_cache_values", "Individual decoded values currently cached"
)

#: Default bound on cached decoded values (not entries): one decoded value
#: is roughly one short string, so this is a soft memory bound.
DEFAULT_VALUE_CAPACITY = 1 << 16


class CapsuleValueCache:
    """A bounded LRU of decoded value columns, keyed by Capsule identity.

    Keys are ``id(capsule)`` guarded by a ``weakref.finalize`` on the
    Capsule: when a Capsule is garbage-collected (its CapsuleBox fell out
    of the BoxCache LRU, or the query finished with an uncached box), its
    entry is dropped, so a recycled ``id`` can never serve stale values.
    The capacity bound counts decoded *values*, not entries, so one huge
    column cannot masquerade as a single cheap slot.
    """

    def __init__(self, capacity_values: int = DEFAULT_VALUE_CAPACITY):
        if capacity_values <= 0:
            raise ValueError("value cache capacity must be positive")
        self.capacity_values = capacity_values
        self._entries: "OrderedDict[int, List[str]]" = OrderedDict()
        self._finalizers: Dict[int, weakref.finalize] = {}
        self._weight = 0
        # Reentrant as defense in depth: _discard is a weakref.finalize
        # callback, so the GC can fire it on THIS thread while _store
        # holds the lock (any allocation inside the critical section may
        # trigger a collection) — a plain Lock would self-deadlock.
        self._lock = threading.RLock()
        # Keys whose Capsules the GC collected, reaped lazily by the
        # live paths.  deque.append is atomic and lock-free, which is
        # the only kind of work a GC-context callback may do: it can
        # interrupt a thread that holds ANY lock in the process (this
        # cache's, the metrics registry's, ...), so taking one — even a
        # different one — risks a self-deadlock.
        self._dead: "deque[int]" = deque()

    # ------------------------------------------------------------------
    def get(
        self, capsule: object, loader: Optional[Callable[[], List[str]]] = None
    ) -> List[str]:
        """The decoded values of *capsule*, decoding at most once.

        ``loader`` overrides the default ``capsule.values()`` for layouts
        that need extra metadata to decode (region-packed dictionaries).
        Callers must not mutate the returned list.
        """
        key = id(capsule)
        with self._lock:
            # Reap before looking up: a collected Capsule's id can be
            # recycled by a new one, and its queued-dead entry must not
            # serve the old column.
            self._reap()
            values = self._entries.get(key)
            if values is not None:
                self._entries.move_to_end(key)
                _VALUE_HITS.inc()
                ledger_channel.charge_cache("value", True)
                return values
        _VALUE_MISSES.inc()
        ledger_channel.charge_cache("value", False)
        values = loader() if loader is not None else capsule.values()  # type: ignore[attr-defined]
        ledger_channel.charge_decoded_values(len(values))
        self._store(capsule, key, values)
        return values

    def peek(self, capsule: object) -> Optional[List[str]]:
        """The cached values of *capsule*, or None — never decodes."""
        key = id(capsule)
        with self._lock:
            self._reap()
            values = self._entries.get(key)
            if values is not None:
                self._entries.move_to_end(key)
            return values

    def value_at(self, capsule: object, row: int) -> str:
        """One value of *capsule*: from the cached column when present,
        otherwise a direct O(1) single-row fetch (no bulk decode)."""
        values = self.peek(capsule)
        if values is not None:
            return values[row]
        ledger_channel.charge_decoded_values(1)
        return capsule.value_at(row)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _store(self, capsule: object, key: int, values: List[str]) -> None:
        weight = max(1, len(values))
        if weight > self.capacity_values:
            return  # larger than the whole cache: not worth caching
        with self._lock:
            self._reap()
            if key not in self._entries:
                self._weight += weight
                self._finalizers[key] = weakref.finalize(
                    capsule, self._discard, key
                )
            self._entries[key] = values
            self._entries.move_to_end(key)
            while self._weight > self.capacity_values and self._entries:
                old_key, old_values = self._entries.popitem(last=False)
                self._weight -= max(1, len(old_values))
                finalizer = self._finalizers.pop(old_key, None)
                if finalizer is not None:
                    finalizer.detach()
                _VALUE_EVICTIONS.inc()
            self._publish_gauges()

    def _discard(self, key: int) -> None:
        """weakref.finalize callback: the Capsule was garbage-collected.

        Runs in GC context, possibly mid-bytecode on a thread that holds
        unrelated locks — so it must not lock, publish metrics, or touch
        the entry maps.  It only records the key; _reap does the rest.
        """
        self._dead.append(key)

    def _reap(self) -> None:
        """Drop entries whose Capsules were collected (lock held)."""
        while self._dead:
            key = self._dead.popleft()
            values = self._entries.pop(key, None)
            if values is not None:
                self._weight -= max(1, len(values))
            self._finalizers.pop(key, None)

    def _publish_gauges(self) -> None:
        _VALUE_ENTRIES.set(len(self._entries))
        _VALUE_VALUES.set(self._weight)

    # ------------------------------------------------------------------
    def set_capacity(self, capacity_values: int) -> None:
        if capacity_values <= 0:
            raise ValueError("value cache capacity must be positive")
        with self._lock:
            self._reap()
            self.capacity_values = capacity_values
            while self._weight > self.capacity_values and self._entries:
                old_key, old_values = self._entries.popitem(last=False)
                self._weight -= max(1, len(old_values))
                finalizer = self._finalizers.pop(old_key, None)
                if finalizer is not None:
                    finalizer.detach()
                _VALUE_EVICTIONS.inc()
            self._publish_gauges()

    def clear(self) -> None:
        with self._lock:
            for finalizer in self._finalizers.values():
                finalizer.detach()
            self._entries.clear()
            self._finalizers.clear()
            self._dead.clear()
            self._weight = 0
            self._publish_gauges()

    def __len__(self) -> int:
        with self._lock:
            self._reap()
            return len(self._entries)

    @property
    def cached_values(self) -> int:
        with self._lock:
            self._reap()
            return self._weight


#: Process-wide decoded-value cache.  Capsule identity keys make sharing
#: across LogGrep instances safe; LogGrep re-bounds it from its config.
_VALUE_CACHE = CapsuleValueCache()


def get_value_cache() -> CapsuleValueCache:
    return _VALUE_CACHE
