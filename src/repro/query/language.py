"""Query-command parsing (paper §3, §5).

A LogGrep query command combines *search strings* with the logical
operators ``AND``, ``OR`` and ``NOT`` (case-insensitive) and, as an
extension beyond the paper, parentheses::

    error AND dst:11.8.* NOT state:503
    ( ERROR OR WARNING ) AND Unexpected error NOT retry

Each search string is tokenized with the same delimiters as log entries;
a multi-token search string must match *consecutive* tokens of an entry
(the first keyword as a token suffix, interior keywords exactly, the last
as a token prefix — grep substring semantics over the token model).
Wildcards ``*`` (any run) and ``?`` (one character) are allowed within a
token but never span delimiters — the paper's stated restriction.
``ignore_case=True`` gives grep ``-i`` semantics.

Precedence: ``NOT`` (as ``AND NOT``) and ``AND`` bind tighter than ``OR``;
parentheses override.  Internally commands normalize to disjunctive normal
form — an OR of conjunctions of possibly-negated search strings — which is
what the engine's row-set algebra and the baselines' index filters consume.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Pattern, Tuple

from ..common.errors import QuerySyntaxError
from ..common.tokenizer import tokenize
from .modes import MatchMode

_OPERATORS = {"and": "AND", "or": "OR", "not": "NOT"}
_PARENS = {"(", ")"}
_WILDCARDS = frozenset("*?")

#: Hard cap on DNF size (parenthesized queries could blow up).
MAX_DISJUNCTS = 64


@dataclass
class Keyword:
    """One token of a search string."""

    text: str
    ignore_case: bool = False
    _regexes: Dict[Tuple[MatchMode, bool], Pattern] = field(
        default_factory=dict, repr=False
    )

    @property
    def is_wildcard(self) -> bool:
        return any(ch in _WILDCARDS for ch in self.text)

    @property
    def needs_regex(self) -> bool:
        """True when token matching must go through the regex path."""
        return self.is_wildcard or self.ignore_case

    def literals(self) -> List[str]:
        """Literal runs between wildcards (all of them non-empty)."""
        return [part for part in re.split(r"[*?]+", self.text) if part]

    def longest_literal(self) -> str:
        """The best stamp-filterable fragment; empty when none is safe.

        Case-insensitive keywords return "" because stamps record exact
        character classes — a lowercase literal must not be used to filter
        Capsules that hold its uppercase form.
        """
        if self.ignore_case:
            return ""
        runs = self.literals()
        return max(runs, key=len) if runs else ""

    def regex_for(self, mode: MatchMode) -> Pattern:
        """Anchored regex equivalent for wildcard/ignore-case evaluation."""
        key = (mode, self.ignore_case)
        regex = self._regexes.get(key)
        if regex is None:
            body = "".join(
                ".*" if ch == "*" else "." if ch == "?" else re.escape(ch)
                for ch in self.text
            )
            if mode is MatchMode.EXACT:
                body = f"^{body}$"
            elif mode is MatchMode.PREFIX:
                body = f"^{body}"
            elif mode is MatchMode.SUFFIX:
                body = f"{body}$"
            regex = re.compile(body, re.IGNORECASE if self.ignore_case else 0)
            self._regexes[key] = regex
        return regex


@dataclass
class SearchString:
    """One operand of a query command."""

    text: str
    ignore_case: bool = False
    keywords: List[Keyword] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.keywords:
            self.keywords = [
                Keyword(token, self.ignore_case) for token in tokenize(self.text)
            ]

    @property
    def multi_token(self) -> bool:
        return len(self.keywords) > 1

    @property
    def cache_key(self) -> str:
        return f"i:{self.text}" if self.ignore_case else self.text


@dataclass
class Term:
    """A possibly negated search string within a conjunction."""

    search: SearchString
    negated: bool = False


@dataclass
class QueryCommand:
    """A parsed command in disjunctive normal form."""

    disjuncts: List[List[Term]]
    raw: str
    ignore_case: bool = False

    def search_strings(self) -> List[SearchString]:
        return [term.search for disjunct in self.disjuncts for term in disjunct]


# ----------------------------------------------------------------------
# AST (internal): built by the recursive-descent parser, then normalized.
# ----------------------------------------------------------------------
class _Node:
    pass


@dataclass
class _Leaf(_Node):
    text: str
    negated: bool = False


@dataclass
class _And(_Node):
    parts: List[_Node]


@dataclass
class _Or(_Node):
    parts: List[_Node]


class _Parser:
    """Recursive descent over pre-grouped items.

    Items are either operator markers, parentheses, or search-string text
    chunks (which may contain spaces).
    """

    def __init__(self, items: List[str], raw: str):
        self.items = items
        self.raw = raw
        self.pos = 0

    def _peek(self) -> Optional[str]:
        return self.items[self.pos] if self.pos < len(self.items) else None

    def _take(self) -> str:
        item = self.items[self.pos]
        self.pos += 1
        return item

    def parse(self) -> _Node:
        node = self.or_expr()
        if self._peek() is not None:
            raise QuerySyntaxError(f"unexpected {self._peek()!r} in query {self.raw!r}")
        return node

    def or_expr(self) -> _Node:
        parts = [self.and_expr()]
        while self._peek() == "OR":
            self._take()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else _Or(parts)

    def and_expr(self) -> _Node:
        parts = [self.unary()]
        while self._peek() in ("AND", "NOT"):
            op = self._take()
            operand = self.unary()
            if op == "NOT":
                operand = _negate(operand)
            parts.append(operand)
        return parts[0] if len(parts) == 1 else _And(parts)

    def unary(self) -> _Node:
        item = self._peek()
        if item is None:
            raise QuerySyntaxError(f"query {self.raw!r} ends unexpectedly")
        if item == "NOT":
            self._take()
            return _negate(self.unary())
        if item == "(":
            self._take()
            node = self.or_expr()
            if self._peek() != ")":
                raise QuerySyntaxError(f"missing ')' in query {self.raw!r}")
            self._take()
            return node
        if item in ("AND", "OR", ")"):
            raise QuerySyntaxError(f"unexpected {item!r} in query {self.raw!r}")
        return _Leaf(self._take())


def _negate(node: _Node) -> _Node:
    """Negation-normal form via De Morgan."""
    if isinstance(node, _Leaf):
        return _Leaf(node.text, not node.negated)
    if isinstance(node, _And):
        return _Or([_negate(part) for part in node.parts])
    return _And([_negate(part) for part in node.parts])


def _to_dnf(node: _Node, raw: str) -> List[List[_Leaf]]:
    if isinstance(node, _Leaf):
        return [[node]]
    if isinstance(node, _Or):
        out: List[List[_Leaf]] = []
        for part in node.parts:
            out.extend(_to_dnf(part, raw))
            if len(out) > MAX_DISJUNCTS:
                raise QuerySyntaxError(f"query {raw!r} is too complex")
        return out
    # AND: cartesian product of the parts' DNFs.
    product: List[List[_Leaf]] = [[]]
    for part in node.parts:
        branches = _to_dnf(part, raw)
        product = [
            existing + branch for existing in product for branch in branches
        ]
        if len(product) > MAX_DISJUNCTS:
            raise QuerySyntaxError(f"query {raw!r} is too complex")
    return product


def _group_items(raw: str) -> List[str]:
    """Split a raw command into operator/paren markers and search chunks."""
    items: List[str] = []
    pending: List[str] = []

    def flush() -> None:
        if pending:
            text = " ".join(pending)
            if not text.strip(" "):
                raise QuerySyntaxError(f"empty search string in query {raw!r}")
            items.append(text)
            pending.clear()

    for token in raw.split(" "):
        op = _OPERATORS.get(token.lower()) if token else None
        if op is not None:
            flush()
            items.append(op)
        elif token in _PARENS:
            flush()
            items.append(token)
        else:
            pending.append(token)
    flush()
    if not items:
        raise QuerySyntaxError(f"query {raw!r} contains no search string")
    return items


def parse_query(raw: str, ignore_case: bool = False) -> QueryCommand:
    """Parse a query command string into DNF.

    ``ignore_case`` applies grep ``-i`` semantics to every keyword.
    """
    items = _group_items(raw)
    node = _Parser(items, raw).parse()
    disjuncts: List[List[Term]] = []
    cache: Dict[Tuple[str, bool], SearchString] = {}
    for branch in _to_dnf(node, raw):
        terms = []
        for leaf in branch:
            key = (leaf.text, ignore_case)
            search = cache.get(key)
            if search is None:
                search = SearchString(leaf.text, ignore_case)
                cache[key] = search
            terms.append(Term(search, leaf.negated))
        disjuncts.append(terms)
    return QueryCommand(disjuncts, raw, ignore_case)
