"""Aggregation core: specs, pure helpers and mergeable partial aggregates.

The paper's §2 observation is structural: capsule dictionaries already
*are* a group-by index, so ``COUNT BY variable`` is per-entry index-cell
counting with zero payload decompression.  This module is the logical
half of that insight — what an aggregate *is* and how per-block partial
results merge — while the physical half (the ``Aggregate`` pipeline
operator, the index-cell ``value_counts`` fast path) lives in
:mod:`repro.query.executor` and :mod:`repro.query.vectors`.

Two layers:

* **pure helpers** (``count_values``/``top_k``/``numeric_stats``/
  ``group_count``/``histogram``) — functions over value streams, also the
  naive oracle the property tests compare the pushdown path against;
* **partial aggregates** — one per-block accumulator per
  :class:`~repro.query.modes.AggregateKind`, with *commutative* ``merge``
  (Counter addition; numeric stats keep the full value→multiplicity map so
  percentiles are exact and merge order never matters) so the thread-pool
  scheduler and the cluster coordinator can fold partials in any order.

Leaf module: imports only :mod:`repro.query.modes` — safe for the plan IR
and the executor to depend on without cycles.
"""

from __future__ import annotations

import math
import re
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .modes import AggregateKind

#: Leading numeric run of a value ("40719us" → 40719, "-3.5ms" → -3.5).
_NUMBER_RE = re.compile(r"^-?\d+(\.\d+)?")

#: One finalized histogram bucket: (first line id, last line id, hits).
Bucket = Tuple[int, int, int]


# ----------------------------------------------------------------------
# aggregate spec (carried inside the QueryPlan)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateSpec:
    """What to aggregate — decided at plan time, shipped with the plan.

    ``bucket_width``/``total_lines`` are fixed by the planner for
    ``HISTOGRAM`` so every block (and every cluster node) buckets line
    ids identically and partials merge without re-scaling.
    """

    kind: AggregateKind
    field: Optional[str] = None
    k: int = 10  # TOP_K only
    buckets: int = 20  # HISTOGRAM only
    bucket_width: int = 0  # HISTOGRAM: lines per bucket
    total_lines: int = 0  # HISTOGRAM: logical-clock extent
    value_field: Optional[str] = None  # PAIRS only

    def __post_init__(self) -> None:
        needs_field = self.kind in (
            AggregateKind.COUNT_BY,
            AggregateKind.TOP_K,
            AggregateKind.STATS,
            AggregateKind.VALUES,
            AggregateKind.PAIRS,
        )
        if needs_field and not self.field:
            raise ValueError(f"{self.kind.value} aggregate needs a field")
        if self.kind is AggregateKind.PAIRS and not self.value_field:
            raise ValueError("pairs aggregate needs a value field")
        if self.kind is AggregateKind.TOP_K and self.k <= 0:
            raise ValueError("top_k needs k >= 1")

    def describe(self) -> str:
        if self.kind is AggregateKind.COUNT_BY:
            return f"count_by({self.field})"
        if self.kind is AggregateKind.TOP_K:
            return f"top_k({self.field}, k={self.k})"
        if self.kind is AggregateKind.STATS:
            return f"stats({self.field})"
        if self.kind is AggregateKind.HISTOGRAM:
            return (
                f"histogram({self.buckets} bucket(s) x "
                f"{self.bucket_width} line(s))"
            )
        if self.kind is AggregateKind.COUNT_BY_TEMPLATE:
            return "count_by_template"
        if self.kind is AggregateKind.PAIRS:
            return f"pairs({self.field}, {self.value_field})"
        return f"values({self.field})"


# ----------------------------------------------------------------------
# numeric summaries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NumericStats:
    """Summary statistics of a numeric column.

    ``nulls`` counts values the numeric parser rejected — they are
    *reported*, never silently dropped, so a column that is 90% garbage
    is visibly so.
    """

    count: int
    minimum: float
    maximum: float
    mean: float
    p50: float
    p95: float
    p99: float
    nulls: int = 0

    @classmethod
    def empty(cls, nulls: int = 0) -> "NumericStats":
        nan = math.nan
        return cls(0, nan, nan, nan, nan, nan, nan, nulls)


def parse_number(value: str) -> Optional[float]:
    """Leading numeric run of a value, tolerating unit suffixes
    ("40719us" → 40719.0); None when the value has no leading number."""
    match = _NUMBER_RE.match(value)
    return float(match.group(0)) if match else None


def stats_from_counts(
    numbers: Dict[float, int], nulls: int = 0
) -> NumericStats:
    """Summarize a value → multiplicity map (the partials' native form).

    Percentiles use linear interpolation between closest ranks over the
    sorted multiset (numpy's default): exact for any column size — one
    value is every percentile, empty is NaN — instead of the old
    ``int(fraction * n)`` index that mis-ranked tiny columns.
    """
    total = sum(numbers.values())
    if total == 0:
        return NumericStats.empty(nulls)
    values = sorted(numbers)
    cumulative: List[int] = []
    running = 0
    for value in values:
        running += numbers[value]
        cumulative.append(running)

    def at_rank(rank: int) -> float:
        return values[bisect_right(cumulative, rank)]

    def percentile(fraction: float) -> float:
        position = (total - 1) * fraction
        low_rank = math.floor(position)
        low = at_rank(low_rank)
        if position == low_rank:
            return low
        return low + (position - low_rank) * (at_rank(low_rank + 1) - low)

    mean = sum(value * n for value, n in numbers.items()) / total
    return NumericStats(
        count=total,
        minimum=values[0],
        maximum=values[-1],
        mean=mean,
        p50=percentile(0.50),
        p95=percentile(0.95),
        p99=percentile(0.99),
        nulls=nulls,
    )


def numeric_stats(values: Iterable[str]) -> NumericStats:
    """Parse values as numbers and summarize; parse failures are counted
    as ``nulls`` in the result."""
    numbers: Counter[float] = Counter()
    nulls = 0
    for value in values:
        number = parse_number(value)
        if number is None:
            nulls += 1
        else:
            numbers[number] += 1
    return stats_from_counts(numbers, nulls)


# ----------------------------------------------------------------------
# pure helpers (also the property-test oracle)
# ----------------------------------------------------------------------
def count_values(values: Iterable[str]) -> "Counter[str]":
    """value → occurrence count."""
    return Counter(values)


def top_k(values: Iterable[str], k: int) -> List[Tuple[str, int]]:
    """The *k* most frequent values with their counts."""
    return Counter(values).most_common(k)


def group_count(pairs: Iterable[Tuple[str, str]]) -> Dict[str, "Counter[str]"]:
    """(group key, value) pairs → per-key value counts."""
    out: Dict[str, Counter[str]] = {}
    for key, value in pairs:
        counter = out.get(key)
        if counter is None:
            counter = Counter()
            out[key] = counter
        counter[value] += 1
    return out


def histogram(
    values: Iterable[str], bucket_count: int = 10
) -> List[Tuple[float, float, int]]:
    """Equal-width numeric histogram: (low, high, count) per bucket."""
    numbers: List[float] = []
    for value in values:
        number = parse_number(value)
        if number is not None:
            numbers.append(number)
    if not numbers:
        return []
    low, high = min(numbers), max(numbers)
    if low == high:
        return [(low, high, len(numbers))]
    width = (high - low) / bucket_count
    counts = [0] * bucket_count
    for number in numbers:
        index = min(bucket_count - 1, int((number - low) / width))
        counts[index] += 1
    return [
        (low + i * width, low + (i + 1) * width, counts[i])
        for i in range(bucket_count)
    ]


# ----------------------------------------------------------------------
# partial aggregates (one per block; merge is commutative)
# ----------------------------------------------------------------------
class AggregatePartial:
    """Base of the per-block accumulators.

    ``merge`` must be commutative and associative: the thread-pool
    scheduler and the cluster coordinator fold partials in whatever
    order blocks finish.
    """

    kind: AggregateKind
    #: Rows folded into this partial (for the loggrep_agg_rows metric).
    rows: int = 0

    def merge(self, other: "AggregatePartial") -> None:
        raise NotImplementedError

    def finalize(self, spec: AggregateSpec) -> object:
        raise NotImplementedError


class CountPartial(AggregatePartial):
    """COUNT_BY / TOP_K / COUNT_BY_TEMPLATE: a Counter of values."""

    def __init__(self, kind: AggregateKind):
        self.kind = kind
        self.rows = 0
        self.counts: Counter[str] = Counter()

    def add(self, value: str, n: int = 1) -> None:
        self.counts[value] += n
        self.rows += n

    def merge(self, other: "AggregatePartial") -> None:
        assert isinstance(other, CountPartial)
        self.counts.update(other.counts)
        self.rows += other.rows

    def finalize(self, spec: AggregateSpec) -> object:
        if spec.kind is AggregateKind.TOP_K:
            return self.counts.most_common(spec.k)
        return self.counts


class StatsPartial(AggregatePartial):
    """STATS: the full value → multiplicity map plus a null count.

    Keeping the multiset (not a sketch) makes merge exact and
    order-independent, and percentiles identical to the naive oracle.
    """

    kind = AggregateKind.STATS

    def __init__(self) -> None:
        self.rows = 0
        self.numbers: Counter[float] = Counter()
        self.nulls = 0

    def add(self, value: str, n: int = 1) -> None:
        number = parse_number(value)
        if number is None:
            self.nulls += n
        else:
            self.numbers[number] += n
        self.rows += n

    def merge(self, other: "AggregatePartial") -> None:
        assert isinstance(other, StatsPartial)
        self.numbers.update(other.numbers)
        self.nulls += other.nulls
        self.rows += other.rows

    def finalize(self, spec: AggregateSpec) -> object:
        return stats_from_counts(self.numbers, self.nulls)


class HistogramPartial(AggregatePartial):
    """HISTOGRAM: hit counts per logical-time bucket.

    Buckets are fixed by the spec (``bucket_width`` lines each), so a
    block only increments integers — no line id is ever materialized
    beyond the group's own ``line_ids`` vector, and no payload is read.
    """

    kind = AggregateKind.HISTOGRAM

    def __init__(self) -> None:
        self.rows = 0
        self.counts: Counter[int] = Counter()

    def add_line(self, line_id: int, spec: AggregateSpec) -> None:
        width = spec.bucket_width or 1
        self.counts[min(spec.buckets - 1, line_id // width)] += 1
        self.rows += 1

    def merge(self, other: "AggregatePartial") -> None:
        assert isinstance(other, HistogramPartial)
        self.counts.update(other.counts)
        self.rows += other.rows

    def finalize(self, spec: AggregateSpec) -> object:
        if spec.total_lines == 0 or spec.buckets <= 0:
            return []
        width = spec.bucket_width or 1
        out: List[Bucket] = []
        for i in range(spec.buckets):
            low = i * width
            if low >= spec.total_lines:
                # With width = ceil(total/buckets) the id space can run
                # out before the bucket count does; degenerate trailing
                # buckets would break the tiling invariant.
                break
            high = min(spec.total_lines, (i + 1) * width) - 1
            out.append((low, high, self.counts.get(i, 0)))
        return out


class ValuesPartial(AggregatePartial):
    """VALUES: ordered per-block chunks of a column.

    Chunks are keyed by the block's first line id, so merging in any
    order and sorting at finalize reproduces the deterministic
    block-order stream the legacy ``Analyzer.column`` produced.
    """

    kind = AggregateKind.VALUES

    def __init__(self) -> None:
        self.rows = 0
        self.chunks: List[Tuple[int, List[str]]] = []

    def add_chunk(self, order_key: int, values: List[str]) -> None:
        self.chunks.append((order_key, values))
        self.rows += len(values)

    def merge(self, other: "AggregatePartial") -> None:
        assert isinstance(other, ValuesPartial)
        self.chunks.extend(other.chunks)
        self.rows += other.rows

    def finalize(self, spec: AggregateSpec) -> object:
        out: List[str] = []
        for _, values in sorted(self.chunks, key=lambda chunk: chunk[0]):
            out.extend(values)
        return out


class PairsPartial(AggregatePartial):
    """PAIRS: ordered per-block chunks of (key, value) tuples."""

    kind = AggregateKind.PAIRS

    def __init__(self) -> None:
        self.rows = 0
        self.chunks: List[Tuple[int, List[Tuple[str, str]]]] = []

    def add_chunk(
        self, order_key: int, pairs: List[Tuple[str, str]]
    ) -> None:
        self.chunks.append((order_key, pairs))
        self.rows += len(pairs)

    def merge(self, other: "AggregatePartial") -> None:
        assert isinstance(other, PairsPartial)
        self.chunks.extend(other.chunks)
        self.rows += other.rows

    def finalize(self, spec: AggregateSpec) -> object:
        out: List[Tuple[str, str]] = []
        for _, pairs in sorted(self.chunks, key=lambda chunk: chunk[0]):
            out.extend(pairs)
        return out


def make_partial(spec: AggregateSpec) -> AggregatePartial:
    """A fresh (empty) partial for one spec — also the identity element
    the mergers start from."""
    if spec.kind in (
        AggregateKind.COUNT_BY,
        AggregateKind.TOP_K,
        AggregateKind.COUNT_BY_TEMPLATE,
    ):
        return CountPartial(spec.kind)
    if spec.kind is AggregateKind.STATS:
        return StatsPartial()
    if spec.kind is AggregateKind.HISTOGRAM:
        return HistogramPartial()
    if spec.kind is AggregateKind.VALUES:
        return ValuesPartial()
    if spec.kind is AggregateKind.PAIRS:
        return PairsPartial()
    raise ValueError(f"unknown aggregate kind {spec.kind!r}")


def merge_partials(
    spec: AggregateSpec, partials: Iterable[Optional[AggregatePartial]]
) -> AggregatePartial:
    """Fold per-block/per-node partials (skipping absent ones) into one."""
    merged = make_partial(spec)
    for partial in partials:
        if partial is not None:
            merged.merge(partial)
    return merged
