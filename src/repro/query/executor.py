"""Physical operator pipeline executing a :class:`QueryPlan` over blocks.

This is the single execution path behind ``LogGrep.grep``, ``count``,
``explain``, interactive sessions and the cluster's per-node block
queries.  Per block the pipeline is::

    BloomPrune → LoadBox → Locate → Match* → Reconstruct

* **BloomPrune** — drops the block when no disjunct can match.  With the
  persistent prune index loaded (``config.use_prune_index``) the check
  runs entirely on the in-memory :class:`BlockSummary` — bloom bits and
  the block charset mask — costing **zero** store reads for a pruned
  block.  Without an index entry, only the Bloom section is fetched via
  a ranged read against the box TOC; a prune never reads the whole blob.
* **LoadBox** — opens the CapsuleBox, or reuses a pinned box from the
  bounded :class:`BoxCache` (interactive refining sessions).  Under lazy
  I/O (``config.lazy_io``, the default) opening fetches only the header,
  Bloom and metadata sections; capsule payloads are ranged-read on first
  access, and Reconstruct batch-prefetches the hit groups' payloads with
  coalesced reads.  With ``lazy_io=False`` the whole blob is read and
  deserialized eagerly — the differential oracle for the lazy path.
* **Locate** — evaluates the plan's selectivity-ordered terms with the
  row-set algebra of :class:`~repro.query.engine.BlockEngine`.
* **Match** — resolves one search string to per-group row sets; memoized
  on ``(block, search.cache_key)`` in the shared
  :class:`~repro.query.cache.QueryCache` when configured.
* **Reconstruct** — rebuilds the original entries of the located rows;
  elided entirely for ``COUNT`` plans, and the whole pipeline downstream
  of LoadBox is replaced by a dry-run rendering for ``EXPLAIN`` plans.

Blocks are independent, so the executor schedules them either serially or
on a thread pool (``config.query_parallelism``); per-block
:class:`QueryStats` are merged in block order either way.  Obs spans sit
on the operator boundaries — ``query → plan / block → block_filter /
load_box / locate → match → decompress / reconstruct`` — so trace stage
names are stable regardless of the caller.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..blockstore.blobsource import BlobSource, StoreBlobSource
from ..blockstore.index import ArchiveIndex, BlockSummary
from ..capsule.box import CapsuleBox
from ..common.errors import BudgetExceeded
from ..obs import ledger as ledger_channel
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .aggregate import AggregatePartial, AggregateSpec, make_partial
from .blockfilter import command_might_match, summary_might_match
from .cache import QueryCache
from .engine import BlockEngine, GroupRows
from .language import QueryCommand, SearchString
from .modes import AggregateKind
from .plan import OutputMode, QueryPlan, build_plan
from .schema import FieldRef, schema_of
from .stats import NULL_LEDGER, BudgetMeter, QueryLedger, QueryStats
from .vectors import NominalVectorReader

_BOX_HITS = get_registry().counter(
    "loggrep_box_cache_hits_total", "Box cache lookups that hit"
)
_BOX_MISSES = get_registry().counter(
    "loggrep_box_cache_misses_total", "Box cache lookups that missed"
)
_BOX_EVICTIONS = get_registry().counter(
    "loggrep_box_cache_evictions_total", "Boxes evicted by the LRU bound"
)
_BOX_ENTRIES = get_registry().gauge(
    "loggrep_box_cache_entries", "Deserialized boxes currently pinned"
)
_AGG_QUERIES = get_registry().counter(
    "loggrep_agg_queries_total", "Aggregate plans executed, by kind"
)
_AGG_ROWS = get_registry().counter(
    "loggrep_agg_rows_total", "Rows folded into partial aggregates"
)
_AGG_INDEX_ROWS = get_registry().counter(
    "loggrep_agg_index_rows_total",
    "Rows aggregated via raw index-cell counting (no value decode)",
)
_AGG_DECODED_ROWS = get_registry().counter(
    "loggrep_agg_decoded_rows_total",
    "Rows aggregated by decoding values (real/plain vectors)",
)
_AGG_PARTIALS = get_registry().counter(
    "loggrep_agg_partials_merged_total",
    "Per-block partial aggregates merged into query results",
)

#: One reconstructed entry: (global line id, original text).
Entry = Tuple[int, str]


class BoxCache:
    """A small bounded LRU of deserialized CapsuleBoxes.

    Pinned refining sessions keep boxes across queries; the bound keeps a
    pin of a large archive from holding every deserialized block at once.
    Thread-safe: parallel block schedulers share one instance.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("box cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CapsuleBox]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, name: str) -> Optional[CapsuleBox]:
        with self._lock:
            box = self._entries.get(name)
            if box is None:
                _BOX_MISSES.inc()
                return None
            self._entries.move_to_end(name)
            _BOX_HITS.inc()
            return box

    def put(self, name: str, box: CapsuleBox) -> None:
        with self._lock:
            self._entries[name] = box
            self._entries.move_to_end(name)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _BOX_EVICTIONS.inc()
            _BOX_ENTRIES.set(len(self._entries))

    def pop(self, name: str) -> Optional[CapsuleBox]:
        """Drop one block's box (e.g. after the block is rewritten)."""
        with self._lock:
            box = self._entries.pop(name, None)
            _BOX_ENTRIES.set(len(self._entries))
            return box

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            _BOX_ENTRIES.set(0)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries


class StoreBoxSource:
    """Adapts an archive store (+ optional pin cache) to the executor.

    The executor needs four things from storage: the block names, the raw
    serialized bytes of one block, a possibly-pinned deserialized box,
    and — for the lazy-I/O path — a :class:`BlobSource` over one block
    plus the block's prune-index summary.  Anything that provides those —
    a local store, a cluster node's replica store — can sit behind the
    same pipeline; stores without ranged reads simply fall back to
    whole-blob loading.
    """

    def __init__(
        self,
        store: object,
        box_cache: Optional[BoxCache] = None,
        index: Optional[ArchiveIndex] = None,
        templates: object = None,
    ):
        self.store = store
        self.box_cache = box_cache
        self.index = index
        #: Resolver for shared-format (flag 0x01) boxes; None for archives
        #: that are fully inline.
        self.templates = templates
        self._ranged = hasattr(store, "get_range") and hasattr(store, "size")

    def names(self) -> List[str]:
        return self.store.names()  # type: ignore[attr-defined]

    def raw(self, name: str) -> bytes:
        data: bytes = self.store.get(name)  # type: ignore[attr-defined]
        # The eager-I/O counterpart of StoreBlobSource.read's charge: every
        # whole-blob load bills the open operator (and the read budget).
        ledger_channel.charge_blob_read(len(data))
        return data

    def blob(self, name: str) -> Optional[BlobSource]:
        """Ranged access to one block, when the store supports it."""
        if not self._ranged:
            return None
        return StoreBlobSource(self.store, name)

    def summary(self, name: str) -> Optional[BlockSummary]:
        """The prune-index entry for one block, when an index is loaded."""
        if self.index is None:
            return None
        return self.index.get(name)

    def cached(self, name: str) -> Optional[CapsuleBox]:
        if self.box_cache is None:
            return None
        return self.box_cache.get(name)


@dataclass
class BlockOutcome:
    """What one block contributed to a query."""

    name: str
    pruned: bool = False
    entries: List[Entry] = field(default_factory=list)
    count: int = 0
    rendering: Optional[str] = None  # EXPLAIN mode only
    #: Per-block partial aggregate (aggregate plans only).
    partial: Optional[AggregatePartial] = None
    #: Located per-group row sets (``ROWS`` plans only): the compact
    #: shippable form of a grep hit — reconstruction is deferred to a
    #: later :meth:`QueryExecutor.reconstruct_rows` call.
    rows: Optional[GroupRows] = None


@dataclass
class ExecutionResult:
    """The merged outcome of one plan execution."""

    plan: QueryPlan
    entries: List[Entry]
    stats: QueryStats
    elapsed: float
    renderings: List[str] = field(default_factory=list)
    #: Per-query resource accounting; NULL_LEDGER unless ANALYZE mode, a
    #: slow-query threshold or a budget activated it.
    ledger: QueryLedger = NULL_LEDGER
    #: The merged partial aggregate (aggregate plans only); callers
    #: ``finalize`` it against the plan's spec.
    aggregate: Optional[AggregatePartial] = None
    #: Per-block located row sets (``ROWS`` plans only), keyed by block
    #: name; feed them back through :meth:`QueryExecutor.reconstruct_rows`.
    rowsets: Dict[str, GroupRows] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return self.stats.entries_matched

    @property
    def rendering(self) -> str:
        return "\n\n".join(self.renderings)


class QueryExecutor:
    """Runs query plans over every block of one box source."""

    def __init__(
        self,
        source: StoreBoxSource,
        config: object,
        cache: Optional[QueryCache] = None,
    ):
        self.source = source
        self.config = config
        self.cache = cache

    # ------------------------------------------------------------------
    # plan-level driver
    # ------------------------------------------------------------------
    def run(
        self,
        command: Union[str, QueryCommand, QueryPlan],
        mode: OutputMode = OutputMode.LINES,
        ignore_case: bool = False,
    ) -> ExecutionResult:
        """Plan (if needed) and execute a command over every block."""
        tracer = get_tracer()
        start = time.perf_counter()
        stats = QueryStats()
        raw = command.raw if not isinstance(command, str) else command
        effective_mode = (
            command.mode if isinstance(command, QueryPlan) else mode
        )
        ledger = self._make_ledger(effective_mode)
        attrs: Dict[str, object] = {"command": raw}
        if effective_mode is not OutputMode.LINES:
            attrs["mode"] = effective_mode.value
        try:
            with tracer.span("query", **attrs) as qspan:
                with tracer.span("plan"), ledger.operator("plan"):
                    if isinstance(command, QueryPlan):
                        plan = command
                    else:
                        plan = build_plan(command, mode, ignore_case)
                names = self.source.names()
                outcomes = self._schedule(names, plan, stats, qspan, ledger)
                entries: List[Entry] = []
                renderings: List[str] = []
                rowsets: Dict[str, GroupRows] = {}
                merged: Optional[AggregatePartial] = None
                total = 0
                for outcome in outcomes:
                    entries.extend(outcome.entries)
                    total += outcome.count
                    if outcome.rendering is not None:
                        renderings.append(outcome.rendering)
                    if outcome.rows is not None:
                        rowsets[outcome.name] = outcome.rows
                    if outcome.partial is not None:
                        # Partial merge is commutative, so the block-order
                        # fold here equals any completion-order fold.
                        if merged is None:
                            merged = make_partial(plan.aggregate)
                        merged.merge(outcome.partial)
                        _AGG_PARTIALS.inc()
                entries.sort(key=lambda item: item[0])
                stats.entries_matched = total
                if (
                    plan.aggregate is not None
                    and plan.mode is not OutputMode.EXPLAIN
                ):
                    if merged is None:
                        merged = make_partial(plan.aggregate)
                    _AGG_QUERIES.inc(kind=plan.aggregate.kind.value)
                    _AGG_ROWS.inc(merged.rows)
                    qspan.set("aggregate_rows", merged.rows)
                qspan.set("blocks", len(names))
                qspan.set("entries_matched", stats.entries_matched)
                qspan.set("capsules_decompressed", stats.capsules_decompressed)
                qspan.set("bytes_decompressed", stats.bytes_decompressed)
        except BudgetExceeded as exc:
            # The per-block ledgers were merged by _schedule's finally, so
            # the exception carries the partial bill up to the caller.
            exc.ledger = ledger
            raise
        elapsed = time.perf_counter() - start
        if plan.mode is not OutputMode.EXPLAIN:
            stats.publish(elapsed)
        self._maybe_log_slow(plan, stats, ledger, elapsed)
        return ExecutionResult(
            plan, entries, stats, elapsed, renderings, ledger, merged,
            rowsets,
        )

    def _make_ledger(self, mode: OutputMode) -> QueryLedger:
        """An active ledger when anything will consume it, else the null
        object (which keeps the charge channel empty — zero overhead)."""
        max_read = getattr(self.config, "max_read_bytes", None)
        max_decoded = getattr(self.config, "max_decoded_values", None)
        slow_ms = getattr(self.config, "slow_query_ms", None)
        if (
            mode is not OutputMode.ANALYZE
            and slow_ms is None
            and max_read is None
            and max_decoded is None
        ):
            return NULL_LEDGER
        budget = (
            BudgetMeter(max_read, max_decoded)
            if max_read is not None or max_decoded is not None
            else None
        )
        return QueryLedger(budget)

    def _maybe_log_slow(
        self,
        plan: QueryPlan,
        stats: QueryStats,
        ledger: QueryLedger,
        elapsed: float,
    ) -> None:
        """Emit one slow-query record when the query crossed the threshold."""
        threshold = getattr(self.config, "slow_query_ms", None)
        if threshold is None or elapsed * 1000.0 < threshold:
            return
        from ..obs import slowlog

        record = slowlog.build_record(
            query=plan.raw,
            mode=plan.mode.value,
            elapsed_ms=elapsed * 1000.0,
            threshold_ms=float(threshold),
            plan=self.describe(plan),
            stats=stats.as_dict(),
            ledger=ledger.as_dict() if ledger.enabled else None,
        )
        slowlog.emit(record, getattr(self.config, "slow_query_log_path", None))

    def _schedule(
        self,
        names: List[str],
        plan: QueryPlan,
        stats: QueryStats,
        qspan: object,
        ledger: QueryLedger = NULL_LEDGER,
    ) -> List[BlockOutcome]:
        """Run every block, serially or on a thread pool, merging stats
        in block order either way."""
        tracer = get_tracer()
        parallelism = getattr(self.config, "query_parallelism", 1)

        def run_one(name: str, spawn: bool = True) -> Tuple[BlockOutcome, QueryStats]:
            block_stats = QueryStats()
            # One child ledger per block: a block runs wholly on one
            # thread, so its charges never race; the children are folded
            # back below once the pool has drained.  Serial execution has
            # no races to isolate, so it charges the root directly.
            block_ledger = ledger.spawn() if spawn else ledger
            with tracer.span("block", parent=qspan, block=name):
                outcome = self.execute_block(
                    name, plan, block_stats, block_ledger
                )
            return outcome, block_stats

        try:
            if parallelism > 1 and len(names) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(parallelism) as pool:
                    pairs = list(pool.map(run_one, names))
            else:
                pairs = [run_one(name, spawn=False) for name in names]
        finally:
            # Runs after the pool has exited (its with-block joins every
            # worker), so merging is race-free even when a BudgetExceeded
            # is propagating — the partial ledger stays consistent.
            ledger.merge_children()
        outcomes: List[BlockOutcome] = []
        for outcome, block_stats in pairs:
            stats.merge(block_stats)
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    # per-block operator pipeline
    # ------------------------------------------------------------------
    def execute_block(
        self,
        name: str,
        plan: QueryPlan,
        stats: QueryStats,
        ledger: QueryLedger = NULL_LEDGER,
    ) -> BlockOutcome:
        """BloomPrune → LoadBox → Locate/Match → Reconstruct for one block."""
        tracer = get_tracer()
        stats.blocks_visited += 1
        box = self.source.cached(name)
        if self.source.box_cache is not None:
            ledger.charge_box_cache(box is not None)
        data: Optional[bytes] = None
        use_bloom = bool(getattr(self.config, "use_block_bloom", False))
        summary = (
            self.source.summary(name)
            if getattr(self.config, "use_prune_index", True)
            else None
        )
        # -- TimePrune: a block whose sidecar timestamp range is disjoint
        # from the plan's wall-clock window is skipped before any Bloom or
        # stamp check — zero store reads.  Runs even for match-all
        # aggregates (no disjuncts needed); blocks without a known range
        # conservatively survive.
        if (
            box is None
            and summary is not None
            and (plan.from_time is not None or plan.to_time is not None)
            and not summary.in_time_range(plan.from_time, plan.to_time)
        ):
            stats.blocks_pruned += 1
            stats.blocks_time_pruned += 1
            rendering = (
                f"block {name}: pruned by time window "
                f"(block range [{summary.min_ts}, {summary.max_ts}] outside "
                f"[{plan.from_time}, {plan.to_time}])"
                if plan.mode is OutputMode.EXPLAIN
                else None
            )
            return BlockOutcome(name, pruned=True, rendering=rendering)
        # -- BloomPrune: with an index entry the whole check runs in
        # memory (zero store reads); otherwise only the Bloom section is
        # fetched via the TOC — a prune never pays a whole-blob read.
        # A match-all aggregate (no disjuncts) can never be pruned, so
        # the filter is skipped outright.
        if box is None and plan.disjuncts and (use_bloom or summary is not None):
            with tracer.span("block_filter") as fspan, ledger.operator(
                "block_filter"
            ):
                via = "prune index"
                if summary is not None:
                    settings = self._settings()
                    pruned = not summary_might_match(
                        summary,
                        plan.command,
                        use_stamps=getattr(settings, "use_stamps", True),
                        use_bloom=use_bloom,
                    )
                else:
                    via = "block-level Bloom filter"
                    bloom, data = self._read_bloom(name)
                    pruned = bloom is not None and not command_might_match(
                        bloom, plan.command
                    )
                fspan.set("pruned", pruned)
            if pruned:
                stats.blocks_pruned += 1
                rendering = (
                    f"block {name}: pruned by {via} "
                    "(no disjunct survives the mask/trigram checks)"
                    if plan.mode is OutputMode.EXPLAIN
                    else None
                )
                return BlockOutcome(name, pruned=True, rendering=rendering)
        # -- LoadBox
        if box is None:
            with tracer.span("load_box") as lspan, ledger.operator("load_box"):
                box = self._open_box(name, data)
                source = box._source
                if isinstance(source, StoreBlobSource):
                    lspan.set("bytes", source.bytes_read)
        # -- EXPLAIN: dry-run the remaining operators into a rendering.
        if plan.mode is OutputMode.EXPLAIN:
            from .explain import explain_block

            return BlockOutcome(
                name, rendering=explain_block(box, plan, name).summary()
            )
        # -- Locate (calling Match per search string).  A match-all
        # aggregate has nothing to locate: every row of every group.
        engine = BlockEngine(box, self._settings(), stats)
        with tracer.span("locate") as lspan, ledger.operator("locate"):
            if plan.disjuncts:
                hits = engine.execute(
                    plan, self._matcher(name, engine, stats, ledger)
                )
            else:
                hits = engine.full_rows()
            lspan.set("groups_hit", len(hits))
        count = sum(len(rows) for rows in hits.values())
        # -- ROWS: ship the located row sets themselves (bitmaps — a few
        # bytes per group) and let the caller defer reconstruction to a
        # bounded fetch; the cluster's grep gather path.
        if plan.mode is OutputMode.ROWS:
            return BlockOutcome(
                name, count=count,
                rows={g: rows for g, rows in hits.items() if rows},
            )
        # -- Aggregate (replaces Reconstruct for aggregate plans): fold
        # the located rows into a per-block partial without rebuilding a
        # single line.  ANALYZE aggregates run the same operator with the
        # ledger active.
        if plan.aggregate is not None:
            with tracer.span(
                "aggregate", kind=plan.aggregate.kind.value
            ) as aspan, ledger.operator("aggregate"):
                partial = self._aggregate_block(
                    box, engine, plan.aggregate, hits
                )
                aspan.set("rows", partial.rows)
            return BlockOutcome(name, count=count, partial=partial)
        # -- Reconstruct (elided for COUNT plans; ANALYZE runs it in full
        # so the ledger reflects what a real LINES query would cost)
        entries: List[Entry] = []
        if plan.mode in (OutputMode.LINES, OutputMode.ANALYZE) and hits:
            from ..core.reconstructor import BlockReconstructor

            with tracer.span("reconstruct") as rspan, ledger.operator(
                "reconstruct"
            ):
                # Reconstruction touches every vector of each hit group;
                # batch the still-unfetched payloads into coalesced
                # ranged reads instead of one read per capsule.
                prefetched = box.prefetch(hits.keys())
                if prefetched:
                    rspan.set("prefetched_bytes", prefetched)
                reconstructor = BlockReconstructor(
                    box, self._settings(), stats, readers=engine.readers
                )
                entries = reconstructor.reconstruct(hits)
                rspan.set("entries", len(entries))
        return BlockOutcome(name, entries=entries, count=count)

    # ------------------------------------------------------------------
    # deferred reconstruction (the second half of a ROWS query)
    # ------------------------------------------------------------------
    def reconstruct_rows(
        self,
        name: str,
        hits: GroupRows,
        stats: Optional[QueryStats] = None,
    ) -> List[Entry]:
        """Rebuild the original entries of pre-located rows of one block.

        The bounded-fetch half of the ROWS protocol: a coordinator that
        gathered row sets calls back (on any replica holding the block)
        with exactly the rows it still wants rendered.  Loads go through
        the shared BoxCache/lazy-I/O path; only the hit groups' capsule
        payloads are fetched, coalesced.
        """
        from ..core.reconstructor import BlockReconstructor

        stats = stats if stats is not None else QueryStats()
        hits = {g: rows for g, rows in hits.items() if rows}
        if not hits:
            return []
        tracer = get_tracer()
        with tracer.span("reconstruct", block=name) as rspan:
            box = self.load_box(name)
            prefetched = box.prefetch(hits.keys())
            if prefetched:
                rspan.set("prefetched_bytes", prefetched)
            reconstructor = BlockReconstructor(box, self._settings(), stats)
            entries = reconstructor.reconstruct(hits)
            rspan.set("entries", len(entries))
        return entries

    # ------------------------------------------------------------------
    # the Aggregate operator
    # ------------------------------------------------------------------
    def _aggregate_block(
        self,
        box: CapsuleBox,
        engine: BlockEngine,
        spec: AggregateSpec,
        hits: GroupRows,
    ) -> AggregatePartial:
        """Fold one block's located rows into a partial aggregate.

        Dictionary index cells and group metadata do almost all the work:

        * ``COUNT_BY_TEMPLATE`` counts row sets per static pattern —
          zero capsule payloads touched;
        * ``HISTOGRAM`` buckets ``first_line_id + line_ids[row]`` — the
          logical clock, again zero payloads;
        * field aggregates go through the readers' ``value_counts``: on
          nominal vectors that is raw index-cell counting (payload reads
          proportional to *distinct* values), real/plain vectors decode —
          the documented residual slow path.
        """
        partial = make_partial(spec)
        if spec.kind is AggregateKind.COUNT_BY_TEMPLATE:
            for group_idx, rows in hits.items():
                partial.add(  # type: ignore[attr-defined]
                    box.groups[group_idx].template.display(), len(rows)
                )
            return partial
        if spec.kind is AggregateKind.HISTOGRAM:
            for group_idx, rows in hits.items():
                line_ids = box.groups[group_idx].line_ids
                base = box.first_line_id
                for row in rows:
                    partial.add_line(base + line_ids[row], spec)  # type: ignore[attr-defined]
            return partial
        if spec.kind is AggregateKind.PAIRS:
            self._aggregate_pairs(box, engine, spec, hits, partial)
            return partial
        if spec.kind is AggregateKind.VALUES:
            self._aggregate_values(box, engine, spec, hits, partial)
            return partial
        # COUNT_BY / TOP_K / STATS: per-distinct-value counts suffice.
        schema = schema_of(box)
        for ref in schema.by_name(spec.field or ""):
            rows = hits.get(ref.group_index)
            if not rows:
                continue
            if ref.is_constant:
                partial.add(ref.constant or "", len(rows))  # type: ignore[attr-defined]
                continue
            reader = engine.reader(ref.group_index, ref.var_index)
            counts = reader.value_counts(rows)
            if isinstance(reader, NominalVectorReader):
                _AGG_INDEX_ROWS.inc(len(rows))
            else:
                _AGG_DECODED_ROWS.inc(len(rows))
            for value, n in counts.items():
                partial.add(ref.clean(value), n)  # type: ignore[attr-defined]
        return partial

    def _column_values(
        self,
        engine: BlockEngine,
        ref: FieldRef,
        rows: object,
    ) -> List[str]:
        """One field's (cleaned) values for the given row set, in row
        order — the VALUES/PAIRS extraction path."""
        if ref.is_constant:
            return [ref.constant or ""] * len(rows)  # type: ignore[arg-type]
        reader = engine.reader(ref.group_index, ref.var_index)
        _AGG_DECODED_ROWS.inc(len(rows))  # type: ignore[arg-type]
        if rows.is_full():  # type: ignore[attr-defined]
            return [ref.clean(value) for value in reader.values_list()]
        return [ref.clean(reader.value_at(row)) for row in rows]  # type: ignore[attr-defined]

    def _aggregate_values(
        self,
        box: CapsuleBox,
        engine: BlockEngine,
        spec: AggregateSpec,
        hits: GroupRows,
        partial: AggregatePartial,
    ) -> None:
        schema = schema_of(box)
        chunk: List[str] = []
        for ref in schema.by_name(spec.field or ""):
            rows = hits.get(ref.group_index)
            if not rows:
                continue
            chunk.extend(self._column_values(engine, ref, rows))
        if chunk:
            partial.add_chunk(box.first_line_id, chunk)  # type: ignore[attr-defined]

    def _aggregate_pairs(
        self,
        box: CapsuleBox,
        engine: BlockEngine,
        spec: AggregateSpec,
        hits: GroupRows,
        partial: AggregatePartial,
    ) -> None:
        """(key, value) extraction: both fields must share a group (the
        same template) for their rows to join."""
        schema = schema_of(box)
        value_refs = {
            ref.group_index: ref
            for ref in schema.by_name(spec.value_field or "")
        }
        chunk: List[Tuple[str, str]] = []
        for key_ref in schema.by_name(spec.field or ""):
            value_ref = value_refs.get(key_ref.group_index)
            if value_ref is None:
                continue
            rows = hits.get(key_ref.group_index)
            if not rows:
                continue
            keys = self._column_values(engine, key_ref, rows)
            values = self._column_values(engine, value_ref, rows)
            chunk.extend(zip(keys, values))
        if chunk:
            partial.add_chunk(box.first_line_id, chunk)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # box loading (shared by the pipeline, pinning and decompress_all)
    # ------------------------------------------------------------------
    def _read_bloom(
        self, name: str
    ) -> Tuple[Optional[object], Optional[bytes]]:
        """The block's Bloom filter, via a ranged TOC read when possible.

        Returns ``(bloom, data)`` where *data* is the full blob iff the
        store forced a whole-blob fallback (reused by LoadBox).
        """
        blob = self.source.blob(name)
        if blob is not None:
            return CapsuleBox.open_bloom(blob), None
        data = self.source.raw(name)
        return CapsuleBox.read_bloom(data), data

    def _open_box(self, name: str, data: Optional[bytes] = None) -> CapsuleBox:
        """Open one box: lazily through ranged reads when configured and
        supported, else from the whole blob."""
        templates = getattr(self.source, "templates", None)
        if data is not None:
            return CapsuleBox.deserialize(data, templates=templates)
        blob = (
            self.source.blob(name)
            if getattr(self.config, "lazy_io", True)
            else None
        )
        if blob is not None:
            return CapsuleBox.open(blob, templates=templates)
        return CapsuleBox.deserialize(self.source.raw(name), templates=templates)

    def load_box(self, name: str, pin: bool = False) -> CapsuleBox:
        """Load (or reuse) one block's box outside a query.

        This is the same path queries take through the shared
        :class:`BoxCache`: pinned boxes (``pin=True``, refining sessions)
        and query-time boxes share one LRU and one set of metrics instead
        of deserializing the blob twice.
        """
        box = self.source.cached(name)
        if box is None:
            box = self._open_box(name)
            if pin and self.source.box_cache is not None:
                self.source.box_cache.put(name, box)
        return box

    def _matcher(
        self,
        name: str,
        engine: BlockEngine,
        stats: QueryStats,
        ledger: QueryLedger = NULL_LEDGER,
    ) -> Callable[[SearchString], GroupRows]:
        """The Match operator: engine search memoized per (block, search)."""
        tracer = get_tracer()
        use_cache = (
            self.cache is not None
            and getattr(self.config, "use_query_cache", False)
        )
        # One reusable timer for the whole block: match runs once per
        # (group, search) pair — the hottest operator boundary by far.
        match_timer = ledger.operator("match")

        def match(search: SearchString) -> GroupRows:
            with tracer.span(
                "match", search=search.cache_key
            ) as mspan, match_timer:
                if use_cache:
                    cached = self.cache.get(name, search.cache_key)  # type: ignore[union-attr]
                    if cached is not None:
                        stats.cache_hits += 1
                        mspan.set("cache_hit", True)
                        return cached
                rows = engine.search_string_rows(search)
                if use_cache:
                    self.cache.put(name, search.cache_key, rows)  # type: ignore[union-attr]
                return rows

        return match

    def _settings(self) -> object:
        return self.config.query_settings()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def describe(self, plan: QueryPlan) -> str:
        """The physical plan: operators, scheduler, term order."""
        bloom = "on" if getattr(self.config, "use_block_bloom", False) else "off"
        cache = (
            "on"
            if self.cache is not None
            and getattr(self.config, "use_query_cache", False)
            else "off"
        )
        if plan.aggregate is not None and plan.mode is not OutputMode.EXPLAIN:
            tail = f"Aggregate({plan.aggregate.describe()})"
        elif plan.mode in (OutputMode.LINES, OutputMode.ANALYZE):
            tail = "Reconstruct"
        elif plan.mode is OutputMode.COUNT:
            tail = "Reconstruct(elided)"
        elif plan.mode is OutputMode.ROWS:
            tail = "ShipRowSets -> Reconstruct(deferred)"
        else:
            tail = "Reconstruct(dry-run)"
        parallelism = getattr(self.config, "query_parallelism", 1)
        scheduler = (
            f"thread-pool({parallelism})" if parallelism > 1 else "serial"
        )
        io = "lazy (ranged reads)" if getattr(self.config, "lazy_io", True) else "eager (whole blobs)"
        index = (
            f"loaded ({len(self.source.index)} block(s))"
            if self.source.index is not None
            and getattr(self.config, "use_prune_index", True)
            else "off"
        )
        lines = [
            f"physical plan for {plan.raw!r} (mode={plan.mode.value})",
            f"  pipeline: BloomPrune({bloom}) -> LoadBox -> Locate -> "
            f"Match(query_cache={cache}) -> {tail}",
            f"  io: {io}; prune index: {index}",
            f"  scheduler: {scheduler} over {len(self.source.names())} block(s)",
        ]
        for i, disjunct in enumerate(plan.disjuncts):
            lines.append(f"  disjunct {i}: {disjunct.describe()}")
        return "\n".join(lines)
