"""Physical operator pipeline executing a :class:`QueryPlan` over blocks.

This is the single execution path behind ``LogGrep.grep``, ``count``,
``explain``, interactive sessions and the cluster's per-node block
queries.  Per block the pipeline is::

    BloomPrune → LoadBox → Locate → Match* → Reconstruct

* **BloomPrune** — reads only the block-level trigram Bloom filter (it
  sits before the metadata section, so pruning never pays the box
  deserialization) and drops the block when no disjunct can match.
* **LoadBox** — deserializes the CapsuleBox, or reuses a pinned box from
  the bounded :class:`BoxCache` (interactive refining sessions).
* **Locate** — evaluates the plan's selectivity-ordered terms with the
  row-set algebra of :class:`~repro.query.engine.BlockEngine`.
* **Match** — resolves one search string to per-group row sets; memoized
  on ``(block, search.cache_key)`` in the shared
  :class:`~repro.query.cache.QueryCache` when configured.
* **Reconstruct** — rebuilds the original entries of the located rows;
  elided entirely for ``COUNT`` plans, and the whole pipeline downstream
  of LoadBox is replaced by a dry-run rendering for ``EXPLAIN`` plans.

Blocks are independent, so the executor schedules them either serially or
on a thread pool (``config.query_parallelism``); per-block
:class:`QueryStats` are merged in block order either way.  Obs spans sit
on the operator boundaries — ``query → plan / block → block_filter /
load_box / locate → match → decompress / reconstruct`` — so trace stage
names are stable regardless of the caller.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..capsule.box import CapsuleBox
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .blockfilter import command_might_match
from .cache import QueryCache
from .engine import BlockEngine, GroupRows
from .language import QueryCommand, SearchString
from .plan import OutputMode, QueryPlan, build_plan
from .stats import QueryStats

_BOX_HITS = get_registry().counter(
    "loggrep_box_cache_hits_total", "Box cache lookups that hit"
)
_BOX_MISSES = get_registry().counter(
    "loggrep_box_cache_misses_total", "Box cache lookups that missed"
)
_BOX_EVICTIONS = get_registry().counter(
    "loggrep_box_cache_evictions_total", "Boxes evicted by the LRU bound"
)
_BOX_ENTRIES = get_registry().gauge(
    "loggrep_box_cache_entries", "Deserialized boxes currently pinned"
)

#: One reconstructed entry: (global line id, original text).
Entry = Tuple[int, str]


class BoxCache:
    """A small bounded LRU of deserialized CapsuleBoxes.

    Pinned refining sessions keep boxes across queries; the bound keeps a
    pin of a large archive from holding every deserialized block at once.
    Thread-safe: parallel block schedulers share one instance.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("box cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[str, CapsuleBox]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, name: str) -> Optional[CapsuleBox]:
        with self._lock:
            box = self._entries.get(name)
            if box is None:
                _BOX_MISSES.inc()
                return None
            self._entries.move_to_end(name)
            _BOX_HITS.inc()
            return box

    def put(self, name: str, box: CapsuleBox) -> None:
        with self._lock:
            self._entries[name] = box
            self._entries.move_to_end(name)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _BOX_EVICTIONS.inc()
            _BOX_ENTRIES.set(len(self._entries))

    def pop(self, name: str) -> Optional[CapsuleBox]:
        """Drop one block's box (e.g. after the block is rewritten)."""
        with self._lock:
            box = self._entries.pop(name, None)
            _BOX_ENTRIES.set(len(self._entries))
            return box

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            _BOX_ENTRIES.set(0)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries


class StoreBoxSource:
    """Adapts an archive store (+ optional pin cache) to the executor.

    The executor only needs three things from storage: the block names,
    the raw serialized bytes of one block, and a possibly-pinned
    deserialized box.  Anything that provides those — a local store, a
    cluster node's replica store — can sit behind the same pipeline.
    """

    def __init__(self, store: object, box_cache: Optional[BoxCache] = None):
        self.store = store
        self.box_cache = box_cache

    def names(self) -> List[str]:
        return self.store.names()  # type: ignore[attr-defined]

    def raw(self, name: str) -> bytes:
        return self.store.get(name)  # type: ignore[attr-defined]

    def cached(self, name: str) -> Optional[CapsuleBox]:
        if self.box_cache is None:
            return None
        return self.box_cache.get(name)


@dataclass
class BlockOutcome:
    """What one block contributed to a query."""

    name: str
    pruned: bool = False
    entries: List[Entry] = field(default_factory=list)
    count: int = 0
    rendering: Optional[str] = None  # EXPLAIN mode only


@dataclass
class ExecutionResult:
    """The merged outcome of one plan execution."""

    plan: QueryPlan
    entries: List[Entry]
    stats: QueryStats
    elapsed: float
    renderings: List[str] = field(default_factory=list)

    @property
    def count(self) -> int:
        return self.stats.entries_matched

    @property
    def rendering(self) -> str:
        return "\n\n".join(self.renderings)


class QueryExecutor:
    """Runs query plans over every block of one box source."""

    def __init__(
        self,
        source: StoreBoxSource,
        config: object,
        cache: Optional[QueryCache] = None,
    ):
        self.source = source
        self.config = config
        self.cache = cache

    # ------------------------------------------------------------------
    # plan-level driver
    # ------------------------------------------------------------------
    def run(
        self,
        command: Union[str, QueryCommand, QueryPlan],
        mode: OutputMode = OutputMode.LINES,
        ignore_case: bool = False,
    ) -> ExecutionResult:
        """Plan (if needed) and execute a command over every block."""
        tracer = get_tracer()
        start = time.perf_counter()
        stats = QueryStats()
        raw = command.raw if not isinstance(command, str) else command
        attrs: Dict[str, object] = {"command": raw}
        if mode is not OutputMode.LINES:
            attrs["mode"] = mode.value
        with tracer.span("query", **attrs) as qspan:
            with tracer.span("plan"):
                if isinstance(command, QueryPlan):
                    plan = command
                else:
                    plan = build_plan(command, mode, ignore_case)
            names = self.source.names()
            outcomes = self._schedule(names, plan, stats, qspan)
            entries: List[Entry] = []
            renderings: List[str] = []
            total = 0
            for outcome in outcomes:
                entries.extend(outcome.entries)
                total += outcome.count
                if outcome.rendering is not None:
                    renderings.append(outcome.rendering)
            entries.sort(key=lambda item: item[0])
            stats.entries_matched = total
            qspan.set("blocks", len(names))
            qspan.set("entries_matched", stats.entries_matched)
            qspan.set("capsules_decompressed", stats.capsules_decompressed)
            qspan.set("bytes_decompressed", stats.bytes_decompressed)
        elapsed = time.perf_counter() - start
        if plan.mode is not OutputMode.EXPLAIN:
            stats.publish(elapsed)
        return ExecutionResult(plan, entries, stats, elapsed, renderings)

    def _schedule(
        self,
        names: List[str],
        plan: QueryPlan,
        stats: QueryStats,
        qspan: object,
    ) -> List[BlockOutcome]:
        """Run every block, serially or on a thread pool, merging stats
        in block order either way."""
        tracer = get_tracer()
        parallelism = getattr(self.config, "query_parallelism", 1)

        def run_one(name: str) -> Tuple[BlockOutcome, QueryStats]:
            block_stats = QueryStats()
            with tracer.span("block", parent=qspan, block=name):
                outcome = self.execute_block(name, plan, block_stats)
            return outcome, block_stats

        if parallelism > 1 and len(names) > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(parallelism) as pool:
                pairs = list(pool.map(run_one, names))
        else:
            pairs = [run_one(name) for name in names]
        outcomes: List[BlockOutcome] = []
        for outcome, block_stats in pairs:
            stats.merge(block_stats)
            outcomes.append(outcome)
        return outcomes

    # ------------------------------------------------------------------
    # per-block operator pipeline
    # ------------------------------------------------------------------
    def execute_block(
        self, name: str, plan: QueryPlan, stats: QueryStats
    ) -> BlockOutcome:
        """BloomPrune → LoadBox → Locate/Match → Reconstruct for one block."""
        tracer = get_tracer()
        stats.blocks_visited += 1
        box = self.source.cached(name)
        data: Optional[bytes] = None
        # -- BloomPrune: the filter sits before the metadata section, so a
        # prune never pays the box deserialization.
        if box is None and getattr(self.config, "use_block_bloom", False):
            with tracer.span("block_filter") as fspan:
                data = self.source.raw(name)
                bloom = CapsuleBox.read_bloom(data)
                pruned = bloom is not None and not command_might_match(
                    bloom, plan.command
                )
                fspan.set("pruned", pruned)
            if pruned:
                stats.blocks_pruned += 1
                rendering = (
                    f"block {name}: pruned by block-level Bloom filter "
                    "(no disjunct's literals survive the trigram check)"
                    if plan.mode is OutputMode.EXPLAIN
                    else None
                )
                return BlockOutcome(name, pruned=True, rendering=rendering)
        # -- LoadBox
        if box is None:
            with tracer.span("load_box") as lspan:
                if data is None:
                    data = self.source.raw(name)
                box = CapsuleBox.deserialize(data)
                lspan.set("bytes", len(data))
        # -- EXPLAIN: dry-run the remaining operators into a rendering.
        if plan.mode is OutputMode.EXPLAIN:
            from .explain import explain_block

            return BlockOutcome(
                name, rendering=explain_block(box, plan, name).summary()
            )
        # -- Locate (calling Match per search string)
        engine = BlockEngine(box, self._settings(), stats)
        with tracer.span("locate") as lspan:
            hits = engine.execute(plan, self._matcher(name, engine, stats))
            lspan.set("groups_hit", len(hits))
        count = sum(len(rows) for rows in hits.values())
        # -- Reconstruct (elided for COUNT plans)
        entries: List[Entry] = []
        if plan.mode is OutputMode.LINES and hits:
            from ..core.reconstructor import BlockReconstructor

            with tracer.span("reconstruct") as rspan:
                reconstructor = BlockReconstructor(
                    box, self._settings(), stats, readers=engine.readers
                )
                entries = reconstructor.reconstruct(hits)
                rspan.set("entries", len(entries))
        return BlockOutcome(name, entries=entries, count=count)

    def _matcher(
        self, name: str, engine: BlockEngine, stats: QueryStats
    ) -> Callable[[SearchString], GroupRows]:
        """The Match operator: engine search memoized per (block, search)."""
        tracer = get_tracer()
        use_cache = (
            self.cache is not None
            and getattr(self.config, "use_query_cache", False)
        )

        def match(search: SearchString) -> GroupRows:
            with tracer.span("match", search=search.cache_key) as mspan:
                if use_cache:
                    cached = self.cache.get(name, search.cache_key)  # type: ignore[union-attr]
                    if cached is not None:
                        stats.cache_hits += 1
                        mspan.set("cache_hit", True)
                        return cached
                rows = engine.search_string_rows(search)
                if use_cache:
                    self.cache.put(name, search.cache_key, rows)  # type: ignore[union-attr]
                return rows

        return match

    def _settings(self) -> object:
        return self.config.query_settings()  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def describe(self, plan: QueryPlan) -> str:
        """The physical plan: operators, scheduler, term order."""
        bloom = "on" if getattr(self.config, "use_block_bloom", False) else "off"
        cache = (
            "on"
            if self.cache is not None
            and getattr(self.config, "use_query_cache", False)
            else "off"
        )
        if plan.mode is OutputMode.LINES:
            tail = "Reconstruct"
        elif plan.mode is OutputMode.COUNT:
            tail = "Reconstruct(elided)"
        else:
            tail = "Reconstruct(dry-run)"
        parallelism = getattr(self.config, "query_parallelism", 1)
        scheduler = (
            f"thread-pool({parallelism})" if parallelism > 1 else "serial"
        )
        lines = [
            f"physical plan for {plan.raw!r} (mode={plan.mode.value})",
            f"  pipeline: BloomPrune({bloom}) -> LoadBox -> Locate -> "
            f"Match(query_cache={cache}) -> {tail}",
            f"  scheduler: {scheduler} over {len(self.source.names())} block(s)",
        ]
        for i, disjunct in enumerate(plan.disjuncts):
            lines.append(f"  disjunct {i}: {disjunct.describe()}")
        return "\n".join(lines)
