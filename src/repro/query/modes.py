"""Keyword matching modes (paper §5.1).

Depending on where a keyword sits in a search string, it must occur in a
value as a prefix, a suffix, an exact match or an arbitrary substring.
The Locator's recursion also produces constraints in these four modes for
individual sub-variable vectors.
"""

from __future__ import annotations

import enum
from typing import AnyStr


class MatchMode(enum.Enum):
    """How a fragment must occur within a value."""

    EXACT = "exact"
    PREFIX = "prefix"
    SUFFIX = "suffix"
    SUBSTRING = "substring"


def value_matches(value: AnyStr, fragment: AnyStr, mode: MatchMode) -> bool:
    """Test *fragment* against a single concrete value (str or bytes —
    the byte-level scan fallback matches rendered raw values directly)."""
    if mode is MatchMode.EXACT:
        return value == fragment
    if mode is MatchMode.PREFIX:
        return value.startswith(fragment)
    if mode is MatchMode.SUFFIX:
        return value.endswith(fragment)
    return fragment in value
