"""Keyword matching modes (paper §5.1).

Depending on where a keyword sits in a search string, it must occur in a
value as a prefix, a suffix, an exact match or an arbitrary substring.
The Locator's recursion also produces constraints in these four modes for
individual sub-variable vectors.
"""

from __future__ import annotations

import enum
from typing import AnyStr


class AggregateKind(enum.Enum):
    """What an aggregate plan folds the matched rows into (§2).

    The first five are user-facing (``cli.py agg``); ``VALUES`` and
    ``PAIRS`` are internal column/pair extraction kinds that let the
    :class:`~repro.analytics.analyzer.Analyzer` route *every* data access
    through the executor pipeline.
    """

    COUNT_BY = "count_by"  # GROUP BY field, COUNT(*)
    TOP_K = "top_k"  # k most frequent field values
    STATS = "stats"  # numeric summary of a field
    HISTOGRAM = "histogram"  # time-bucketed hit counts (logical clock)
    COUNT_BY_TEMPLATE = "count_by_template"  # GROUP BY static pattern
    VALUES = "values"  # raw column stream (internal)
    PAIRS = "pairs"  # (key, value) column join (internal)


class MatchMode(enum.Enum):
    """How a fragment must occur within a value."""

    EXACT = "exact"
    PREFIX = "prefix"
    SUFFIX = "suffix"
    SUBSTRING = "substring"


def value_matches(value: AnyStr, fragment: AnyStr, mode: MatchMode) -> bool:
    """Test *fragment* against a single concrete value (str or bytes —
    the byte-level scan fallback matches rendered raw values directly)."""
    if mode is MatchMode.EXACT:
        return value == fragment
    if mode is MatchMode.PREFIX:
        return value.startswith(fragment)
    if mode is MatchMode.SUFFIX:
        return value.endswith(fragment)
    return fragment in value
