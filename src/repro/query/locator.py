"""Capsule locating and filtering (paper §5.1, Fig 6).

Given a keyword and a runtime pattern, the Locator enumerates every way
the keyword could occur in a value following that pattern.  Each *possible
match* is a set of constraints — (sub-variable, fragment, mode) triples —
that certain Capsules would have to satisfy; the final row set is the
union over possible matches of the intersection of each match's per-
Capsule results.

The recursion implements the paper's three constant cases:

* **head**: a suffix of the constant is a prefix of the keyword → the rest
  of the keyword must be a *prefix* of what follows;
* **tail**: a prefix of the constant is a suffix of the keyword → the rest
  must be a *suffix* of what precedes;
* **body**: the constant is an interior substring of the keyword → prefix
  and suffix recursions on both sides, intersected.

Stamps are checked while constraints are generated, so impossible matches
are pruned before any Capsule is decompressed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..capsule.stamp import CapsuleStamp
from ..runtime.pattern import Const, RuntimePattern, SubVar
from .modes import MatchMode

#: (sub-variable index, fragment, mode) — a requirement on one Capsule.
Constraint = Tuple[int, str, MatchMode]

#: One possible match: constraints that must *all* hold.  The empty tuple
#: means the keyword is satisfied by the pattern's constants alone — every
#: value following the pattern matches.
Candidate = Tuple[Constraint, ...]

#: Sentinel: the candidate enumeration exploded; the caller must fall back
#: to scanning the vector (correct, just slower).
TOO_COMPLEX = None

#: Enumeration budget before giving up and returning TOO_COMPLEX.
MAX_CANDIDATES = 128


def locate(
    pattern: RuntimePattern,
    stamps: Sequence[CapsuleStamp],
    fragment: str,
    mode: MatchMode,
    use_stamps: bool = True,
    max_candidates: int = MAX_CANDIDATES,
) -> Optional[List[Candidate]]:
    """Enumerate the possible matches of *fragment* against *pattern*.

    ``stamps[i]`` is the stamp of sub-variable ``i``'s Capsule.  Returns a
    deduplicated candidate list, or :data:`TOO_COMPLEX` when the search
    space exceeded ``max_candidates`` (tests shrink the budget to force
    the scan fallback on small vectors).
    """
    locator = _Locator(pattern, stamps, use_stamps, max_candidates)
    try:
        if mode is MatchMode.SUBSTRING:
            raw = locator.match_substring(fragment)
        elif mode is MatchMode.PREFIX:
            raw = locator.match_prefix(0, fragment)
        elif mode is MatchMode.SUFFIX:
            raw = locator.match_suffix(len(pattern.elements), fragment)
        else:
            raw = locator.match_exact(0, fragment)
    except _Exploded:
        return TOO_COMPLEX
    seen = set()
    out: List[Candidate] = []
    for candidate in raw:
        key = frozenset(candidate)
        if key not in seen:
            seen.add(key)
            out.append(candidate)
        if not candidate:
            # An unconditional match subsumes everything else.
            return [()]
    return out


class _Exploded(Exception):
    """Internal: candidate budget exceeded."""


class _Locator:
    def __init__(
        self,
        pattern: RuntimePattern,
        stamps: Sequence[CapsuleStamp],
        use_stamps: bool,
        max_candidates: int = MAX_CANDIDATES,
    ):
        self.elements = pattern.elements
        self.stamps = stamps
        self.use_stamps = use_stamps
        self.max_candidates = max_candidates
        self.produced = 0
        self._prefix_memo: Dict[Tuple[int, str], List[Candidate]] = {}
        self._suffix_memo: Dict[Tuple[int, str], List[Candidate]] = {}
        self._exact_memo: Dict[Tuple[int, str], List[Candidate]] = {}

    # ------------------------------------------------------------------
    def _admits(self, subvar: int, fragment: str) -> bool:
        if not self.use_stamps:
            return True
        return self.stamps[subvar].admits(fragment)

    def _max_len(self, subvar: int) -> int:
        if not self.use_stamps:
            return 1 << 30
        return self.stamps[subvar].max_len

    def _budget(self, count: int = 1) -> None:
        self.produced += count
        if self.produced > self.max_candidates:
            raise _Exploded()

    # ------------------------------------------------------------------
    def match_prefix(self, i: int, frag: str) -> List[Candidate]:
        """Ways *frag* can be a prefix of values of ``elements[i:]``."""
        if not frag:
            return [()]
        key = (i, frag)
        cached = self._prefix_memo.get(key)
        if cached is not None:
            return cached
        out: List[Candidate] = []
        if i < len(self.elements):
            el = self.elements[i]
            if isinstance(el, Const):
                text = el.text
                if len(frag) <= len(text):
                    if text.startswith(frag):
                        out.append(())
                elif frag.startswith(text):
                    out = self.match_prefix(i + 1, frag[len(text) :])
            else:
                subvar = el.index
                if self._admits(subvar, frag):
                    self._budget()
                    out.append(((subvar, frag, MatchMode.PREFIX),))
                top = min(len(frag) - 1, self._max_len(subvar))
                for k in range(0, top + 1):
                    head = frag[:k]
                    if k and not self._admits(subvar, head):
                        continue
                    for rest in self.match_prefix(i + 1, frag[k:]):
                        self._budget()
                        out.append(((subvar, head, MatchMode.EXACT),) + rest)
        self._prefix_memo[key] = out
        return out

    # ------------------------------------------------------------------
    def match_suffix(self, j: int, frag: str) -> List[Candidate]:
        """Ways *frag* can be a suffix of values of ``elements[:j]``."""
        if not frag:
            return [()]
        key = (j, frag)
        cached = self._suffix_memo.get(key)
        if cached is not None:
            return cached
        out: List[Candidate] = []
        if j > 0:
            el = self.elements[j - 1]
            if isinstance(el, Const):
                text = el.text
                if len(frag) <= len(text):
                    if text.endswith(frag):
                        out.append(())
                elif frag.endswith(text):
                    out = self.match_suffix(j - 1, frag[: -len(text)])
            else:
                subvar = el.index
                if self._admits(subvar, frag):
                    self._budget()
                    out.append(((subvar, frag, MatchMode.SUFFIX),))
                top = min(len(frag) - 1, self._max_len(subvar))
                for k in range(0, top + 1):
                    tail = frag[len(frag) - k :] if k else ""
                    if k and not self._admits(subvar, tail):
                        continue
                    for rest in self.match_suffix(j - 1, frag[: len(frag) - k]):
                        self._budget()
                        out.append(((subvar, tail, MatchMode.EXACT),) + rest)
        self._suffix_memo[key] = out
        return out

    # ------------------------------------------------------------------
    def match_exact(self, i: int, frag: str) -> List[Candidate]:
        """Ways *frag* can equal an entire value of ``elements[i:]``."""
        key = (i, frag)
        cached = self._exact_memo.get(key)
        if cached is not None:
            return cached
        out: List[Candidate] = []
        if i == len(self.elements):
            if not frag:
                out.append(())
        else:
            el = self.elements[i]
            if isinstance(el, Const):
                if frag.startswith(el.text):
                    out = self.match_exact(i + 1, frag[len(el.text) :])
            else:
                subvar = el.index
                top = min(len(frag), self._max_len(subvar))
                for k in range(0, top + 1):
                    head = frag[:k]
                    if k and not self._admits(subvar, head):
                        continue
                    for rest in self.match_exact(i + 1, frag[k:]):
                        self._budget()
                        out.append(((subvar, head, MatchMode.EXACT),) + rest)
        self._exact_memo[key] = out
        return out

    # ------------------------------------------------------------------
    def match_substring(self, frag: str) -> List[Candidate]:
        """Ways *frag* can occur anywhere in a value (the general case)."""
        if not frag:
            return [()]
        out: List[Candidate] = []
        for i, el in enumerate(self.elements):
            if isinstance(el, SubVar):
                if self._admits(el.index, frag):
                    self._budget()
                    out.append(((el.index, frag, MatchMode.SUBSTRING),))
                continue
            text = el.text
            if frag in text:
                # Fully inside the constant: every value matches.
                return [()]
            # Head case: constant suffix == keyword prefix.
            top = min(len(text), len(frag) - 1)
            for k in range(1, top + 1):
                if text.endswith(frag[:k]):
                    for rest in self.match_prefix(i + 1, frag[k:]):
                        self._budget()
                        out.append(rest)
            # Tail case: constant prefix == keyword suffix.
            for k in range(1, top + 1):
                if text.startswith(frag[len(frag) - k :]):
                    for rest in self.match_suffix(i, frag[: len(frag) - k]):
                        self._budget()
                        out.append(rest)
            # Body case: constant strictly inside the keyword.
            if len(text) < len(frag):
                start = frag.find(text, 1)
                while start != -1 and start + len(text) < len(frag):
                    pres = self.match_suffix(i, frag[:start])
                    posts = self.match_prefix(i + 1, frag[start + len(text) :])
                    for pre in pres:
                        for post in posts:
                            self._budget()
                            out.append(pre + post)
                    start = frag.find(text, start + 1)
        return out
