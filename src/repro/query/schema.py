"""Schema discovery over compressed archives.

The paper's §2 describes a second debugging phase: query results are
passed to "another system, which performs more sophisticated analysis like
anomaly detection, structure-based aggregation with SQL".  LogGrep's
storage format already *is* structured — groups are relations, variable
vectors are columns — so aggregation can run directly on Capsules without
ever reconstructing log text.

Field names are inferred from the recovered structure itself:

* a variable whose runtime pattern starts with a constant like
  ``Project:<*>`` or ``HWID=<*>`` is named after that key (``Project``,
  ``HWID``), and extraction strips the key prefix;
* a variable preceded by a constant *token* ending in ``:`` or ``=``
  (CLP-style ``state: <*>``) is named after that token;
* anything else gets a positional name ``g<template>_v<slot>``.

Discovery reads only group templates and vector metadata — under lazy
I/O no capsule payload is fetched — and is memoized per CapsuleBox
(:func:`schema_of`) since the Aggregate operator re-discovers on every
query while boxes live in the BoxCache.

This module moved here from ``repro.analytics.schema`` so the executor's
Aggregate operator can use it without importing ``analytics`` (which
imports the LogGrep facade — a cycle); the old path re-exports it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..capsule.assembler import (
    NominalEncodedVector,
    RealEncodedVector,
)
from ..capsule.box import CapsuleBox
from ..runtime.pattern import Const

#: "key:" / "key=" at the *start* of a constant fragment.
_KEY_PREFIX_RE = re.compile(r"^([A-Za-z][A-Za-z0-9_.-]*)([:=])")
#: "key:" / "key=" as an entire preceding token.
_KEY_TOKEN_RE = re.compile(r"([A-Za-z][A-Za-z0-9_.-]*)[:=]$")


@dataclass(frozen=True)
class FieldRef:
    """One column of one group: where a named field lives.

    ``var_index == -1`` marks a *constant field*: the template's token is
    the literal ``key:value`` (e.g. an incident template where every entry
    has ``Project:2963``), so every row of the group carries ``constant``.
    """

    name: str
    template_id: int
    group_index: int
    var_index: int
    strip_prefix: str = ""  # leading "key:" baked into the stored values
    constant: Optional[str] = None

    @property
    def is_constant(self) -> bool:
        return self.var_index < 0

    def clean(self, value: str) -> str:
        if self.strip_prefix and value.startswith(self.strip_prefix):
            return value[len(self.strip_prefix) :]
        return value


@dataclass
class Schema:
    """All fields discovered in one CapsuleBox."""

    fields: List[FieldRef] = field(default_factory=list)

    def by_name(self, name: str) -> List[FieldRef]:
        return [ref for ref in self.fields if ref.name == name]

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for ref in self.fields:
            seen.setdefault(ref.name, None)
        return list(seen)


def _leading_const(encoded: object) -> Optional[str]:
    """The first constant fragment of a vector's runtime pattern(s).

    For nominal vectors every dictionary pattern must agree on the
    key-bearing prefix.
    """
    if isinstance(encoded, RealEncodedVector):
        elements = encoded.pattern.elements
        if elements and isinstance(elements[0], Const):
            return elements[0].text
        return None
    if isinstance(encoded, NominalEncodedVector):
        prefixes = set()
        for dp in encoded.dict_patterns:
            elements = dp.pattern.elements
            if not elements or not isinstance(elements[0], Const):
                return None
            match = _KEY_PREFIX_RE.match(elements[0].text)
            if match is None:
                return None
            prefixes.add(match.group(0))
        if len(prefixes) == 1:
            return prefixes.pop()
    return None


def discover_schema(box: CapsuleBox) -> Schema:
    """Infer field names for every column (and constant pseudo-field)."""
    schema = Schema()
    for group_index, group in enumerate(box.groups):
        template = group.template
        for var_index, encoded in enumerate(group.vectors):
            token_pos = template.var_positions[var_index]
            name: Optional[str] = None
            strip = ""
            leading = _leading_const(encoded)
            if leading is not None:
                match = _KEY_PREFIX_RE.match(leading)
                if match:
                    name = match.group(1)
                    strip = match.group(0)
            if name is None and token_pos > 0:
                previous = template.tokens[token_pos - 1]
                if previous is not None:
                    match = _KEY_TOKEN_RE.search(previous)
                    if match:
                        name = match.group(1)
            if name is None:
                name = f"g{template.template_id}_v{var_index}"
            schema.fields.append(
                FieldRef(name, template.template_id, group_index, var_index, strip)
            )
        # Constant key:value tokens (e.g. an incident template where every
        # entry reads Project:2963) become constant pseudo-fields, so
        # aggregations see those rows too.
        for token in template.tokens:
            if token is None:
                continue
            match = _KEY_PREFIX_RE.match(token)
            if match and match.end() < len(token):
                schema.fields.append(
                    FieldRef(
                        match.group(1),
                        template.template_id,
                        group_index,
                        -1,
                        constant=token[match.end() :],
                    )
                )
    return schema


def schema_of(box: CapsuleBox) -> Schema:
    """Memoized :func:`discover_schema` — the memo lives on the box, so
    it dies with it (BoxCache eviction) and costs nothing to look up.

    The Aggregate operator runs once per (query, block); cached boxes
    (BoxCache, pinned sessions) would otherwise pay re-discovery on every
    aggregate.  A racing duplicate discovery under the thread-pool
    scheduler is benign: discovery is deterministic, last write wins.
    """
    schema: Optional[Schema] = getattr(box, "_schema_memo", None)
    if schema is None:
        schema = discover_schema(box)
        box._schema_memo = schema
    return schema
