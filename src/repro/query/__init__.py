"""Query stack: language, locator, matchers, readers, engine and cache (§5)."""

from .cache import QueryCache
from .engine import BlockEngine, GroupRows
from .executor import BoxCache, ExecutionResult, QueryExecutor, StoreBoxSource
from .language import Keyword, QueryCommand, SearchString, Term, parse_query
from .locator import TOO_COMPLEX, locate
from .matcher import search_capsule
from .modes import MatchMode, value_matches
from .plan import OutputMode, QueryPlan, build_plan
from .stats import (
    NULL_LEDGER,
    OPERATORS,
    BudgetMeter,
    NullQueryLedger,
    OperatorStats,
    QueryLedger,
    QueryStats,
)
from .vectors import (
    NominalVectorReader,
    PlainVectorReader,
    QuerySettings,
    RealVectorReader,
    make_reader,
)

__all__ = [
    "parse_query",
    "build_plan",
    "OutputMode",
    "QueryPlan",
    "QueryExecutor",
    "ExecutionResult",
    "StoreBoxSource",
    "BoxCache",
    "QueryCommand",
    "SearchString",
    "Term",
    "Keyword",
    "MatchMode",
    "value_matches",
    "locate",
    "TOO_COMPLEX",
    "search_capsule",
    "QueryStats",
    "QueryLedger",
    "NullQueryLedger",
    "NULL_LEDGER",
    "OperatorStats",
    "BudgetMeter",
    "OPERATORS",
    "QuerySettings",
    "BlockEngine",
    "GroupRows",
    "QueryCache",
    "RealVectorReader",
    "NominalVectorReader",
    "PlainVectorReader",
    "make_reader",
]
