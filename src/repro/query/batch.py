"""Multi-query shared-scan execution: one block pass, many plans.

The sequential executor treats every query as a private pass: N
concurrent queries over one archive pay N× prune evaluations, N×
LoadBox/capsule fetches and N× Match per shared search string.  The
:class:`BatchExecutor` runs a set of admitted plans in a **single
block-ordered pass** instead:

* **Shared prune** — TimePrune stays per-plan (it only compares two
  numbers), but Bloom/stamp decisions are computed once per ``(block,
  distinct normalized term)`` and reused by every plan containing that
  term; a plan survives when any of its disjuncts has all positive
  terms alive — exactly the fold :func:`summary_might_match` performs,
  so batched pruning equals sequential pruning decision-for-decision.
* **Shared LoadBox** — one box open (one set of ranged header/metadata
  reads) per block that any surviving plan needs, reused by all of
  them; one :class:`BlockEngine` per block shares its vector-reader
  cache across plans, so a capsule decompressed for plan 1's match is
  free for plan 2's reconstruction.
* **Shared Match** — each distinct term is resolved once per block (the
  first plan that needs it pays), memoized for the rest, and published
  to the cross-batch :class:`~repro.query.fragcache.FragmentCache`
  keyed by archive generation.  On a warm cache a block is evaluated
  purely in row-set algebra: COUNT/ROWS plans and empty LINES blocks
  skip LoadBox entirely.
* **Per-plan fan-out** — Locate's disjunct fold, Aggregate and
  Reconstruct run per plan, producing results identical to running the
  plans sequentially (same entries, same counts, same partials).

**Ledger attribution.**  Shared work (prune reads, LoadBox) is charged
to one *batch ledger*; per-plan work (match, aggregate, reconstruct —
including the capsule fetches they trigger) is charged to that plan's
own ledger, first-requester-pays for shared terms.  Every store read
lands in exactly one ledger, so::

    sum(per-plan ledger bytes) + batch ledger bytes
        == loggrep_store_range_read_bytes_total delta

which the end-to-end reconciliation tests assert.

:class:`AdmissionQueue` is the service front door: queries submitted
within a small window coalesce into one batch, so bursty dashboard
traffic becomes cheaper than sequential instead of N× sequential.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import BudgetExceeded
from ..common.rowset import RowSet
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from .aggregate import AggregatePartial, make_partial
from .blockfilter import summary_term_might_match, term_might_match
from .engine import BlockEngine, GroupRows, _difference, _intersect, _union
from .executor import (
    _AGG_PARTIALS,
    _AGG_QUERIES,
    _AGG_ROWS,
    BlockOutcome,
    Entry,
    ExecutionResult,
    QueryExecutor,
)
from .fragcache import FragmentCache, load_generation
from .language import SearchString
from .plan import OutputMode, QueryPlan
from .stats import NULL_LEDGER, QueryLedger, QueryStats

_BATCH_QUERIES = get_registry().counter(
    "loggrep_batch_queries_total",
    "Plans executed through the shared-scan batch executor",
)
_BATCH_BATCHES = get_registry().counter(
    "loggrep_batch_runs_total", "Shared-scan batch passes executed"
)
_BATCH_SHARED_LOADS = get_registry().counter(
    "loggrep_batch_shared_block_loads_total",
    "Blocks loaded once and shared across a batch's plans",
)

#: Output modes the shared-scan pass handles; EXPLAIN/ANALYZE render
#: per-operator reports that assume a private pass and stay sequential.
BATCHABLE_MODES = (
    OutputMode.LINES,
    OutputMode.COUNT,
    OutputMode.AGGREGATE,
    OutputMode.ROWS,
)


@dataclass
class BatchReport:
    """What one shared-scan pass did, beyond the per-plan results."""

    queries: int = 0
    blocks: int = 0
    generation: int = 0
    #: Boxes opened once for the whole batch (the shared LoadBox count).
    shared_loads: int = 0
    elapsed: float = 0.0
    #: Shared-cost accounting: prune + LoadBox reads.  Per-plan ledgers
    #: on the :class:`ExecutionResult`s carry the attributed remainder.
    ledger: QueryLedger = NULL_LEDGER
    #: Deep counters of shared work (capsules decompressed during the
    #: shared engine's reader warm-up, etc.).
    stats: QueryStats = field(default_factory=QueryStats)


class _Unresolved(Exception):
    """A cached-only evaluation needed a term the cache does not hold."""


class BatchExecutor:
    """Runs many plans over one archive in a single block-ordered pass."""

    def __init__(
        self,
        executor: QueryExecutor,
        fragments: Optional[FragmentCache] = None,
    ):
        self.executor = executor
        self.source = executor.source
        self.config = executor.config
        self.fragments = fragments

    # ------------------------------------------------------------------
    # batch driver
    # ------------------------------------------------------------------
    def run_batch(
        self,
        plans: Sequence[QueryPlan],
        ledgered: Optional[bool] = None,
    ) -> Tuple[List[ExecutionResult], BatchReport]:
        """Execute *plans* with shared prune/LoadBox/Match.

        Results are positionally aligned with *plans* and identical to
        ``[executor.run(p) for p in plans]`` up to accounting detail.
        ``ledgered`` forces resource accounting on (reconciliation
        tests) or off; by default each plan follows the same activation
        rule as the sequential executor.
        """
        start = time.perf_counter()
        report = BatchReport(queries=len(plans))
        if not plans:
            return [], report
        results: List[Optional[ExecutionResult]] = [None] * len(plans)
        batched: List[Tuple[int, QueryPlan]] = []
        for i, plan in enumerate(plans):
            if plan.mode in BATCHABLE_MODES:
                batched.append((i, plan))
            else:
                # EXPLAIN/ANALYZE render private-pass reports; run them
                # through the sequential pipeline unchanged.
                results[i] = self.executor.run(plan)
        if batched:
            self._run_shared(batched, results, report, ledgered)
        report.elapsed = time.perf_counter() - start
        _BATCH_QUERIES.inc(len(plans))
        _BATCH_BATCHES.inc()
        return [r for r in results if r is not None], report

    # ------------------------------------------------------------------
    def run_block(
        self, name: str, plans: Sequence[QueryPlan]
    ) -> Tuple[List[BlockOutcome], List[QueryStats], QueryStats]:
        """One shared pass over a single named block.

        This is the unit a cluster worker serves: the coordinator ships
        every concurrent plan in one RPC and the replica opens the block
        once for all of them.  Returns positionally-aligned outcomes and
        per-plan stats, plus the shared engine stats (capsules touched
        by first-requester Match work — per block, not per plan, so the
        caller accounts them once instead of N times).
        """
        plans = list(plans)
        stats = [QueryStats() for _ in plans]
        ledgers: List[QueryLedger] = [NULL_LEDGER for _ in plans]
        generation = 0
        if self.fragments is not None:
            generation = load_generation(self.source.store)
            self.fragments.set_generation(generation)
        report = BatchReport(
            queries=len(plans), blocks=1, generation=generation
        )
        outcomes = self._block_pass(
            name, plans, stats, ledgers, NULL_LEDGER, generation, report
        )
        shared = report.stats if len(plans) > 1 else QueryStats()
        return outcomes, stats, shared

    # ------------------------------------------------------------------
    def _run_shared(
        self,
        batched: List[Tuple[int, QueryPlan]],
        results: List[Optional[ExecutionResult]],
        report: BatchReport,
        ledgered: Optional[bool],
    ) -> None:
        tracer = get_tracer()
        plans = [plan for _, plan in batched]
        if ledgered is None:
            ledgers = [self.executor._make_ledger(p.mode) for p in plans]
        elif ledgered:
            ledgers = [QueryLedger() for _ in plans]
        else:
            ledgers = [NULL_LEDGER for _ in plans]
        # A single-plan batch has nobody to share with: charging "shared"
        # work to the one plan's ledger makes its bill (and its budget
        # enforcement) identical to the sequential executor's.  The
        # report then carries no separate batch cost, so reconciliation
        # never double-counts.
        if len(plans) == 1:
            batch_ledger: QueryLedger = ledgers[0]
            report.ledger = NULL_LEDGER
        else:
            batch_ledger = (
                QueryLedger()
                if any(ledger.enabled for ledger in ledgers)
                else NULL_LEDGER
            )
            report.ledger = batch_ledger
        stats = [QueryStats() for _ in plans]
        generation = 0
        if self.fragments is not None:
            generation = load_generation(self.source.store)
            self.fragments.set_generation(generation)
        report.generation = generation
        start = time.perf_counter()
        names = self.source.names()
        report.blocks = len(names)
        with tracer.span(
            "batch", queries=len(plans), blocks=len(names)
        ) as bspan:
            try:
                per_block = self._schedule(
                    names, plans, ledgers, batch_ledger, generation, bspan,
                    report,
                )
            except BudgetExceeded as exc:
                # _schedule's finally already folded the per-block
                # children, so the exception carries a consistent
                # partial bill (the tripped plan's when unambiguous).
                exc.ledger = ledgers[0] if len(plans) == 1 else batch_ledger
                raise
            bspan.set("shared_loads", report.shared_loads)
        elapsed = time.perf_counter() - start
        # -- per-plan merge, mirroring QueryExecutor.run's fold
        for pos, (i, plan) in enumerate(batched):
            entries: List[Entry] = []
            rowsets: Dict[str, GroupRows] = {}
            merged: Optional[AggregatePartial] = None
            total = 0
            for outcomes, block_stats in per_block:
                outcome = outcomes[pos]
                stats[pos].merge(block_stats[pos])
                entries.extend(outcome.entries)
                total += outcome.count
                if outcome.rows is not None:
                    rowsets[outcome.name] = outcome.rows
                if outcome.partial is not None:
                    if merged is None:
                        merged = make_partial(plan.aggregate)
                    merged.merge(outcome.partial)
                    _AGG_PARTIALS.inc()
            entries.sort(key=lambda item: item[0])
            stats[pos].entries_matched = total
            if plan.aggregate is not None:
                if merged is None:
                    merged = make_partial(plan.aggregate)
                _AGG_QUERIES.inc(kind=plan.aggregate.kind.value)
                _AGG_ROWS.inc(merged.rows)
            stats[pos].publish(elapsed)
            self.executor._maybe_log_slow(plan, stats[pos], ledgers[pos], elapsed)
            results[i] = ExecutionResult(
                plan, entries, stats[pos], elapsed, [], ledgers[pos],
                merged, rowsets,
            )
        report.queries = len(results)

    def _schedule(
        self,
        names: List[str],
        plans: List[QueryPlan],
        ledgers: List[QueryLedger],
        batch_ledger: QueryLedger,
        generation: int,
        bspan: object,
        report: BatchReport,
    ) -> List[Tuple[List[BlockOutcome], List[QueryStats]]]:
        """One shared pass per block, serial or thread-pooled (the same
        ``query_parallelism`` knob as the sequential scheduler)."""
        tracer = get_tracer()
        parallelism = getattr(self.config, "query_parallelism", 1)

        def run_one(
            name: str, spawn: bool = True
        ) -> Tuple[List[BlockOutcome], List[QueryStats]]:
            block_ledgers = (
                [ledger.spawn() for ledger in ledgers] if spawn else ledgers
            )
            block_batch_ledger = batch_ledger.spawn() if spawn else batch_ledger
            block_stats = [QueryStats() for _ in plans]
            with tracer.span("block", parent=bspan, block=name):
                outcomes = self._block_pass(
                    name, plans, block_stats, block_ledgers,
                    block_batch_ledger, generation, report,
                )
            return outcomes, block_stats

        try:
            if parallelism > 1 and len(names) > 1:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(parallelism) as pool:
                    pairs = list(pool.map(run_one, names))
            else:
                pairs = [run_one(name, spawn=False) for name in names]
        finally:
            batch_ledger.merge_children()
            for ledger in ledgers:
                ledger.merge_children()
        return pairs

    # ------------------------------------------------------------------
    # the shared per-block pass
    # ------------------------------------------------------------------
    def _block_pass(
        self,
        name: str,
        plans: List[QueryPlan],
        stats: List[QueryStats],
        ledgers: List[QueryLedger],
        batch_ledger: QueryLedger,
        generation: int,
        report: BatchReport,
    ) -> List[BlockOutcome]:
        executor = self.executor
        tracer = get_tracer()
        fragments = self.fragments
        outcomes: List[Optional[BlockOutcome]] = [None] * len(plans)
        for st in stats:
            st.blocks_visited += 1
        box = self.source.cached(name)
        if self.source.box_cache is not None:
            batch_ledger.charge_box_cache(box is not None)
        settings = executor._settings()
        use_bloom = bool(getattr(self.config, "use_block_bloom", False))
        summary = (
            self.source.summary(name)
            if getattr(self.config, "use_prune_index", True)
            else None
        )
        # -- shared BloomPrune state: one decision per distinct term,
        # computed lazily on first use and reused by every plan.
        prune_memo: Dict[str, bool] = {}
        bloom_state: Dict[str, object] = {"loaded": False, "bloom": None,
                                          "data": None}

        def term_alive(term) -> bool:
            if term.negated:
                return True
            key = term.search.cache_key
            alive = prune_memo.get(key)
            if alive is None:
                if summary is not None:
                    alive = summary_term_might_match(
                        summary,
                        term,
                        use_stamps=getattr(settings, "use_stamps", True),
                        use_bloom=use_bloom,
                    )
                else:
                    if not bloom_state["loaded"]:
                        with tracer.span("block_filter"), batch_ledger.operator(
                            "block_filter"
                        ):
                            bloom, data = executor._read_bloom(name)
                        bloom_state.update(
                            loaded=True, bloom=bloom, data=data
                        )
                    bloom = bloom_state["bloom"]
                    alive = bloom is None or term_might_match(bloom, term)  # type: ignore[arg-type]
                prune_memo[key] = alive
            return alive

        def sealed(out: List[Optional[BlockOutcome]]) -> List[BlockOutcome]:
            # Positional alignment with *plans* is load-bearing; a hole
            # would silently shift every later plan's outcome.
            return [o if o is not None else BlockOutcome(name) for o in out]

        live: List[int] = []
        for i, plan in enumerate(plans):
            # -- TimePrune (per plan: two float comparisons, no sharing
            # needed; zero store reads either way)
            if (
                box is None
                and summary is not None
                and (plan.from_time is not None or plan.to_time is not None)
                and not summary.in_time_range(plan.from_time, plan.to_time)
            ):
                stats[i].blocks_pruned += 1
                stats[i].blocks_time_pruned += 1
                outcomes[i] = BlockOutcome(name, pruned=True)
                continue
            # -- shared BloomPrune: any disjunct with all terms alive
            if (
                box is None
                and plan.disjuncts
                and (use_bloom or summary is not None)
            ):
                survives = any(
                    all(term_alive(term) for term in disjunct.terms)
                    for disjunct in plan.disjuncts
                )
                if not survives:
                    stats[i].blocks_pruned += 1
                    outcomes[i] = BlockOutcome(name, pruned=True)
                    continue
            live.append(i)
        if not live:
            return sealed(outcomes)

        # -- shared Match memo: term key -> row sets, resolved at most
        # once per block per batch (cache first, engine second).
        term_rows: Dict[str, GroupRows] = {}
        probed_missing: set = set()

        def cached_term_rows(search: SearchString) -> Optional[GroupRows]:
            key = search.cache_key
            rows = term_rows.get(key)
            if rows is not None:
                return rows
            if fragments is None or key in probed_missing:
                return None
            rows = fragments.get(generation, name, key)
            if rows is None:
                probed_missing.add(key)
                return None
            term_rows[key] = rows
            return rows

        def locate(
            plan: QueryPlan,
            resolve: Callable[[SearchString], GroupRows],
            full: Callable[[], GroupRows],
        ) -> GroupRows:
            # The engine's disjunct fold verbatim (same short-circuits,
            # so batched row sets equal sequential row sets).
            total: GroupRows = {}
            for disjunct in plan.disjuncts:
                acc = full()
                for term in disjunct.terms:
                    rows = resolve(term.search)
                    if term.negated:
                        acc = _difference(acc, rows)
                    else:
                        acc = _intersect(acc, rows)
                    if not acc:
                        break
                total = _union(total, acc)
            return {g: rs for g, rs in total.items() if rs}

        # -- warm fast path: with the block's shape and every needed
        # fragment cached, Locate is pure row-set algebra — COUNT/ROWS
        # plans and miss-everything LINES plans never open the box.
        need_box: List[int] = []
        shape = (
            fragments.get_shape(generation, name)
            if fragments is not None and box is None
            else None
        )
        hits_by_plan: Dict[int, GroupRows] = {}
        def full_from_shape() -> GroupRows:
            return {g: RowSet.full(n) for g, n in enumerate(shape) if n}  # type: ignore[arg-type]

        for i in live:
            plan = plans[i]
            if shape is None:
                need_box.append(i)
                continue
            resolved = [0]  # committed only on success (no double count
            # with the engine-path resolver after an _Unresolved abort)

            def resolve_cached(search: SearchString) -> GroupRows:
                rows = cached_term_rows(search)
                if rows is None:
                    raise _Unresolved(search.cache_key)
                resolved[0] += 1  # noqa: B023
                return rows

            try:
                hits = (
                    locate(plan, resolve_cached, full_from_shape)
                    if plan.disjuncts
                    else full_from_shape()
                )
            except _Unresolved:
                need_box.append(i)
                continue
            stats[i].cache_hits += resolved[0]
            count = sum(len(rows) for rows in hits.values())
            if plan.mode is OutputMode.COUNT:
                outcomes[i] = BlockOutcome(name, count=count)
            elif plan.mode is OutputMode.ROWS:
                outcomes[i] = BlockOutcome(
                    name, count=count,
                    rows={g: rows for g, rows in hits.items() if rows},
                )
            elif plan.aggregate is not None and not hits:
                outcomes[i] = BlockOutcome(
                    name, count=0, partial=make_partial(plan.aggregate)
                )
            elif plan.mode is OutputMode.LINES and not hits:
                outcomes[i] = BlockOutcome(name, count=0)
            else:
                # LINES with hits / non-empty aggregates reconstruct or
                # fold real values: the box is needed after all, but the
                # located rows are kept.
                hits_by_plan[i] = hits
                need_box.append(i)
        if not need_box:
            return sealed(outcomes)

        # -- shared LoadBox: one open for every plan that needs it
        if box is None:
            with tracer.span("load_box"), batch_ledger.operator("load_box"):
                box = executor._open_box(name, bloom_state["data"])  # type: ignore[arg-type]
            report.shared_loads += 1
            _BATCH_SHARED_LOADS.inc()
            if fragments is not None:
                fragments.put_shape(
                    generation, name,
                    tuple(group.num_entries for group in box.groups),
                )
        engine_stats = QueryStats()
        engine = BlockEngine(box, settings, engine_stats)
        use_qcache = (
            executor.cache is not None
            and getattr(self.config, "use_query_cache", False)
        )

        for i in need_box:
            plan = plans[i]
            ledger = ledgers[i]
            plan_stats = stats[i]
            match_timer = ledger.operator("match")

            def resolve(search: SearchString) -> GroupRows:
                key = search.cache_key
                rows = cached_term_rows(search)
                if rows is not None:
                    plan_stats.cache_hits += 1  # noqa: B023
                    return rows
                if use_qcache:
                    rows = executor.cache.get(name, key)  # type: ignore[union-attr]
                    if rows is not None:
                        term_rows[key] = rows
                        # Publish query-cache hits into the fragment
                        # cache too — otherwise an archive whose terms
                        # were warmed by *sequential* queries would
                        # never reach the box-free warm path.
                        if fragments is not None:
                            fragments.put(generation, name, key, rows)
                        plan_stats.cache_hits += 1  # noqa: B023
                        return rows
                # First plan to need this term pays its Match; the memo
                # and the fragment cache make it free for everyone else.
                with tracer.span(
                    "match", search=key
                ), match_timer:  # noqa: B023
                    rows = engine.search_string_rows(search)
                term_rows[key] = rows
                if use_qcache:
                    executor.cache.put(name, key, rows)  # type: ignore[union-attr]
                if fragments is not None:
                    fragments.put(generation, name, key, rows)
                return rows

            hits = hits_by_plan.get(i)
            if hits is None:
                with tracer.span("locate"), ledger.operator("locate"):
                    hits = (
                        locate(plan, resolve, engine.full_rows)
                        if plan.disjuncts
                        else engine.full_rows()
                    )
            count = sum(len(rows) for rows in hits.values())
            if plan.mode is OutputMode.ROWS:
                outcomes[i] = BlockOutcome(
                    name, count=count,
                    rows={g: rows for g, rows in hits.items() if rows},
                )
                continue
            if plan.aggregate is not None:
                with tracer.span(
                    "aggregate", kind=plan.aggregate.kind.value
                ), ledger.operator("aggregate"):
                    partial = executor._aggregate_block(
                        box, engine, plan.aggregate, hits
                    )
                outcomes[i] = BlockOutcome(name, count=count, partial=partial)
                continue
            entries: List[Entry] = []
            if plan.mode is OutputMode.LINES and hits:
                from ..core.reconstructor import BlockReconstructor

                with tracer.span("reconstruct"), ledger.operator(
                    "reconstruct"
                ):
                    box.prefetch(hits.keys())
                    reconstructor = BlockReconstructor(
                        box, settings, plan_stats, readers=engine.readers
                    )
                    entries = reconstructor.reconstruct(hits)
            outcomes[i] = BlockOutcome(name, entries=entries, count=count)

        # Deep engine charges (capsule decompressions during shared
        # matching) are per-block, not per-plan; a single-plan batch
        # folds them into its one query so its stats equal sequential
        # stats, a multi-plan batch reports them as shared batch cost.
        if len(plans) == 1:
            stats[0].merge(engine_stats)
        else:
            report.stats.merge(engine_stats)
        return sealed(outcomes)


# ----------------------------------------------------------------------
# admission queue: the coalescing front door
# ----------------------------------------------------------------------
class AdmissionQueue:
    """Coalesces queries arriving within a small window into one batch.

    ``submit`` returns a future immediately; a worker thread waits
    ``window_s`` after the first arrival, drains everything admitted in
    the meantime (up to ``max_batch``) and runs one shared-scan pass
    over them.  Callers block only on their own future, so admission
    order does not constrain completion order.
    """

    def __init__(
        self,
        run_batch: Callable[
            [List[QueryPlan]], Tuple[List[ExecutionResult], BatchReport]
        ],
        window_s: float = 0.002,
        max_batch: int = 64,
    ):
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        self._run_batch = run_batch
        self.window_s = window_s
        self.max_batch = max_batch
        self._pending: List[Tuple[QueryPlan, "Future[ExecutionResult]"]] = []
        self._cond = threading.Condition()
        self._closed = False
        self.batches = 0
        self._worker = threading.Thread(
            target=self._drain_loop, name="loggrep-admission", daemon=True
        )
        self._worker.start()

    def submit(self, plan: QueryPlan) -> "Future[ExecutionResult]":
        future: "Future[ExecutionResult]" = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("admission queue is closed")
            self._pending.append((plan, future))
            self._cond.notify()
        return future

    def close(self) -> None:
        """Drain what is pending, then stop the worker."""
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._worker.join()

    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending and self._closed:
                    return
                closed = self._closed
            if not closed and self.window_s > 0:
                time.sleep(self.window_s)  # let the burst coalesce
            with self._cond:
                admitted = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
            if not admitted:
                continue
            self.batches += 1
            plans = [plan for plan, _ in admitted]
            try:
                results, _ = self._run_batch(plans)
            except BudgetExceeded as exc:
                for _, future in admitted:
                    future.set_exception(exc)
            except Exception as exc:  # noqa: BLE001 - deliver, don't die
                for _, future in admitted:
                    future.set_exception(exc)
            else:
                for (_, future), result in zip(admitted, results):
                    future.set_result(result)
