"""Logical query plans: the one IR every query consumer builds (§5).

``grep``, ``count``, ``explain``, interactive sessions and the cluster
coordinator all turn a command string into a :class:`QueryPlan` and hand
it to the physical pipeline in :mod:`repro.query.executor`.  The plan
captures everything that is decided *before* any block is touched:

* the parsed command — a DNF of possibly-negated search strings
  (:class:`~repro.query.language.QueryCommand`);
* per-disjunct **term order**: positive terms sorted most-selective-first
  (CLP's "obscurest query first" heuristic — longer literals are rarer,
  so they empty the row-set accumulator early and short-circuit the rest),
  negated terms last because they can only shrink a set the positives must
  first establish;
* the **output mode** — ``LINES`` runs the full pipeline, ``COUNT`` elides
  reconstruction, ``EXPLAIN`` dry-runs the pipeline and renders what each
  operator would decide.

Because the plan is an ordinary value object it can be built once and
shipped to every block — the thread-pool scheduler and the cluster
coordinator both execute the *same* plan instead of re-parsing the raw
command per block.

Plans are also agnostic to where a block's bytes live.  The streaming
hot tail exploits this: its reader lists one **synthetic last block**
(``tail-*.lgcb``, materialized in memory from unsealed lines) alongside
the sealed ``block-*`` names, and the executor runs the same plan over
it — the prune operators are skipped because the box is already cached
(pruning exists to avoid reads the tail never performs), while
Locate/Match/Aggregate treat it like any committed block.  Nothing in
this module knows about the tail; that is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Union

from .aggregate import AggregateSpec
from .language import QueryCommand, SearchString, Term, parse_query


class OutputMode(Enum):
    """What the physical pipeline produces."""

    LINES = "lines"  # full pipeline: locate + reconstruct original entries
    COUNT = "count"  # reconstruction elided; only located-row counts
    EXPLAIN = "explain"  # dry run; render per-operator decisions
    ANALYZE = "analyze"  # full pipeline + per-operator resource ledger
    AGGREGATE = "aggregate"  # fold located rows into a partial aggregate
    #: Locate only; ship the per-group row sets and defer reconstruction
    #: to a later bounded fetch (the cluster's grep gather protocol).
    ROWS = "rows"


def term_selectivity(term: Term) -> int:
    """Crude selectivity estimate of one term.

    The total length of the stamp-filterable literals of its keywords:
    longer literal runs are rarer in practice, so evaluating them first
    maximizes early short-circuiting.  Wildcard keywords contribute their
    longest literal run; ignore-case keywords fall back to their raw text.
    """
    return sum(
        len(keyword.longest_literal() or keyword.text)
        for keyword in term.search.keywords
    )


@dataclass
class PlannedTerm:
    """One possibly-negated search string with its selectivity estimate."""

    search: SearchString
    negated: bool
    selectivity: int

    @classmethod
    def from_term(cls, term: Term) -> "PlannedTerm":
        return cls(term.search, term.negated, term_selectivity(term))

    def describe(self) -> str:
        prefix = "NOT " if self.negated else ""
        return f"{prefix}{self.search.text!r}(sel={self.selectivity})"


@dataclass
class PlannedDisjunct:
    """One conjunction with its terms already in evaluation order."""

    terms: List[PlannedTerm] = field(default_factory=list)

    @classmethod
    def from_terms(cls, terms: List[Term]) -> "PlannedDisjunct":
        planned: List[PlannedTerm] = []
        seen = set()
        for term in terms:
            # AND is idempotent: a literal repeated within one conjunction
            # ("a AND a") would pay Match twice for the same row set, so
            # identical (search, polarity) pairs collapse to one term.
            key = (term.search.cache_key, term.negated)
            if key in seen:
                continue
            seen.add(key)
            planned.append(PlannedTerm.from_term(term))
        planned.sort(key=lambda t: (t.negated, -t.selectivity))
        return cls(planned)

    def describe(self) -> str:
        return " AND ".join(term.describe() for term in self.terms)


@dataclass
class QueryPlan:
    """The logical plan: ordered terms per disjunct plus the output mode."""

    command: QueryCommand
    mode: OutputMode = OutputMode.LINES
    disjuncts: List[PlannedDisjunct] = field(default_factory=list)
    #: Set for aggregate plans: what the Aggregate operator folds rows
    #: into (replacing Reconstruct).  ``None`` disjuncts + an aggregate
    #: means match-all — every row of every group is aggregated.
    aggregate: Optional[AggregateSpec] = None
    #: Optional wall-clock window (epoch seconds, inclusive): blocks whose
    #: prune-index timestamp range is disjoint from it are skipped before
    #: any Bloom/stamp check — zero store reads.  Pruning is
    #: block-granular (partition pruning): in-window blocks still return
    #: all their matches.
    from_time: Optional[float] = None
    to_time: Optional[float] = None

    @property
    def raw(self) -> str:
        return self.command.raw

    @property
    def ignore_case(self) -> bool:
        return self.command.ignore_case

    def search_strings(self) -> List[SearchString]:
        """Distinct search strings in evaluation order (deduped by key)."""
        seen = set()
        out: List[SearchString] = []
        for disjunct in self.disjuncts:
            for term in disjunct.terms:
                key = term.search.cache_key
                if key not in seen:
                    seen.add(key)
                    out.append(term.search)
        return out

    def describe(self) -> str:
        """Human-readable logical plan (one line per disjunct)."""
        lines = [
            f"logical plan for {self.raw!r} (mode={self.mode.value}"
            + (", ignore_case" if self.ignore_case else "")
            + ")"
        ]
        if self.aggregate is not None:
            lines.append(f"  aggregate: {self.aggregate.describe()}")
        if self.from_time is not None or self.to_time is not None:
            lines.append(
                f"  time window: [{self.from_time}, {self.to_time}] "
                "(block-granular prune)"
            )
        for i, disjunct in enumerate(self.disjuncts):
            lines.append(f"  disjunct {i}: {disjunct.describe()}")
        if not self.disjuncts:
            lines.append("  match: all rows (no WHERE filter)")
        return "\n".join(lines)


def build_plan(
    command: Union[str, QueryCommand],
    mode: OutputMode = OutputMode.LINES,
    ignore_case: bool = False,
    aggregate: Optional[AggregateSpec] = None,
    from_time: Optional[float] = None,
    to_time: Optional[float] = None,
) -> QueryPlan:
    """Parse (if needed) and plan a query command.

    ``ignore_case`` only applies when *command* is a raw string; a parsed
    :class:`QueryCommand` already carries its case sensitivity.
    """
    parsed = (
        parse_query(command, ignore_case)
        if isinstance(command, str)
        else command
    )
    disjuncts = [
        PlannedDisjunct.from_terms(disjunct) for disjunct in parsed.disjuncts
    ]
    return QueryPlan(parsed, mode, disjuncts, aggregate, from_time, to_time)


def match_all_command(ignore_case: bool = False) -> QueryCommand:
    """The empty WHERE: a command with no disjuncts.

    ``parse_query("")`` is (rightly) a syntax error for grep, but an
    aggregate without a filter folds *every* row, so the planner builds
    the no-op command directly.
    """
    return QueryCommand([], "", ignore_case)


def build_aggregate_plan(
    spec: AggregateSpec,
    where: Optional[Union[str, QueryCommand]] = None,
    mode: OutputMode = OutputMode.AGGREGATE,
    ignore_case: bool = False,
    from_time: Optional[float] = None,
    to_time: Optional[float] = None,
) -> QueryPlan:
    """Plan one aggregate: optional WHERE filter + the aggregate spec.

    The resulting plan is an ordinary value object — the thread-pool
    scheduler and the cluster coordinator ship the same plan to every
    block/node and merge the returned partial aggregates.
    """
    command: Union[str, QueryCommand] = (
        where if where else match_all_command(ignore_case)
    )
    return build_plan(
        command, mode, ignore_case, aggregate=spec,
        from_time=from_time, to_time=to_time,
    )
