"""Cross-query predicate-fragment cache + the archive generation token.

The shared-scan batch executor (:mod:`repro.query.batch`) memoizes the
smallest reusable unit of Match work: the per-block row set of one
normalized search string — a **predicate fragment**.  Fragments compose
under the engine's AND/OR/NOT row-set algebra, so *overlapping* queries
(``ERROR``, ``ERROR AND timeout``, ``ERROR OR WARN``) share work even
when no two queries are textually equal, and a *repeated* query skips
Locate/Match entirely and goes straight to Reconstruct/Aggregate.

Entries are keyed by ``(archive generation, block name, term key)``.
The **generation** is a monotonic counter persisted as an auxiliary blob
next to the blocks (the ``tiers.json`` pattern), bumped by every writer
that can change the bytes behind an existing block name:

* ``compress``/streaming commit (append/seal of new blocks),
* ``lifecycle demote`` to WARM (block-for-block rewrite, same names),
* ``lifecycle demote`` to COLD (merge + shared-template-store rewrite).

Readers load the generation once per batch; a bumped generation makes
every older fragment unreachable (the key no longer matches) and
:meth:`FragmentCache.set_generation` eagerly drops them, counted by
``loggrep_fragcache_invalidations_total``.  Because invalidation rides
an archive-associated token rather than in-process callbacks, a cache
shared across LogGrep handles — or held across a demotion performed by
a separate :class:`~repro.core.lifecycle.LifecycleManager` — can never
serve stale rows.

Alongside term fragments the cache memoizes each block's **shape** (the
per-group row counts) under a reserved key, so a fully-warm block can be
evaluated purely in row-set algebra: COUNT-mode queries touch neither
the store nor the box.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..obs import ledger as ledger_channel
from ..obs.metrics import get_registry
from .engine import GroupRows

_HITS = get_registry().counter(
    "loggrep_fragcache_hits_total", "Fragment cache lookups that hit"
)
_MISSES = get_registry().counter(
    "loggrep_fragcache_misses_total", "Fragment cache lookups that missed"
)
_EVICTIONS = get_registry().counter(
    "loggrep_fragcache_evictions_total", "Fragments evicted by the LRU bound"
)
_INVALIDATIONS = get_registry().counter(
    "loggrep_fragcache_invalidations_total",
    "Fragments dropped because the archive generation advanced",
)
_ENTRIES = get_registry().gauge(
    "loggrep_fragcache_entries", "Fragments currently cached"
)

DEFAULT_CAPACITY = 4096

#: Aux-blob name of the per-archive generation counter.
GENERATION_AUX_NAME = "generation.txt"

#: Reserved term key for a block's shape (group -> row count).  NUL can
#: never appear in a parsed search string, so it cannot collide.
SHAPE_KEY = "\x00shape"


def load_generation(store) -> int:
    """The archive's current generation (0 for a never-bumped archive).

    Tolerant of stores without aux-blob support and of unreadable blobs:
    both read as generation 0, which is always *safe* — a reader that
    cannot observe bumps simply keys every fragment to one generation,
    and such stores (e.g. cluster replica holders) never rewrite a block
    name in place.
    """
    try:
        if not store.aux_exists(GENERATION_AUX_NAME):
            return 0
        return int(store.get_aux(GENERATION_AUX_NAME).decode("ascii"))
    except Exception:  # noqa: BLE001 - absence and corruption read alike
        return 0


def bump_generation(store) -> int:
    """Advance the archive generation; returns the new value.

    Called by every writer that can change bytes behind an existing
    block name (commit, demote, shared-store merge).  Best-effort on
    stores without aux support — see :func:`load_generation`.
    """
    gen = load_generation(store) + 1
    try:
        store.put_aux(GENERATION_AUX_NAME, str(gen).encode("ascii"))
    except Exception:  # noqa: BLE001
        pass
    return gen


class FragmentCache:
    """A bounded LRU of generation-keyed per-block match row sets."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("fragment cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._generation: Optional[int] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def set_generation(self, generation: int) -> None:
        """Pin the cache to one archive generation.

        Called once per batch with the freshly-loaded token.  Fragments
        from any other generation are unreachable by key anyway; they
        are dropped eagerly here so a demoted archive's stale row sets
        do not squat in the LRU, and the drop is observable via
        ``loggrep_fragcache_invalidations_total``.
        """
        with self._lock:
            if self._generation == generation:
                return
            self._generation = generation
            stale = [key for key in self._entries if key[0] != generation]
            for key in stale:
                del self._entries[key]
            if stale:
                self.invalidations += len(stale)
                _INVALIDATIONS.inc(len(stale))
            _ENTRIES.set(len(self._entries))

    # ------------------------------------------------------------------
    def get(
        self, generation: int, block_name: str, term_key: str
    ) -> Optional[GroupRows]:
        key = (generation, block_name, term_key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _MISSES.inc()
                ledger_channel.charge_cache("fragment", False)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _HITS.inc()
            ledger_channel.charge_cache("fragment", True)
            return entry  # type: ignore[return-value]

    def put(
        self, generation: int, block_name: str, term_key: str, rows: GroupRows
    ) -> None:
        self._put((generation, block_name, term_key), rows)

    # ------------------------------------------------------------------
    # block shapes — cached uncounted (they are not predicate fragments,
    # only the full_rows() seed that lets a warm block skip LoadBox)
    # ------------------------------------------------------------------
    def get_shape(
        self, generation: int, block_name: str
    ) -> Optional[Tuple[int, ...]]:
        key = (generation, block_name, SHAPE_KEY)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry  # type: ignore[return-value]

    def put_shape(
        self, generation: int, block_name: str, shape: Tuple[int, ...]
    ) -> None:
        self._put((generation, block_name, SHAPE_KEY), shape)

    # ------------------------------------------------------------------
    def _put(self, key: tuple, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _EVICTIONS.inc()
            _ENTRIES.set(len(self._entries))

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._generation = None
            self.hits = 0
            self.misses = 0
            self.invalidations = 0
            _ENTRIES.set(0)

    def __len__(self) -> int:
        return len(self._entries)
