"""Streaming ingestion with pipelined block compression.

The paper's §8 calls compression speed "important to ingest raw logs at a
high speed".  In production, Alibaba's applications append raw text to the
current 64 MB block while *previous* blocks compress in the background
(§2).  :class:`StreamingCompressor` reproduces that pipeline: ``append``
never blocks on compression — a full block is handed to a worker pool
(LZMA releases the GIL, so background compression overlaps with ingest) —
and ``flush``/``close`` drain the pipeline.

    with StreamingCompressor(store=ArchiveStore(path)) as stream:
        for line in tail_f(...):
            stream.append(line)
    # all blocks compressed and persisted
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import List, Optional

from ..blockstore.block import LogBlock
from ..blockstore.store import ArchiveStore, MemoryStore
from .compressor import compress_block
from .config import LogGrepConfig
from .loggrep import CompressionReport, LogGrep


class StreamingCompressor:
    """Append-oriented ingestion that compresses blocks in the background."""

    def __init__(
        self,
        store: Optional[ArchiveStore] = None,
        config: Optional[LogGrepConfig] = None,
        pipeline_depth: int = 2,
    ):
        if pipeline_depth <= 0:
            raise ValueError("pipeline depth must be positive")
        self.store = store if store is not None else MemoryStore()
        self.config = config or LogGrepConfig()
        self._pool = ThreadPoolExecutor(max_workers=pipeline_depth)
        self._pending: List[Future] = []
        self._lines: List[str] = []
        self._buffered_bytes = 0
        self._next_block_id = 0
        self._next_line_id = 0
        self._start = time.perf_counter()
        self.raw_bytes = 0
        self.compressed_bytes = 0
        self.blocks = 0
        self._closed = False

    # ------------------------------------------------------------------
    def append(self, line: str) -> None:
        """Buffer one log line; hands full blocks to the pipeline.

        Block boundaries follow :func:`~repro.blockstore.block.split_lines`
        exactly (a block never exceeds the budget unless a single line
        does), so streaming produces byte-identical archives to batch
        compression.
        """
        if self._closed:
            raise RuntimeError("streaming compressor is closed")
        cost = len(line) + 1
        if self._lines and self._buffered_bytes + cost > self.config.block_bytes:
            self._submit_block()
        self._lines.append(line)
        self._buffered_bytes += cost

    def extend(self, lines) -> None:
        for line in lines:
            self.append(line)

    def _submit_block(self) -> None:
        if not self._lines:
            return
        block = LogBlock(self._next_block_id, self._next_line_id, self._lines)
        self._next_block_id += 1
        self._next_line_id += block.num_lines
        self.raw_bytes += block.raw_bytes
        self._lines = []
        self._buffered_bytes = 0
        self._pending.append(self._pool.submit(self._compress_one, block))
        self._reap(block_on_full=True)

    def _compress_one(self, block: LogBlock) -> int:
        name = f"block-{block.block_id:08d}.lgcb"
        data = compress_block(block, self.config).serialize()
        self.store.put(name, data)
        return len(data)

    def _reap(self, block_on_full: bool) -> None:
        """Collect finished futures; bound the in-flight pipeline."""
        still_pending: List[Future] = []
        for future in self._pending:
            if future.done():
                self.compressed_bytes += future.result()
                self.blocks += 1
            else:
                still_pending.append(future)
        self._pending = still_pending
        # Back-pressure: never let the pipeline grow without bound (the
        # producer must not outrun compression forever).
        max_inflight = self._pool._max_workers * 2
        while block_on_full and len(self._pending) > max_inflight:
            future = self._pending.pop(0)
            self.compressed_bytes += future.result()
            self.blocks += 1

    @property
    def backlog(self) -> int:
        """Blocks submitted but not yet compressed."""
        return sum(0 if f.done() else 1 for f in self._pending)

    # ------------------------------------------------------------------
    def flush(self) -> CompressionReport:
        """Drain the pipeline (including the partial tail block)."""
        self._submit_block()
        for future in self._pending:
            self.compressed_bytes += future.result()
            self.blocks += 1
        self._pending = []
        elapsed = time.perf_counter() - self._start
        return CompressionReport(
            self.blocks, self.raw_bytes, self.compressed_bytes, elapsed
        )

    def close(self) -> CompressionReport:
        report = self.flush()
        self._pool.shutdown(wait=True)
        self._closed = True
        return report

    def open_reader(self) -> LogGrep:
        """A LogGrep facade over everything flushed so far."""
        reader = LogGrep(store=self.store, config=self.config)
        reader._next_block_id = self._next_block_id
        reader._next_line_id = self._next_line_id
        return reader

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
