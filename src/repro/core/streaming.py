"""Streaming ingestion with pipelined block compression.

The paper's §8 calls compression speed "important to ingest raw logs at a
high speed".  In production, Alibaba's applications append raw text to the
current 64 MB block while *previous* blocks compress in the background
(§2).  :class:`StreamingCompressor` reproduces that pipeline on top of the
:class:`~repro.core.schedule.CompressionScheduler`: ``append`` never
blocks on compression — a full block is parsed in order (template
warm-start) and its CPU-bound encode stage is handed to the scheduler's
worker pool — and ``flush``/``close`` drain the pipeline.  Because the
scheduler is deterministic, streaming produces byte-identical archives to
batch compression for the same config, any worker count.

    with StreamingCompressor(store=ArchiveStore(path)) as stream:
        for line in tail_f(...):
            stream.append(line)
    # all blocks compressed and persisted
"""

from __future__ import annotations

import time
from typing import Optional

from ..blockstore.block import LogBlock
from ..blockstore.index import ArchiveIndex
from ..blockstore.store import ArchiveStore, MemoryStore
from ..staticparse.cache import TemplateCache
from .config import LogGrepConfig
from .loggrep import CompressionReport, LogGrep
from .schedule import CompressionScheduler


class StreamingCompressor:
    """Append-oriented ingestion that compresses blocks in the background."""

    def __init__(
        self,
        store: Optional[ArchiveStore] = None,
        config: Optional[LogGrepConfig] = None,
        pipeline_depth: Optional[int] = None,
    ):
        self.config = config or LogGrepConfig()
        if pipeline_depth is None:
            # Streaming always keeps at least two stages in flight so
            # append overlaps with background compression even when the
            # batch-side default is serial.
            pipeline_depth = max(2, self.config.compress_parallelism)
        if pipeline_depth <= 0:
            raise ValueError("pipeline depth must be positive")
        self.pipeline_depth = pipeline_depth
        self.store = store if store is not None else MemoryStore()
        self._index = (
            ArchiveIndex() if self.config.use_prune_index else None
        )
        self._scheduler = CompressionScheduler(
            self.store,
            self.config,
            template_cache=(
                TemplateCache() if self.config.template_warm_start else None
            ),
            parallelism=pipeline_depth,
            executor=self.config.compress_executor,
            always_async=True,
            index=self._index,
        )
        self._lines: list = []
        self._buffered_bytes = 0
        self._next_block_id = 0
        self._next_line_id = 0
        self._start = time.perf_counter()
        self._closed = False

    # ------------------------------------------------------------------
    def append(self, line: str) -> None:
        """Buffer one log line; hands full blocks to the pipeline.

        Block boundaries follow :func:`~repro.blockstore.block.split_lines`
        exactly (a block never exceeds the budget unless a single line
        does), so streaming produces byte-identical archives to batch
        compression.
        """
        if self._closed:
            raise RuntimeError("streaming compressor is closed")
        cost = len(line) + 1
        if self._lines and self._buffered_bytes + cost > self.config.block_bytes:
            self._submit_block()
        self._lines.append(line)
        self._buffered_bytes += cost

    def extend(self, lines) -> None:
        for line in lines:
            self.append(line)

    def _submit_block(self) -> None:
        if not self._lines:
            return
        block = LogBlock(self._next_block_id, self._next_line_id, self._lines)
        self._next_block_id += 1
        self._next_line_id += block.num_lines
        self._lines = []
        self._buffered_bytes = 0
        # The scheduler parses in order (warm-start cache), encodes in the
        # background, and applies back-pressure at twice its configured
        # worker depth — the producer cannot outrun compression forever.
        self._scheduler.submit(block)

    # ------------------------------------------------------------------
    # accounting (delegated to the scheduler)
    # ------------------------------------------------------------------
    @property
    def raw_bytes(self) -> int:
        return self._scheduler.raw_bytes

    @property
    def compressed_bytes(self) -> int:
        return self._scheduler.compressed_bytes

    @property
    def blocks(self) -> int:
        return self._scheduler.blocks

    @property
    def backlog(self) -> int:
        """Blocks submitted but not yet committed to the store."""
        return self._scheduler.backlog

    # ------------------------------------------------------------------
    def flush(self) -> CompressionReport:
        """Drain the pipeline (including the partial tail block).

        Reports are **cumulative**: every flush covers the whole stream
        so far — ``blocks``/``raw_bytes``/``compressed_bytes`` are totals
        since construction and ``elapsed`` is wall-clock since
        construction, so ``speed_mb_s`` is the average ingest throughput
        of the stream.  Repeated flushes never double-count; each later
        report only grows by the newly appended data.

        Note that flushing mid-stream seals the current partial block
        early, so archives produced with interim flushes may split
        blocks differently from one-shot batch compression.
        """
        self._submit_block()
        self._scheduler.drain()
        elapsed = time.perf_counter() - self._start
        return CompressionReport(
            self.blocks, self.raw_bytes, self.compressed_bytes, elapsed
        )

    def close(self) -> CompressionReport:
        """Flush, release the worker pool, and reject further appends."""
        report = self.flush()
        self._scheduler.close()
        self._closed = True
        return report

    def open_reader(self) -> LogGrep:
        """A LogGrep facade over everything flushed so far."""
        reader = LogGrep(store=self.store, config=self.config)
        reader._next_block_id = self._next_block_id
        reader._next_line_id = self._next_line_id
        return reader

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
