"""Streaming ingestion with pipelined block compression and a hot tail.

The paper's §8 calls compression speed "important to ingest raw logs at a
high speed".  In production, Alibaba's applications append raw text to the
current 64 MB block while *previous* blocks compress in the background
(§2).  :class:`StreamingCompressor` reproduces that pipeline on top of the
:class:`~repro.core.schedule.CompressionScheduler`: ``append`` never
blocks on compression — a full block is parsed in order (template
warm-start) and its CPU-bound encode stage is handed to the scheduler's
worker pool — and ``flush``/``close`` drain the pipeline.  Because the
scheduler is deterministic, streaming produces byte-identical archives to
batch compression for the same config, any worker count.

    with StreamingCompressor(store=ArchiveStore(path)) as stream:
        for line in tail_f(...):
            stream.append(line)
    # all blocks compressed and persisted

**The hot tail.**  A line is queryable the moment ``append`` returns —
not when its block seals.  ``open_reader(tail=True)`` yields a LogGrep
whose box source presents ``sealed ∪ tail``: the committed store blocks
plus one *synthetic* tail block holding every not-yet-committed line
(the scheduler's in-flight blocks and the append buffer).  At any
instant a line lives in exactly one of those three places, and the
snapshot that decides block membership is taken atomically under the
ingest lock, so no line is double-counted or dropped across the seal
race.

Parsing for the tail is *incremental*: every ``append`` assigns its line
against the templates already mined by the stream (one match-score scan
over same-width templates), so by the time a query arrives the parse is
already paid and materializing the tail block costs only the cheap
encode (plain vectors, preset 0, speed-tier codec, permissive stamps).
Lines no known template matches sit in a small residual that is mined
on demand at build time — cold streams degrade to exactly the old
build-time full parse.  The built box is cached per tail version; the
prune operators skip it automatically because the source serves it as
an already-open box.  Line ids are assigned positionally, identical to
what sealing will assign, so a tail-inclusive grep is byte-for-byte
equal to the same grep after ``flush()``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..blockstore.block import LogBlock
from ..blockstore.blobsource import BlobSource
from ..blockstore.index import ArchiveIndex, BlockSummary
from ..blockstore.store import ArchiveStore, MemoryStore
from ..capsule.box import CapsuleBox
from ..common.tokenizer import tokenize
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..query.executor import QueryExecutor, StoreBoxSource
from ..query.fragcache import bump_generation
from ..staticparse.cache import TemplateCache
from ..staticparse.parser import BlockParser, Group, ParsedBlock
from ..staticparse.template import Template
from .compressor import encode_parsed, parse_block
from .config import LogGrepConfig
from .loggrep import CompressionReport, LogGrep
from .schedule import CompressionScheduler

_VISIBLE_SECONDS = get_registry().gauge(
    "loggrep_ingest_visible_seconds",
    "Append-to-queryable latency: seconds to materialize the hot tail "
    "block for the first query after an append",
)


def _tail_name(version: int) -> str:
    # "tail-" sorts after "block-", so the synthetic block is always the
    # last entry of the query plan's name order — ids stay monotonic.
    return f"tail-{version:012d}.lgcb"


@dataclass(frozen=True)
class _ParsedSegment:
    """Accumulated incremental parse of one tail segment (a pending
    block, or the append buffer).  ``groups`` carry segment-local line
    ids; ``residual`` holds ``(local_line_id, line)`` pairs no known
    template matched — they are mined at tail-build time."""

    num_lines: int
    groups: List[Group] = field(default_factory=list)
    residual: List[Tuple[int, str]] = field(default_factory=list)


@dataclass(frozen=True)
class TailSnapshot:
    """One atomic observation of the not-yet-committed ingest state."""

    version: int
    sealed_names: List[str]
    lines: List[str]
    block_id: int
    first_line_id: int
    #: Incremental parse state of the tail, segment per pending block
    #: plus one for the buffer.  None when the tail box for ``version``
    #: was already built (the copy would be dead weight).
    segments: Optional[List[_ParsedSegment]] = None


class StreamingCompressor:
    """Append-oriented ingestion that compresses blocks in the background."""

    def __init__(
        self,
        store: Optional[ArchiveStore] = None,
        config: Optional[LogGrepConfig] = None,
        pipeline_depth: Optional[int] = None,
    ):
        self.config = config or LogGrepConfig()
        if pipeline_depth is None:
            # Streaming always keeps at least two stages in flight so
            # append overlaps with background compression even when the
            # batch-side default is serial.
            pipeline_depth = max(2, self.config.compress_parallelism)
        if pipeline_depth <= 0:
            raise ValueError("pipeline depth must be positive")
        self.pipeline_depth = pipeline_depth
        self.store = store if store is not None else MemoryStore()
        self._index = (
            ArchiveIndex() if self.config.use_prune_index else None
        )
        # One reentrant lock serializes everything the tail snapshot
        # depends on: the append buffer, the scheduler's pending deque
        # and the store commits it performs.  Snapshots taken under it
        # are atomic across the seal race.
        self._lock = threading.RLock()
        self._tail_version = 0
        self._tail_boxes: Dict[int, CapsuleBox] = {}
        self._scheduler = CompressionScheduler(
            self.store,
            self.config,
            template_cache=(
                TemplateCache() if self.config.template_warm_start else None
            ),
            parallelism=pipeline_depth,
            executor=self.config.compress_executor,
            always_async=True,
            index=self._index,
            on_commit=self._on_commit,
        )
        self._lines: list = []
        self._buffered_bytes = 0
        self._next_block_id = 0
        self._next_line_id = 0
        self._start = time.perf_counter()
        self._closed = False
        # Tail blocks are scanned, not archived: plain vectors at the
        # cheapest presets make the parse+encode latency (the append→
        # queryable window) a fraction of a real block compression while
        # reconstructing the exact same lines.
        self._tail_config = replace(
            self.config,
            preset=0,
            use_block_bloom=False,
            use_real_patterns=False,
            use_nominal_patterns=False,
            codec_speed_tier=True,
            cheap_stamps=True,
            compress_parallelism=1,
        )
        # Incremental tail parse state (all under self._lock): the
        # matcher templates (refreshed from the scheduler's cache at
        # every seal), the buffer's accumulated groups/residual, and the
        # frozen segments of blocks that sealed but have not committed.
        self._tail_templates: List[Template] = []
        self._tail_by_count: Dict[int, List[Template]] = {}
        self._tail_groups: Dict[int, Group] = {}
        self._tail_residual: List[Tuple[int, str]] = []
        self._parsed_pending: Dict[int, _ParsedSegment] = {}
        self._refresh_tail_matcher()

    def _refresh_tail_matcher(self) -> None:
        """Rebuild the append-time template matcher from the stream's
        warm-start cache (called under the lock at init and after every
        seal, when the scheduler's ordered parse has just learned the
        sealed block's templates)."""
        self._tail_templates = []
        self._tail_by_count = {}
        cache = self._scheduler.template_cache
        if cache is not None:
            for i, key in enumerate(cache.snapshot()):
                template = Template(i, list(key))
                self._tail_templates.append(template)
                self._tail_by_count.setdefault(
                    template.num_tokens, []
                ).append(template)

    def _assign_tail_line(self, line: str, local_id: int) -> None:
        """Incrementally parse one appended line (under the lock).

        The same most-constants-win rule as the batch parser's
        ``_best_match``; unmatched lines land in the residual, which the
        tail build mines on demand.
        """
        tokens = tokenize(line)
        best: Optional[Template] = None
        best_score = -1
        for template in self._tail_by_count.get(len(tokens), ()):
            score = template.match_score(tokens)
            if score > best_score:
                best, best_score = template, score
        if best is None:
            self._tail_residual.append((local_id, line))
            return
        group = self._tail_groups.get(best.template_id)
        if group is None:
            group = Group(best)
            self._tail_groups[best.template_id] = group
        group.append(local_id, best.extract(tokens))

    # ------------------------------------------------------------------
    def append(self, line: str) -> None:
        """Buffer one log line; hands full blocks to the pipeline.

        Block boundaries follow :func:`~repro.blockstore.block.split_lines`
        exactly (a block never exceeds the budget unless a single line
        does), so streaming produces byte-identical archives to batch
        compression.  The line is queryable through
        ``open_reader(tail=True)`` as soon as this returns.
        """
        if self._closed:
            raise RuntimeError("streaming compressor is closed")
        cost = len(line) + 1
        with self._lock:
            if self._lines and self._buffered_bytes + cost > self.config.block_bytes:
                self._submit_block()
            self._lines.append(line)
            self._buffered_bytes += cost
            self._assign_tail_line(line, len(self._lines) - 1)
            self._tail_version += 1

    def extend(self, lines) -> None:
        for line in lines:
            self.append(line)

    def _submit_block(self) -> None:
        if not self._lines:
            return
        with self._lock:
            if not self._lines:
                return
            block = LogBlock(self._next_block_id, self._next_line_id, self._lines)
            self._next_block_id += 1
            self._next_line_id += block.num_lines
            self._lines = []
            self._buffered_bytes = 0
            # Freeze the buffer's accumulated parse as this block's tail
            # segment: the accumulator is reset to fresh containers, so
            # the frozen Group objects are immutable from here on.
            self._parsed_pending[block.block_id] = _ParsedSegment(
                block.num_lines,
                list(self._tail_groups.values()),
                self._tail_residual,
            )
            self._tail_groups = {}
            self._tail_residual = []
            # The scheduler parses in order (warm-start cache), encodes in
            # the background, and applies back-pressure at twice its
            # configured worker depth — the producer cannot outrun
            # compression forever.
            with get_tracer().span(
                "ingest.seal", block=block.block_id, lines=block.num_lines
            ):
                self._scheduler.submit(block)
            # The ordered parse just merged the sealed block's templates
            # into the cache; future appends should match against them.
            self._refresh_tail_matcher()

    def _on_commit(self, name: str, block: LogBlock, data: bytes) -> None:
        # A commit moves lines from the pending deque into the store, so
        # any cached tail box is stale even without new appends.
        with self._lock:
            self._parsed_pending.pop(block.block_id, None)
            self._tail_version += 1
        # The archive's block set changed: advance the persisted
        # generation so predicate-fragment caches keyed on it (see
        # repro/query/fragcache.py) cannot serve pre-commit row sets.
        bump_generation(self.store)

    # ------------------------------------------------------------------
    # the hot tail
    # ------------------------------------------------------------------
    def tail_snapshot(self) -> TailSnapshot:
        """Atomically observe every line not yet committed to the store.

        The tail is the scheduler's in-flight blocks (submitted, not yet
        committed) followed by the append buffer; ``sealed_names`` is the
        store listing *at the same instant*, so the union
        ``sealed ∪ tail`` is exactly the appended stream.
        """
        with self._lock:
            pending = self._scheduler.pending_blocks()
            lines: List[str] = []
            for block in pending:
                lines.extend(block.lines)
            lines.extend(self._lines)
            if pending:
                block_id = pending[0].block_id
                first_line_id = pending[0].first_line_id
            else:
                block_id = self._next_block_id
                first_line_id = self._next_line_id
            segments: Optional[List[_ParsedSegment]] = None
            if lines and self._tail_version not in self._tail_boxes:
                segments = []
                for block in pending:
                    seg = self._parsed_pending.get(block.block_id)
                    if seg is None:  # defensive: mine the whole block
                        seg = _ParsedSegment(
                            block.num_lines,
                            [],
                            list(enumerate(block.lines)),
                        )
                    segments.append(seg)
                if self._lines:
                    # The buffer still mutates under appends — freeze a
                    # copy of its accumulated groups for this snapshot.
                    segments.append(
                        _ParsedSegment(
                            len(self._lines),
                            [
                                Group(
                                    group.template,
                                    list(group.line_ids),
                                    [list(v) for v in group.variable_vectors],
                                )
                                for group in self._tail_groups.values()
                            ],
                            list(self._tail_residual),
                        )
                    )
            return TailSnapshot(
                version=self._tail_version,
                sealed_names=list(self.store.names()),
                lines=lines,
                block_id=block_id,
                first_line_id=first_line_id,
                segments=segments,
            )

    def total_appended(self) -> int:
        """Lines appended so far (sealed and unsealed)."""
        with self._lock:
            return self._next_line_id + len(self._lines)

    def _compose_segments(
        self, segments: Sequence[_ParsedSegment]
    ) -> ParsedBlock:
        """Stitch the per-segment incremental parses into one ParsedBlock.

        Segment-local line ids are offset into the tail block's line
        space; templates are renumbered so ids stay unique across
        segments (the same static pattern may appear in several).
        Residual lines — shapes no cached template matched — are mined
        here, per segment, with the ordinary batch parser; a cold stream
        (empty matcher) therefore degrades to exactly the old full
        build-time parse.
        """
        templates: List[Template] = []
        groups: List[Group] = []
        offset = 0
        for segment in segments:
            seg_groups = list(segment.groups)
            if segment.residual:
                parser = BlockParser(
                    sample_rate=self._tail_config.sample_rate,
                    similarity=self._tail_config.similarity,
                    seed=self._tail_config.seed,
                    miner=self._tail_config.parser,
                )
                mined = parser.parse([line for _, line in segment.residual])
                for group in mined.groups:
                    seg_groups.append(
                        Group(
                            group.template,
                            [
                                segment.residual[row][0]
                                for row in group.line_ids
                            ],
                            group.variable_vectors,
                        )
                    )
            for group in seg_groups:
                template = Template(len(templates), list(group.template.tokens))
                templates.append(template)
                groups.append(
                    Group(
                        template,
                        [lid + offset for lid in group.line_ids],
                        group.variable_vectors,
                    )
                )
            offset += segment.num_lines
        return ParsedBlock(templates, groups, offset)

    def _tail_box(self, snap: TailSnapshot) -> CapsuleBox:
        """The synthetic tail block for *snap*, built once per version.

        Line ids are positional from ``snap.first_line_id`` — identical
        to what the scheduler will assign when these lines seal, which
        is what makes tail-inclusive grep results byte-for-byte equal to
        post-flush results.
        """
        with self._lock:
            box = self._tail_boxes.get(snap.version)
        if box is not None:
            return box
        start = time.perf_counter()
        with get_tracer().span("ingest.tail_build", lines=len(snap.lines)):
            block = LogBlock(snap.block_id, snap.first_line_id, snap.lines)
            if snap.segments is not None:
                parsed = self._compose_segments(snap.segments)
            else:
                # The snapshot skipped the parse-state copy because this
                # version's box existed then; it has since been evicted
                # (a racing query against an old snapshot) — fall back
                # to a full warm-started parse.
                cache = None
                if self._scheduler.template_cache is not None:
                    cache = TemplateCache()
                    cache.merge(self._scheduler.template_cache.snapshot())
                parsed, _ = parse_block(block, self._tail_config, cache)
            box = encode_parsed(block, parsed, self._tail_config)
        _VISIBLE_SECONDS.set(time.perf_counter() - start)
        with self._lock:
            # Only the latest version is worth keeping; queries against
            # older snapshots rebuild (rare — only a racing query).
            self._tail_boxes = {snap.version: box}
        return box

    # ------------------------------------------------------------------
    # accounting (delegated to the scheduler)
    # ------------------------------------------------------------------
    @property
    def raw_bytes(self) -> int:
        return self._scheduler.raw_bytes

    @property
    def compressed_bytes(self) -> int:
        return self._scheduler.compressed_bytes

    @property
    def blocks(self) -> int:
        return self._scheduler.blocks

    @property
    def backlog(self) -> int:
        """Blocks submitted but not yet committed to the store."""
        return self._scheduler.backlog

    # ------------------------------------------------------------------
    def flush(self) -> CompressionReport:
        """Drain the pipeline (including the partial tail block).

        Reports are **cumulative**: every flush covers the whole stream
        so far — ``blocks``/``raw_bytes``/``compressed_bytes`` are totals
        since construction and ``elapsed`` is wall-clock since
        construction, so ``speed_mb_s`` is the average ingest throughput
        of the stream.  Repeated flushes never double-count; each later
        report only grows by the newly appended data.

        Note that flushing mid-stream seals the current partial block
        early, so archives produced with interim flushes may split
        blocks differently from one-shot batch compression.
        """
        with self._lock:
            with get_tracer().span("ingest.flush"):
                self._submit_block()
                self._scheduler.drain()
        elapsed = time.perf_counter() - self._start
        return CompressionReport(
            self.blocks, self.raw_bytes, self.compressed_bytes, elapsed
        )

    def close(self) -> CompressionReport:
        """Flush, release the worker pool, and reject further appends."""
        report = self.flush()
        self._scheduler.close()
        self._closed = True
        return report

    def open_reader(self, tail: bool = False) -> LogGrep:
        """A LogGrep facade over the stream.

        With the default ``tail=False`` the reader sees everything
        committed so far (flush to make that everything appended).  With
        ``tail=True`` the reader sees ``sealed ∪ tail``: every appended
        line, including lines whose block has not sealed yet, with the
        same line ids they will carry after sealing.
        """
        reader = LogGrep(
            store=self.store, config=self.config, prune_index=self._index
        )
        reader._next_block_id = self._next_block_id
        reader._next_line_id = self._next_line_id
        if tail:
            source = _TailBoxSource(self, reader._box_cache, self._index)
            reader._executor = QueryExecutor(source, self.config, reader.cache)
        return reader

    def __enter__(self) -> "StreamingCompressor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _TailBoxSource(StoreBoxSource):
    """Box source presenting ``sealed ∪ tail`` to the query executor.

    ``names()`` — the executor's once-per-query consistency point —
    takes one atomic tail snapshot: the sealed store listing plus (when
    any unsealed lines exist) a synthetic ``tail-<version>`` name.  The
    tail name answers ``cached()`` with an in-memory box, which makes
    the plan's TimePrune/BloomPrune/LoadBox operators skip it without
    any special-casing; Match/Aggregate then run over its vectors like
    any other block's.
    """

    def __init__(
        self,
        stream: StreamingCompressor,
        box_cache=None,
        index: Optional[ArchiveIndex] = None,
    ):
        super().__init__(stream.store, box_cache, index)
        self._stream = stream
        self._snaps: Dict[str, TailSnapshot] = {}

    def names(self) -> List[str]:
        snap = self._stream.tail_snapshot()
        names = list(snap.sealed_names)
        if snap.lines:
            name = _tail_name(snap.version)
            self._snaps[name] = snap
            # Bounded: concurrent queries may hold a few snapshots at
            # once, but only the latest few matter.
            while len(self._snaps) > 4:
                self._snaps.pop(next(iter(self._snaps)))
            names.append(name)
        return names

    def cached(self, name: str) -> Optional[CapsuleBox]:
        snap = self._snaps.get(name)
        if snap is not None:
            return self._stream._tail_box(snap)
        return super().cached(name)

    def raw(self, name: str) -> bytes:
        snap = self._snaps.get(name)
        if snap is not None:
            return self._stream._tail_box(snap).serialize()
        return super().raw(name)

    def blob(self, name: str) -> Optional[BlobSource]:
        if name in self._snaps:
            return None
        return super().blob(name)

    def summary(self, name: str) -> Optional[BlockSummary]:
        if name in self._snaps:
            return None
        return super().summary(name)

    def total_lines_hint(self) -> int:
        """Logical-clock extent including unsealed lines (timeseries)."""
        return self._stream.total_appended()
