"""Multi-log catalogs.

Alibaba Cloud stores many log types per application (§6 evaluates 21 of
them); operationally they live side by side.  A :class:`LogCatalog`
manages one LogGrep archive per named log under a common root directory
and supports cross-log search — the "grep everything we have about this
incident" workflow.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..blockstore.store import ArchiveStore, MemoryStore
from ..common.errors import ReproError
from .config import LogGrepConfig
from .loggrep import GrepResult, LogGrep


class UnknownLogError(ReproError):
    """The catalog has no log with the requested name."""


@dataclass
class CatalogEntry:
    """Accounting for one named log."""

    name: str
    raw_bytes: int
    storage_bytes: int
    blocks: int

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.storage_bytes if self.storage_bytes else 0.0


class LogCatalog:
    """Named LogGrep archives under one root (or fully in memory)."""

    def __init__(
        self, root: Optional[str] = None, config: Optional[LogGrepConfig] = None
    ):
        self.root = root
        self.config = config or LogGrepConfig()
        self._logs: Dict[str, LogGrep] = {}
        if root is not None:
            os.makedirs(root, exist_ok=True)
            for name in sorted(os.listdir(root)):
                if os.path.isdir(os.path.join(root, name)):
                    self._attach(name)

    def _attach(self, name: str) -> LogGrep:
        if self.root is None:
            store: ArchiveStore = MemoryStore()
        else:
            store = ArchiveStore(os.path.join(self.root, name))
        loggrep = LogGrep(store=store, config=self.config)
        loggrep._next_block_id = len(store.names())
        self._logs[name] = loggrep
        return loggrep

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._logs)

    def log(self, name: str) -> LogGrep:
        try:
            return self._logs[name]
        except KeyError:
            raise UnknownLogError(f"no log named {name!r} in catalog") from None

    def ingest(self, name: str, lines: Iterable[str]) -> None:
        """Append lines to the named log (created on first use)."""
        loggrep = self._logs.get(name)
        if loggrep is None:
            loggrep = self._attach(name)
        loggrep.compress(list(lines))

    # ------------------------------------------------------------------
    def grep(
        self, name: str, command: str, ignore_case: bool = False
    ) -> GrepResult:
        return self.log(name).grep(command, ignore_case)

    def grep_all(
        self, command: str, ignore_case: bool = False
    ) -> List[Tuple[str, GrepResult]]:
        """Run one command over every log; (name, result) pairs with hits.

        The cross-log incident workflow: the same trace id or error code
        greps across all services at once.
        """
        out: List[Tuple[str, GrepResult]] = []
        for name in self.names():
            result = self._logs[name].grep(command, ignore_case)
            if result.count:
                out.append((name, result))
        return out

    def count_all(self, command: str, ignore_case: bool = False) -> Dict[str, int]:
        return {
            name: self._logs[name].count(command, ignore_case)
            for name in self.names()
        }

    # ------------------------------------------------------------------
    def entries(self) -> List[CatalogEntry]:
        return [
            CatalogEntry(
                name=name,
                raw_bytes=loggrep.raw_bytes,
                storage_bytes=loggrep.storage_bytes(),
                blocks=len(loggrep.store.names()),
            )
            for name, loggrep in sorted(self._logs.items())
        ]

    def storage_bytes(self) -> int:
        return sum(loggrep.storage_bytes() for loggrep in self._logs.values())
