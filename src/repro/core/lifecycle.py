"""Log lifecycle management: the hot → warm → cold tier engine (§1).

The paper's taxonomy: *online* logs are queried constantly (ES territory),
*near-line* logs are LogGrep's target, and after 6-12 months logs become
*offline* — almost never queried, kept for compliance, so only the ratio
matters.  This module implements the transitions:

* :func:`archive_offline` rewrites near-line CapsuleBoxes into offline
  archives — several blocks merged (amortizing template/metadata overhead)
  and recompressed at a high LZMA preset.  Offline archives remain valid
  LogGrep archives: queries still work, just against bigger, colder blocks.
* :func:`transition_analysis` uses Equation 1 to answer the operational
  question: given the residual query rate, does recompressing pay for
  itself, and how much does a TB-month cost in each tier?
* :class:`LifecycleManager` runs the tier state machine *in place* over
  one archive: **hot** (speed-tier zlib codec, fresh ingest) → **warm**
  (default LZMA) → **cold** (merged blocks at maximum preset, with an
  optional cross-archive
  :class:`~repro.blockstore.shared.SharedTemplateStore` deduplicating
  templates and nominal dictionaries globally).  Demotions pick the
  longest timestamp-eligible *prefix* of the block sequence (blocks are
  written in arrival order; blocks with no parseable timestamps are
  treated as eligible), rewrite it at the target tier's config, and
  rewrite the ``.index.lgix`` sidecar — including the v2 min/max
  timestamp range and discarding entries for merged-away names — so a
  pruned query against the demoted archive still costs zero store reads.
  :class:`TierPolicy` decides transitions from block age, residual query
  rate and the Equation-1 break-even test.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ..blockstore.block import LogBlock, block_name, split_lines
from ..blockstore.index import ArchiveIndex, BlockSummary, load_index, save_index
from ..blockstore.shared import (
    SharedTemplateStore,
    as_resolver,
    payload_signature,
    write_bank,
)
from ..blockstore.store import ArchiveStore, MemoryStore
from ..capsule.assembler import NominalEncodedVector
from ..capsule.box import CapsuleBox
from ..cost.model import CostParameters
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..query.fragcache import bump_generation
from ..staticparse.cache import template_signature
from .compressor import compress_block
from .config import LogGrepConfig
from .loggrep import LogGrep
from .reconstructor import BlockReconstructor

#: Auxiliary-blob name recording each block's current tier.
TIER_AUX_NAME = "tiers.json"

_TIER_BYTES = get_registry().gauge(
    "loggrep_tier_bytes", "Stored bytes currently in each lifecycle tier"
)
_TIER_BLOCKS = get_registry().gauge(
    "loggrep_tier_blocks", "Blocks currently in each lifecycle tier"
)


def offline_config(base: Optional[LogGrepConfig] = None) -> LogGrepConfig:
    """The offline tier trades everything for ratio: maximum LZMA preset,
    big merged blocks, no Bloom filters (almost no queries to speed up)."""
    base = base or LogGrepConfig()
    return replace(
        base,
        preset=9,
        block_bytes=max(base.block_bytes * 4, base.block_bytes),
        use_block_bloom=False,
    )


@dataclass
class OfflineReport:
    """What the near-line → offline rewrite achieved."""

    nearline_bytes: int
    offline_bytes: int
    nearline_blocks: int
    offline_blocks: int
    recompress_seconds: float
    raw_bytes: int

    @property
    def ratio_gain(self) -> float:
        """offline ratio / near-line ratio (> 1 means offline is smaller)."""
        if self.offline_bytes == 0 or self.nearline_bytes == 0:
            return 0.0
        return self.nearline_bytes / self.offline_bytes


def archive_offline(
    nearline: LogGrep,
    store: Optional[ArchiveStore] = None,
    config: Optional[LogGrepConfig] = None,
) -> "tuple[LogGrep, OfflineReport]":
    """Rewrite a near-line archive into the offline tier.

    Returns the offline LogGrep handle (still fully queryable) and the
    accounting report.
    """
    config = config or offline_config(nearline.config)
    store = store if store is not None else MemoryStore()
    start = time.perf_counter()

    lines = nearline.decompress_all()
    offline = LogGrep(store=store, config=config)
    offline.compress(lines)

    recompress_seconds = time.perf_counter() - start
    report = OfflineReport(
        nearline_bytes=nearline.storage_bytes(),
        offline_bytes=offline.storage_bytes(),
        nearline_blocks=len(nearline.store.names()),
        offline_blocks=len(offline.store.names()),
        recompress_seconds=recompress_seconds,
        raw_bytes=nearline.raw_bytes,
    )
    return offline, report


@dataclass
class TransitionAnalysis:
    """Equation-1 economics of moving a TB to the offline tier."""

    nearline_monthly_per_tb: float  # storage $ per TB-month, near-line
    offline_monthly_per_tb: float  # storage $ per TB-month, offline
    recompression_cost_per_tb: float  # one-time CPU $ per TB
    breakeven_months: float  # months of offline residency to pay it off

    @property
    def worthwhile_within(self) -> bool:
        """True when the rewrite pays off inside a year."""
        return self.breakeven_months <= 12.0


def transition_analysis(
    nearline_ratio: float,
    offline_ratio: float,
    recompress_speed_mb_s: float,
    params: CostParameters = CostParameters(),
) -> TransitionAnalysis:
    """When does offline recompression pay for itself?

    The monthly saving is the storage-price delta between the two ratios;
    the one-time cost is the CPU to decompress + recompress a TB.
    """
    if nearline_ratio <= 0 or offline_ratio <= 0 or recompress_speed_mb_s <= 0:
        raise ValueError("ratios and speed must be positive")
    tb_gb = 1000.0
    nearline_monthly = params.storage_dollars_per_gb_month * tb_gb / nearline_ratio
    offline_monthly = params.storage_dollars_per_gb_month * tb_gb / offline_ratio
    hours = (1e12 / (recompress_speed_mb_s * 1e6)) / 3600.0
    recompress_cost = params.cpu_dollars_per_hour * hours
    saving = nearline_monthly - offline_monthly
    breakeven = float("inf") if saving <= 0 else recompress_cost / saving
    return TransitionAnalysis(
        nearline_monthly_per_tb=nearline_monthly,
        offline_monthly_per_tb=offline_monthly,
        recompression_cost_per_tb=recompress_cost,
        breakeven_months=breakeven,
    )


# ======================================================================
# the in-place tier engine
# ======================================================================
class Tier(str, Enum):
    """Lifecycle tiers, hottest first.  Fresh ingest is HOT; demotions
    only move downward (hot → warm → cold)."""

    HOT = "hot"
    WARM = "warm"
    COLD = "cold"

    @property
    def rank(self) -> int:
        return (Tier.HOT, Tier.WARM, Tier.COLD).index(self)


def tier_config(tier: Tier, base: Optional[LogGrepConfig] = None) -> LogGrepConfig:
    """The compression config of one tier.

    * HOT — the speed-tier codec (zlib when LZMA's edge is thin): fast
      inflation for the tail of the stream that still gets queried.
    * WARM — the archive default: plain LZMA at the configured preset.
    * COLD — :func:`offline_config`: maximum preset, 4× merged blocks,
      no Bloom filters.
    """
    base = base or LogGrepConfig()
    if tier is Tier.HOT:
        return replace(base, codec_speed_tier=True)
    if tier is Tier.WARM:
        return replace(base, codec_speed_tier=False)
    return offline_config(base)


@dataclass
class TierPolicy:
    """Age/query-rate transition policy, grounded in Equation 1.

    Age moves a block down (``warm_after_seconds``, ``cold_after_seconds``
    since its newest timestamp); a residual query rate above
    ``max_cold_queries_per_day`` holds it at WARM (cold blocks are big
    and slow to query); and the COLD rewrite must additionally pay for
    itself within a year under :func:`transition_analysis` when the
    ratios to run it are known.
    """

    warm_after_seconds: float = 7 * 86400.0
    cold_after_seconds: float = 30 * 86400.0
    max_cold_queries_per_day: float = 1.0

    def tier_for(self, age_seconds: float, queries_per_day: float = 0.0) -> Tier:
        """The tier a block of this age and query rate belongs in."""
        if age_seconds >= self.cold_after_seconds:
            if queries_per_day > self.max_cold_queries_per_day:
                return Tier.WARM
            return Tier.COLD
        if age_seconds >= self.warm_after_seconds:
            return Tier.WARM
        return Tier.HOT

    def recommend(
        self,
        age_seconds: float,
        queries_per_day: float = 0.0,
        nearline_ratio: Optional[float] = None,
        offline_ratio: Optional[float] = None,
        recompress_speed_mb_s: Optional[float] = None,
        params: CostParameters = CostParameters(),
    ) -> Tier:
        """Like :meth:`tier_for`, but a COLD candidate must also pass the
        Equation-1 break-even test when measured ratios are provided."""
        tier = self.tier_for(age_seconds, queries_per_day)
        if (
            tier is Tier.COLD
            and nearline_ratio is not None
            and offline_ratio is not None
            and recompress_speed_mb_s is not None
        ):
            analysis = transition_analysis(
                nearline_ratio, offline_ratio, recompress_speed_mb_s, params
            )
            if not analysis.worthwhile_within:
                return Tier.WARM
        return tier


def load_tiers(store: object) -> Dict[str, Tier]:
    """The stored block → tier map (empty when absent/corrupt)."""
    try:
        if not store.aux_exists(TIER_AUX_NAME):  # type: ignore[attr-defined]
            return {}
        data = store.get_aux(TIER_AUX_NAME)  # type: ignore[attr-defined]
        raw = json.loads(data.decode("utf-8"))
        return {name: Tier(value) for name, value in raw.get("tiers", {}).items()}
    except Exception:
        # Derived data: a corrupt tier map only means "everything is hot
        # again", never a wrong query result.
        return {}


def save_tiers(store: object, tiers: Dict[str, Tier]) -> None:
    payload = json.dumps(
        {"version": 1, "tiers": {name: tier.value for name, tier in sorted(tiers.items())}}
    ).encode("utf-8")
    store.put_aux(TIER_AUX_NAME, payload)  # type: ignore[attr-defined]


@dataclass
class TierStatus:
    """Per-tier accounting of one archive."""

    blocks: Dict[Tier, int]
    bytes: Dict[Tier, int]

    def total_blocks(self) -> int:
        return sum(self.blocks.values())

    def total_bytes(self) -> int:
        return sum(self.bytes.values())


@dataclass
class DemotionReport:
    """What one in-place demotion achieved."""

    tier: Tier
    blocks_before: int
    blocks_after: int
    bytes_before: int
    bytes_after: int
    rewrite_seconds: float
    #: Cross-archive shared-store bytes at the end of the rewrite (0 when
    #: no shared store was attached).
    shared_bytes: int = 0

    @property
    def ratio_gain(self) -> float:
        if self.bytes_after == 0 or self.bytes_before == 0:
            return 0.0
        return self.bytes_before / self.bytes_after


class LifecycleManager:
    """Runs the hot/warm/cold state machine in place over one archive.

    With *shared* (a :class:`SharedTemplateStore`), cold rewrites emit
    flag-0x01 boxes: templates and nominal dictionaries move into the
    cross-archive store, deduplicated by content hash, and the archive
    keeps content-id references (plus an optional fallback bank for
    portability, see :meth:`export_bank`).
    """

    def __init__(
        self,
        store: ArchiveStore,
        config: Optional[LogGrepConfig] = None,
        shared: Optional[SharedTemplateStore] = None,
    ):
        self.store = store
        self.config = config or LogGrepConfig()
        self.shared = shared
        self._resolver = as_resolver(shared, store)
        self.tiers = load_tiers(store)

    # ------------------------------------------------------------------
    def status(self) -> TierStatus:
        """Per-tier block/byte accounting; publishes the tier gauges.

        Blocks with no recorded tier are HOT — that is what fresh ingest
        produces and what a lost tier map safely degrades to.
        """
        blocks = {tier: 0 for tier in Tier}
        size = {tier: 0 for tier in Tier}
        for name in self.store.names():
            tier = self.tiers.get(name, Tier.HOT)
            blocks[tier] += 1
            size[tier] += self.store.size(name)
        for tier in Tier:
            _TIER_BYTES.set(size[tier], tier=tier.value)
            _TIER_BLOCKS.set(blocks[tier], tier=tier.value)
        return TierStatus(blocks=blocks, bytes=size)

    # ------------------------------------------------------------------
    def eligible_prefix(
        self, older_than_seconds: float, now: Optional[float] = None
    ) -> List[str]:
        """The longest prefix of blocks whose newest line is older than
        the cutoff.

        Blocks are written in arrival order, so age decreases along the
        name sequence; the scan stops at the first too-young block.
        Blocks whose sidecar has no timestamp range are treated as
        eligible (age unknown — they would otherwise pin every block
        behind them forever; documented CLI behaviour).
        """
        now = time.time() if now is None else now
        cutoff = now - older_than_seconds
        index = load_index(self.store)
        names: List[str] = []
        for name in self.store.names():
            summary = index.get(name) if index is not None else None
            if summary is not None and summary.max_ts is not None:
                if summary.max_ts > cutoff:
                    break
            names.append(name)
        return names

    def demote(
        self,
        tier: Tier,
        older_than_seconds: float = 0.0,
        now: Optional[float] = None,
    ) -> DemotionReport:
        """Rewrite the eligible prefix of the archive at *tier* in place.

        WARM rewrites block-for-block (same names, same ids); COLD merges
        the prefix into 4×-sized blocks (ids renumbered sequentially from
        the first original block) and externalizes templates/dictionaries
        into the shared store when one is attached.  Both paths rewrite
        the sidecar index with fresh v2 summaries — min/max timestamps
        included — and discard entries for merged-away names, so pruned
        queries against the result cost zero store reads.
        """
        if tier is Tier.HOT:
            raise ValueError("demote targets warm or cold, not hot")
        names = [
            name
            for name in self.eligible_prefix(older_than_seconds, now)
            if self.tiers.get(name, Tier.HOT).rank < tier.rank
        ]
        bytes_before = sum(self.store.size(n) for n in self.store.names())
        blocks_before = len(self.store.names())
        start = time.perf_counter()
        if names:
            with get_tracer().span(
                f"lifecycle.demote.{tier.value}", blocks=len(names)
            ):
                if tier is Tier.WARM:
                    self._rewrite_warm(names)
                else:
                    self._rewrite_cold(names)
            # Demotion rewrites bytes behind existing block names (WARM)
            # or replaces the name sequence outright (COLD merge), so any
            # predicate fragments cached against the old bytes are stale:
            # advance the persisted archive generation that keys them.
            bump_generation(self.store)
        rewrite_seconds = time.perf_counter() - start
        save_tiers(self.store, self.tiers)
        status = self.status()
        return DemotionReport(
            tier=tier,
            blocks_before=blocks_before,
            blocks_after=status.total_blocks(),
            bytes_before=bytes_before,
            bytes_after=status.total_bytes(),
            rewrite_seconds=rewrite_seconds,
            shared_bytes=self.shared.total_bytes() if self.shared else 0,
        )

    # ------------------------------------------------------------------
    def _load_box(self, name: str) -> CapsuleBox:
        return CapsuleBox.deserialize(
            self.store.get(name), templates=self._resolver
        )

    def _index(self) -> ArchiveIndex:
        index = load_index(self.store)
        return index if index is not None else ArchiveIndex()

    def _rewrite_warm(self, names: List[str]) -> None:
        """Block-for-block recompression at the warm config."""
        config = tier_config(Tier.WARM, self.config)
        index = self._index()
        for name in names:
            box = self._load_box(name)
            lines = BlockReconstructor(box).all_lines()
            block = LogBlock(box.block_id, box.first_line_id, lines)
            new_box = compress_block(block, config)
            self.store.put(name, new_box.serialize())
            index.add(name, BlockSummary.from_box(new_box, lines=lines))
            self.tiers[name] = Tier.WARM
        save_index(self.store, index)

    def _rewrite_cold(self, names: List[str]) -> None:
        """Merge-and-recompress the prefix at the cold config.

        Line ids are preserved exactly (ids are positional and the merge
        keeps line order); block ids are renumbered sequentially from the
        first original block, so the new names are a prefix of the old
        name sequence and name order stays consistent with line order.
        """
        config = tier_config(Tier.COLD, self.config)
        index = self._index()
        lines: List[str] = []
        first_box = self._load_box(names[0])
        first_block_id = first_box.block_id
        first_line_id = first_box.first_line_id
        for name in names:
            box = first_box if name == names[0] else self._load_box(name)
            lines.extend(BlockReconstructor(box).all_lines())
        new_names: List[str] = []
        block_id = first_block_id
        line_id = first_line_id
        for block in split_lines(lines, config.block_bytes):
            block.block_id = block_id
            block.first_line_id = line_id
            block_id += 1
            line_id += block.num_lines
            new_box = compress_block(block, config)
            data = (
                new_box.serialize(shared=self.shared)
                if self.shared is not None
                else new_box.serialize()
            )
            name = block_name(block.block_id)
            self.store.put(name, data)
            index.add(name, BlockSummary.from_box(new_box, lines=block.lines))
            self.tiers[name] = Tier.COLD
            new_names.append(name)
        # Merged-away names: delete the blobs AND their sidecar entries —
        # a stale summary would claim lines the store no longer holds.
        for name in set(names) - set(new_names):
            self.store.delete(name)
            index.discard(name)
            self.tiers.pop(name, None)
        save_index(self.store, index)

    # ------------------------------------------------------------------
    def export_bank(self) -> int:
        """Write the archive's fallback bank; returns its byte size.

        Collects every content id the archive's shared-format boxes
        reference (templates and externalized dictionary payloads) and
        stores the bytes as a ``templates.lgtb`` aux blob, making the
        archive self-contained — copyable anywhere without the shared
        store.
        """
        templates: Dict[str, Tuple[Optional[str], ...]] = {}
        payloads: Dict[str, bytes] = {}
        for name in self.store.names():
            box = self._load_box(name)
            for group in box.groups:
                key = tuple(group.template.tokens)
                templates[template_signature(key)] = key
                for vector in group.vectors:
                    if isinstance(vector, NominalEncodedVector):
                        payload = vector.dict_capsule.payload
                        payloads[payload_signature(payload)] = payload
        return write_bank(self.store, templates, payloads)

    def open_reader(self) -> LogGrep:
        """A LogGrep facade over the archive, shared store attached."""
        return LogGrep(
            store=self.store, config=self.config, templates=self._resolver
        )
