"""Log lifecycle management: near-line → offline transition (§1).

The paper's taxonomy: *online* logs are queried constantly (ES territory),
*near-line* logs are LogGrep's target, and after 6-12 months logs become
*offline* — almost never queried, kept for compliance, so only the ratio
matters.  This module implements the transition:

* :func:`archive_offline` rewrites near-line CapsuleBoxes into offline
  archives — several blocks merged (amortizing template/metadata overhead)
  and recompressed at a high LZMA preset.  Offline archives remain valid
  LogGrep archives: queries still work, just against bigger, colder blocks.
* :func:`transition_analysis` uses Equation 1 to answer the operational
  question: given the residual query rate, does recompressing pay for
  itself, and how much does a TB-month cost in each tier?
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional

from ..blockstore.store import ArchiveStore, MemoryStore
from ..cost.model import CostParameters
from .config import LogGrepConfig
from .loggrep import LogGrep


def offline_config(base: Optional[LogGrepConfig] = None) -> LogGrepConfig:
    """The offline tier trades everything for ratio: maximum LZMA preset,
    big merged blocks, no Bloom filters (almost no queries to speed up)."""
    base = base or LogGrepConfig()
    return replace(
        base,
        preset=9,
        block_bytes=max(base.block_bytes * 4, base.block_bytes),
        use_block_bloom=False,
    )


@dataclass
class OfflineReport:
    """What the near-line → offline rewrite achieved."""

    nearline_bytes: int
    offline_bytes: int
    nearline_blocks: int
    offline_blocks: int
    recompress_seconds: float
    raw_bytes: int

    @property
    def ratio_gain(self) -> float:
        """offline ratio / near-line ratio (> 1 means offline is smaller)."""
        if self.offline_bytes == 0 or self.nearline_bytes == 0:
            return 0.0
        return self.nearline_bytes / self.offline_bytes


def archive_offline(
    nearline: LogGrep,
    store: Optional[ArchiveStore] = None,
    config: Optional[LogGrepConfig] = None,
) -> "tuple[LogGrep, OfflineReport]":
    """Rewrite a near-line archive into the offline tier.

    Returns the offline LogGrep handle (still fully queryable) and the
    accounting report.
    """
    config = config or offline_config(nearline.config)
    store = store if store is not None else MemoryStore()
    start = time.perf_counter()

    lines = nearline.decompress_all()
    offline = LogGrep(store=store, config=config)
    offline.compress(lines)

    recompress_seconds = time.perf_counter() - start
    report = OfflineReport(
        nearline_bytes=nearline.storage_bytes(),
        offline_bytes=offline.storage_bytes(),
        nearline_blocks=len(nearline.store.names()),
        offline_blocks=len(offline.store.names()),
        recompress_seconds=recompress_seconds,
        raw_bytes=nearline.raw_bytes,
    )
    return offline, report


@dataclass
class TransitionAnalysis:
    """Equation-1 economics of moving a TB to the offline tier."""

    nearline_monthly_per_tb: float  # storage $ per TB-month, near-line
    offline_monthly_per_tb: float  # storage $ per TB-month, offline
    recompression_cost_per_tb: float  # one-time CPU $ per TB
    breakeven_months: float  # months of offline residency to pay it off

    @property
    def worthwhile_within(self) -> bool:
        """True when the rewrite pays off inside a year."""
        return self.breakeven_months <= 12.0


def transition_analysis(
    nearline_ratio: float,
    offline_ratio: float,
    recompress_speed_mb_s: float,
    params: CostParameters = CostParameters(),
) -> TransitionAnalysis:
    """When does offline recompression pay for itself?

    The monthly saving is the storage-price delta between the two ratios;
    the one-time cost is the CPU to decompress + recompress a TB.
    """
    if nearline_ratio <= 0 or offline_ratio <= 0 or recompress_speed_mb_s <= 0:
        raise ValueError("ratios and speed must be positive")
    tb_gb = 1000.0
    nearline_monthly = params.storage_dollars_per_gb_month * tb_gb / nearline_ratio
    offline_monthly = params.storage_dollars_per_gb_month * tb_gb / offline_ratio
    hours = (1e12 / (recompress_speed_mb_s * 1e6)) / 3600.0
    recompress_cost = params.cpu_dollars_per_hour * hours
    saving = nearline_monthly - offline_monthly
    breakeven = float("inf") if saving <= 0 else recompress_cost / saving
    return TransitionAnalysis(
        nearline_monthly_per_tb=nearline_monthly,
        offline_monthly_per_tb=offline_monthly,
        recompression_cost_per_tb=recompress_cost,
        breakeven_months=breakeven,
    )
