"""Reconstruction of original log entries (paper §3).

Given the located rows of a query, the Reconstructor decompresses the
Capsules of each hit group, fetches the row's value from every variable
vector (an O(1) slice thanks to fixed-length padding), fills the values
into the static and runtime patterns, and finally merges entries from
different groups back into their global order.

The paper merges by timestamp; we record each entry's line id inside the
block (plus the block's first global line id), which yields the identical
total order and also covers logs without timestamps — the fallback the
paper describes but did not need for Alibaba logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..capsule.box import CapsuleBox
from ..common.rowset import RowSet
from ..query.stats import QueryStats
from ..query.vectors import QuerySettings, make_reader

#: Above this many hits in one group, reconstruction decodes each Capsule
#: once (bulk) instead of fetching values row by row.
BULK_THRESHOLD = 16


class BlockReconstructor:
    """Rebuilds entries of one CapsuleBox."""

    def __init__(
        self,
        box: CapsuleBox,
        settings: Optional[QuerySettings] = None,
        stats: Optional[QueryStats] = None,
        readers: Optional[Dict[tuple, object]] = None,
    ):
        self.box = box
        self.settings = settings or QuerySettings()
        self.stats = stats if stats is not None else QueryStats()
        # Reader cache may be shared with the BlockEngine so Capsules
        # decompressed during matching are reused for reconstruction.
        self._readers = readers if readers is not None else {}

    def _reader(self, group_idx: int, var_idx: int):
        key = (group_idx, var_idx)
        reader = self._readers.get(key)
        if reader is None:
            encoded = self.box.groups[group_idx].vectors[var_idx]
            reader = make_reader(encoded, self.settings, self.stats)
            self._readers[key] = reader
        return reader

    # ------------------------------------------------------------------
    def entry(self, group_idx: int, row: int) -> Tuple[int, str]:
        """(global line id, original text) of one entry."""
        group = self.box.groups[group_idx]
        values = [
            self._reader(group_idx, var_idx).value_at(row)
            for var_idx in range(len(group.vectors))
        ]
        text = group.template.render(values)
        line_id = self.box.first_line_id + group.line_ids[row]
        return line_id, text

    def reconstruct(self, hits: Dict[int, RowSet]) -> List[Tuple[int, str]]:
        """Rebuild all hit entries, merged into global order."""
        entries: List[Tuple[int, str]] = []
        for group_idx, rows in hits.items():
            group_rows = self.box.groups[group_idx].num_entries
            # Bulk decode pays one pass over the whole group, so it only
            # wins when a sizable fraction of the group's rows hit.
            if len(rows) > max(BULK_THRESHOLD, group_rows // 4):
                entries.extend(self._bulk_entries(group_idx, rows))
            else:
                for row in rows:
                    entries.append(self.entry(group_idx, row))
        entries.sort(key=lambda item: item[0])
        return entries

    def _bulk_entries(
        self, group_idx: int, rows: RowSet
    ) -> List[Tuple[int, str]]:
        """Render many rows of one group with one decode pass per Capsule."""
        group = self.box.groups[group_idx]
        columns = [
            self._reader(group_idx, var_idx).values_list()
            for var_idx in range(len(group.vectors))
        ]
        render = group.template.render
        base = self.box.first_line_id
        line_ids = group.line_ids
        return [
            (base + line_ids[row], render([column[row] for column in columns]))
            for row in rows
        ]

    def all_lines(self) -> List[str]:
        """Decompress the entire block (used by round-trip tests)."""
        full = {
            group_idx: RowSet.full(group.num_entries)
            for group_idx, group in enumerate(self.box.groups)
            if group.num_entries
        }
        return [text for _, text in self.reconstruct(full)]
