"""The compression pipeline (paper §3, Fig 2).

Parser → Extractor → Assembler → Packer: a raw log block is parsed into
groups of variable vectors using static patterns mined on a 5% sample;
each vector is classified and encapsulated (runtime-pattern extraction
happens inside the Assembler per vector kind); the resulting Capsules and
all metadata are packed into a CapsuleBox.
"""

from __future__ import annotations

from typing import Optional

from ..blockstore.block import LogBlock
from ..capsule.assembler import encode_vector
from ..capsule.box import CapsuleBox, GroupBox
from ..common.bloom import BloomFilter, trigrams
from ..obs.trace import get_tracer
from ..runtime.classify import VectorKind, classify
from ..staticparse.parser import BlockParser
from .config import LogGrepConfig


def compress_block(block: LogBlock, config: Optional[LogGrepConfig] = None) -> CapsuleBox:
    """Compress one log block into a CapsuleBox.

    When tracing is enabled, the Fig 2 stages appear as spans: ``parse``,
    ``classify``, then one ``encode`` span per variable vector carrying its
    kind and whether runtime patterns were used (the ``bucket`` attribute:
    real / nominal / plain).
    """
    config = config or LogGrepConfig()
    tracer = get_tracer()
    with tracer.span("parse") as pspan:
        parser = BlockParser(
            sample_rate=config.sample_rate,
            similarity=config.similarity,
            seed=config.seed ^ block.block_id,
            miner=config.parser,
        )
        parsed = parser.parse(block.lines)
        pspan.set("groups", len(parsed.groups))

    with tracer.span("classify"):
        kinds = [
            [
                classify(vector, config.duplication_threshold)
                for vector in group.variable_vectors
            ]
            for group in parsed.groups
        ]

    groups = []
    for group_idx, group in enumerate(parsed.groups):
        vectors = []
        for var_idx, vector in enumerate(group.variable_vectors):
            # A distinct deterministic seed per vector keeps delimiter
            # probing independent across vectors but reproducible.
            seed = _vector_seed(config.seed, block.block_id, group_idx, var_idx)
            options = config.encoding_options(seed)
            kind = kinds[group_idx][var_idx]
            uses_patterns = (
                kind is VectorKind.REAL and options.use_real_patterns
            ) or (kind is VectorKind.NOMINAL and options.use_nominal_patterns)
            bucket = kind.value if uses_patterns else "plain"
            with tracer.span(
                "encode", kind=kind.value, bucket=bucket, values=len(vector)
            ):
                vectors.append(encode_vector(vector, options, kind=kind))
        groups.append(GroupBox(group.template, group.line_ids, vectors))

    bloom = None
    if config.use_block_bloom:
        with tracer.span("bloom"):
            grams = set()
            for line in block.lines:
                grams.update(trigrams(line))
            bloom = BloomFilter.build(grams, config.bloom_bits_per_trigram)

    return CapsuleBox(
        block_id=block.block_id,
        first_line_id=block.first_line_id,
        num_lines=block.num_lines,
        padded=config.use_padding,
        groups=groups,
        bloom=bloom,
    )


def _vector_seed(seed: int, block_id: int, group_idx: int, var_idx: int) -> int:
    return (seed * 1_000_003 + block_id * 7919 + group_idx * 101 + var_idx) & 0x7FFFFFFF
