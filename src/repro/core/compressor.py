"""The compression pipeline (paper §3, Fig 2).

Parser → Extractor → Assembler → Packer: a raw log block is parsed into
groups of variable vectors using static patterns mined on a 5% sample;
each vector is classified and encapsulated (runtime-pattern extraction
happens inside the Assembler per vector kind); the resulting Capsules and
all metadata are packed into a CapsuleBox.

The pipeline is split at the parse/encode boundary so the compression
scheduler (:mod:`repro.core.schedule`) can keep :func:`parse_block`
ordered — it mutates the cross-block template warm-start cache — while
fanning the pure, CPU-bound :func:`encode_parsed` stage out to worker
threads or processes.  :func:`compress_block` composes the two stages
serially and is the single-block entry point everything else (profiler,
cluster nodes, tests) keeps using.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..blockstore.block import LogBlock
from ..capsule.assembler import encode_vector
from ..capsule.box import CapsuleBox, GroupBox
from ..common.bloom import BloomFilter, trigrams
from ..obs.trace import Span, get_tracer
from ..runtime.classify import VectorKind, classify
from ..staticparse.cache import TemplateCache
from ..staticparse.parser import BlockParser, ParsedBlock, ParseOutcome
from .config import LogGrepConfig


def parse_block(
    block: LogBlock,
    config: LogGrepConfig,
    cache: Optional[TemplateCache] = None,
) -> Tuple[ParsedBlock, Optional[ParseOutcome]]:
    """Parse one block into groups (the ordered stage of compression).

    With a :class:`TemplateCache`, lines are assigned against templates
    mined from earlier blocks first (``parse_cached`` — warm start, drift
    guard, cache merge); without one, every block is sample-mined afresh.
    Mutates the cache, so the scheduler calls this in block order.
    """
    tracer = get_tracer()
    with tracer.span("parse") as pspan:
        parser = BlockParser(
            sample_rate=config.sample_rate,
            similarity=config.similarity,
            seed=config.seed ^ block.block_id,
            miner=config.parser,
        )
        outcome: Optional[ParseOutcome] = None
        if cache is not None:
            parsed, outcome = parser.parse_cached(
                block.lines, cache, config.template_drift_threshold
            )
        else:
            parsed = parser.parse(block.lines)
        pspan.set("groups", len(parsed.groups))
    return parsed, outcome


def encode_parsed(
    block: LogBlock,
    parsed: ParsedBlock,
    config: LogGrepConfig,
    parent: Optional[Span] = None,
) -> CapsuleBox:
    """Classify, encapsulate and pack a parsed block (the pure stage).

    A pure function of ``(block, parsed, config)`` — no shared state —
    so the scheduler may run it on any worker thread or process and the
    output bytes stay independent of scheduling.  ``parent`` attaches
    the stage spans to the right node when running off the main thread.
    """
    tracer = get_tracer()
    with tracer.span("classify", parent=parent):
        kinds = [
            [
                classify(vector, config.duplication_threshold)
                for vector in group.variable_vectors
            ]
            for group in parsed.groups
        ]

    groups = []
    for group_idx, group in enumerate(parsed.groups):
        vectors = []
        for var_idx, vector in enumerate(group.variable_vectors):
            # A distinct deterministic seed per vector keeps delimiter
            # probing independent across vectors but reproducible.
            seed = _vector_seed(config.seed, block.block_id, group_idx, var_idx)
            options = config.encoding_options(seed)
            kind = kinds[group_idx][var_idx]
            uses_patterns = (
                kind is VectorKind.REAL and options.use_real_patterns
            ) or (kind is VectorKind.NOMINAL and options.use_nominal_patterns)
            bucket = kind.value if uses_patterns else "plain"
            with tracer.span(
                "encode",
                parent=parent,
                kind=kind.value,
                bucket=bucket,
                values=len(vector),
            ):
                vectors.append(encode_vector(vector, options, kind=kind))
        groups.append(GroupBox(group.template, group.line_ids, vectors))

    bloom = None
    if config.use_block_bloom:
        with tracer.span("bloom", parent=parent):
            grams = set()
            for line in block.lines:
                grams.update(trigrams(line))
            bloom = BloomFilter.build(grams, config.bloom_bits_per_trigram)

    return CapsuleBox(
        block_id=block.block_id,
        first_line_id=block.first_line_id,
        num_lines=block.num_lines,
        padded=config.use_padding,
        groups=groups,
        bloom=bloom,
    )


def compress_block(block: LogBlock, config: Optional[LogGrepConfig] = None) -> CapsuleBox:
    """Compress one log block into a CapsuleBox (serial parse + encode).

    When tracing is enabled, the Fig 2 stages appear as spans: ``parse``,
    ``classify``, then one ``encode`` span per variable vector carrying its
    kind and whether runtime patterns were used (the ``bucket`` attribute:
    real / nominal / plain).
    """
    config = config or LogGrepConfig()
    parsed, _ = parse_block(block, config)
    return encode_parsed(block, parsed, config)


def _vector_seed(seed: int, block_id: int, group_idx: int, var_idx: int) -> int:
    return (seed * 1_000_003 + block_id * 7919 + group_idx * 101 + var_idx) & 0x7FFFFFFF
