"""The compression pipeline (paper §3, Fig 2).

Parser → Extractor → Assembler → Packer: a raw log block is parsed into
groups of variable vectors using static patterns mined on a 5% sample;
each vector is classified and encapsulated (runtime-pattern extraction
happens inside the Assembler per vector kind); the resulting Capsules and
all metadata are packed into a CapsuleBox.
"""

from __future__ import annotations

from typing import Optional

from ..blockstore.block import LogBlock
from ..capsule.assembler import encode_vector
from ..capsule.box import CapsuleBox, GroupBox
from ..common.bloom import BloomFilter, trigrams
from ..staticparse.parser import BlockParser
from .config import LogGrepConfig


def compress_block(block: LogBlock, config: Optional[LogGrepConfig] = None) -> CapsuleBox:
    """Compress one log block into a CapsuleBox."""
    config = config or LogGrepConfig()
    parser = BlockParser(
        sample_rate=config.sample_rate,
        similarity=config.similarity,
        seed=config.seed ^ block.block_id,
        miner=config.parser,
    )
    parsed = parser.parse(block.lines)

    groups = []
    for group_idx, group in enumerate(parsed.groups):
        vectors = []
        for var_idx, vector in enumerate(group.variable_vectors):
            # A distinct deterministic seed per vector keeps delimiter
            # probing independent across vectors but reproducible.
            seed = _vector_seed(config.seed, block.block_id, group_idx, var_idx)
            options = config.encoding_options(seed)
            vectors.append(encode_vector(vector, options))
        groups.append(GroupBox(group.template, group.line_ids, vectors))

    bloom = None
    if config.use_block_bloom:
        grams = set()
        for line in block.lines:
            grams.update(trigrams(line))
        bloom = BloomFilter.build(grams, config.bloom_bits_per_trigram)

    return CapsuleBox(
        block_id=block.block_id,
        first_line_id=block.first_line_id,
        num_lines=block.num_lines,
        padded=config.use_padding,
        groups=groups,
        bloom=bloom,
    )


def _vector_seed(seed: int, block_id: int, group_idx: int, var_idx: int) -> int:
    return (seed * 1_000_003 + block_id * 7919 + group_idx * 101 + var_idx) & 0x7FFFFFFF
