"""The LogGrep facade: compress log streams, run grep-like queries.

This is the public entry point of the library::

    from repro import LogGrep

    lg = LogGrep()
    lg.compress(lines)                      # → CapsuleBoxes in the store
    result = lg.grep("ERROR AND dst:11.8.*")
    for line in result.lines:
        print(line)

``LogGrep`` owns an :class:`~repro.blockstore.store.ArchiveStore` (defaults
to an in-memory one), a :class:`~repro.core.config.LogGrepConfig` (whose
feature switches implement the §6.3 ablations) and the refining-mode query
cache.  Timings for compression and querying are recorded so the benchmark
harness and the Equation-1 cost model can read them off directly.
"""

from __future__ import annotations

import logging
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..blockstore.block import LogBlock, block_name, split_lines
from ..blockstore.index import ArchiveIndex, load_index, save_index
from ..blockstore.store import ArchiveStore, MemoryStore
from ..capsule.box import CapsuleBox
from ..common.rowset import RowSet
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..query.aggregate import (
    AggregateSpec,
    Bucket,
    NumericStats,
    make_partial,
)
from ..query.batch import (
    BATCHABLE_MODES,
    AdmissionQueue,
    BatchExecutor,
    BatchReport,
)
from ..query.cache import QueryCache, get_value_cache
from ..query.executor import (
    BoxCache,
    ExecutionResult,
    QueryExecutor,
    StoreBoxSource,
)
from ..query.explain import render_analyze
from ..query.fragcache import FragmentCache, bump_generation
from ..query.modes import AggregateKind
from ..query.plan import (
    OutputMode,
    QueryPlan,
    build_aggregate_plan,
    build_plan,
)
from ..query.stats import NULL_LEDGER, QueryLedger, QueryStats
from ..staticparse.cache import TemplateCache
from .config import LogGrepConfig
from .reconstructor import BlockReconstructor
from .schedule import CompressionScheduler

logger = logging.getLogger(__name__)


@dataclass
class GrepResult:
    """The outcome of one query."""

    lines: List[str]
    line_ids: List[int]
    stats: QueryStats
    elapsed: float
    #: Per-query resource accounting (NULL_LEDGER unless activated by
    #: analyze mode, a slow-query threshold or a budget).
    ledger: QueryLedger = NULL_LEDGER
    #: EXPLAIN ANALYZE report (empty outside analyze mode).
    report: str = ""

    @property
    def count(self) -> int:
        return len(self.lines)


@dataclass
class AggregateResult:
    """The outcome of one aggregate query.

    ``value`` is the finalized aggregate — a ``Counter`` (count-by),
    ``[(value, count)]`` (top-k), :class:`NumericStats` (stats) or
    ``[(low, high, count)]`` buckets (timeseries).
    """

    value: object
    #: Entries that matched the WHERE filter (what COUNT would return).
    matched: int
    stats: QueryStats
    elapsed: float
    #: Per-query resource accounting (NULL_LEDGER unless analyze=True,
    #: a slow-query threshold or a budget activated it).
    ledger: QueryLedger = NULL_LEDGER
    #: EXPLAIN ANALYZE report (empty unless analyze=True).
    report: str = ""


@dataclass
class CompressionReport:
    """Accounting of one compress() call."""

    blocks: int
    raw_bytes: int
    compressed_bytes: int
    elapsed: float

    @property
    def ratio(self) -> float:
        return self.raw_bytes / self.compressed_bytes if self.compressed_bytes else 0.0

    @property
    def speed_mb_s(self) -> float:
        return (self.raw_bytes / 1e6) / self.elapsed if self.elapsed else 0.0


@dataclass
class LogGrep:
    """Compress-and-query store for near-line logs."""

    store: ArchiveStore = field(default_factory=MemoryStore)
    config: LogGrepConfig = field(default_factory=LogGrepConfig)
    #: Shared-template source for cold-tier archives: a
    #: :class:`~repro.blockstore.shared.SharedTemplateStore` (or a
    #: prebuilt resolver).  ``None`` still resolves self-contained
    #: archives through their own fallback bank.
    templates: Optional[object] = None
    #: A prebuilt prune index (lifecycle rewrites pass theirs through so
    #: a fresh open does not rebuild what they just computed).
    prune_index: Optional[ArchiveIndex] = None
    #: Cross-query predicate-fragment cache.  Injectable so a service
    #: can share one cache across handles of the same archive; entries
    #: are keyed by archive generation, so sharing (or holding the cache
    #: across a lifecycle demotion) can never serve stale rows.
    fragments: Optional[FragmentCache] = None

    def __post_init__(self) -> None:
        from ..blockstore.shared import as_resolver

        self.cache = QueryCache(self.config.cache_capacity)
        self.compress_seconds = 0.0
        self.raw_bytes = 0
        self._next_block_id = 0
        self._next_line_id = 0
        self._template_cache = (
            TemplateCache() if self.config.template_warm_start else None
        )
        self._box_cache = BoxCache(self.config.box_cache_capacity)
        # The decoded-value cache is process-wide (entries die with their
        # Capsules); the most recent instance re-bounds it.
        get_value_cache().set_capacity(self.config.value_cache_values)
        if self.config.store_mmap and hasattr(self.store, "enable_mmap"):
            self.store.enable_mmap()
        # One resolver per archive: the shared store (when given) plus the
        # archive's own fallback bank, with a cross-box memo cache.
        self._resolver = as_resolver(self.templates, self.store)
        # Load the prune-index sidecar once (rebuilding it for legacy
        # archives that predate it); compression keeps it current.
        self._index = (
            self.prune_index
            if self.prune_index is not None
            else self._load_or_build_index()
        )
        self._executor = QueryExecutor(
            StoreBoxSource(
                self.store, self._box_cache, self._index, self._resolver
            ),
            self.config,
            self.cache,
        )
        if self.fragments is None:
            self.fragments = FragmentCache(self.config.fragment_cache_entries)
        self._batch = BatchExecutor(self._executor, self.fragments)
        #: The shared-cost accounting of the most recent grep_many/
        #: aggregate_many batch (None before the first batch).
        self.last_batch_report: Optional[BatchReport] = None

    @property
    def _executor(self) -> QueryExecutor:
        return self.__dict__["_executor_instance"]

    @_executor.setter
    def _executor(self, executor: QueryExecutor) -> None:
        # Rebuild the batch lane whenever the executor is swapped: the
        # streaming tail reader replaces it with one whose source also
        # serves the synthetic tail block, and a batch executor still
        # pointed at the sealed-only source would silently miss it.
        self.__dict__["_executor_instance"] = executor
        self._batch = BatchExecutor(executor, getattr(self, "fragments", None))

    def _load_or_build_index(self) -> "ArchiveIndex | None":
        if not self.config.use_prune_index:
            return None
        index = load_index(self.store)
        if index is not None:
            return index
        if self.store.names():
            # Legacy archive: pay one full pass now so every later query
            # prunes without touching the store.
            index = ArchiveIndex.build(self.store, self._resolver)
            if hasattr(self.store, "put_aux"):
                save_index(self.store, index)
            return index
        return ArchiveIndex()

    # ------------------------------------------------------------------
    # compression
    # ------------------------------------------------------------------
    def compress(self, lines: Iterable[str]) -> CompressionReport:
        """Split *lines* into blocks, compress each, persist CapsuleBoxes.

        Compression runs on the :class:`CompressionScheduler`: blocks are
        parsed in order against the instance's template warm-start cache,
        encoded on ``config.compress_parallelism`` workers, and committed
        in order — output bytes are identical for any worker count.
        """
        tracer = get_tracer()
        start = time.perf_counter()

        def invalidate(name: str, _block: LogBlock, _data: bytes) -> None:
            self.cache.invalidate_block(name)
            self._box_cache.pop(name)
            # Every commit advances the archive generation, so fragments
            # located before the append can never be served afterwards.
            bump_generation(self.store)

        with tracer.span("compress") as cspan:
            scheduler = CompressionScheduler(
                self.store,
                self.config,
                template_cache=self._template_cache,
                on_commit=invalidate,
                index=self._index,
            )
            try:
                for block in split_lines(lines, self.config.block_bytes):
                    block.block_id = self._next_block_id
                    block.first_line_id = self._next_line_id
                    self._next_block_id += 1
                    self._next_line_id += block.num_lines
                    scheduler.submit(block)
            finally:
                scheduler.close()
            blocks = scheduler.blocks
            raw = scheduler.raw_bytes
            compressed = scheduler.compressed_bytes
            cspan.set("blocks", blocks).set("raw_bytes", raw)
        elapsed = time.perf_counter() - start
        self.compress_seconds += elapsed
        self.raw_bytes += raw
        registry = get_registry()
        registry.counter("loggrep_compress_blocks_total", "Blocks compressed").inc(blocks)
        registry.counter("loggrep_compress_raw_bytes_total", "Raw bytes ingested").inc(raw)
        registry.counter(
            "loggrep_compress_stored_bytes_total", "Compressed bytes produced"
        ).inc(compressed)
        registry.histogram(
            "loggrep_compress_seconds", "Wall-clock of compress() calls"
        ).observe(elapsed)
        report = CompressionReport(blocks, raw, compressed, elapsed)
        logger.debug(
            "compressed %d block(s): %d -> %d bytes (%.2fx) in %.3fs",
            blocks, raw, compressed, report.ratio, elapsed,
        )
        return report

    def compress_text(self, text: str) -> CompressionReport:
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        return self.compress(lines)

    @staticmethod
    def _block_name(block_id: int) -> str:
        return block_name(block_id)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def grep(
        self,
        command: str,
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
    ) -> GrepResult:
        """Execute a grep-like query command over every stored block.

        ``ignore_case`` applies grep ``-i`` semantics (an extension; the
        paper's queries are case-sensitive).  ``from_time``/``to_time``
        (epoch seconds) prune blocks whose sidecar timestamp range is
        disjoint from the window before any other work — block-granular
        partition pruning, zero store reads for out-of-window blocks.
        """
        plan = build_plan(
            command, OutputMode.LINES, ignore_case,
            from_time=from_time, to_time=to_time,
        )
        result = self._run(plan)
        logger.debug(
            "grep %r: %d hit(s) in %.1fms (%d capsules opened, %d filtered, "
            "%d blocks pruned)",
            command, result.count, result.elapsed * 1000,
            result.stats.capsules_decompressed, result.stats.capsules_filtered,
            result.stats.blocks_pruned,
        )
        return GrepResult(
            [text for _, text in result.entries],
            [line_id for line_id, _ in result.entries],
            result.stats,
            result.elapsed,
            result.ledger,
        )

    def explain_analyze(
        self, command: str, ignore_case: bool = False
    ) -> GrepResult:
        """Run *command* for real (the full LINES pipeline) with the
        per-query ledger active, and render the per-operator resource
        table alongside the physical plan.

        Unlike :meth:`explain` this *executes* — the reported bytes, rows
        and cache traffic are what the query actually cost, and the
        reconstructed lines are returned too (``result.lines``); the
        report is in ``result.report``.
        """
        result = self._executor.run(command, OutputMode.ANALYZE, ignore_case)
        report = render_analyze(
            result.ledger,
            result.stats,
            result.elapsed,
            self._executor.describe(result.plan),
        )
        return GrepResult(
            [text for _, text in result.entries],
            [line_id for line_id, _ in result.entries],
            result.stats,
            result.elapsed,
            result.ledger,
            report,
        )

    def count(
        self,
        command: str,
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
    ) -> int:
        """Number of matching entries, skipping reconstruction entirely.

        Counting is the same plan as :meth:`grep` with the Reconstruct
        operator elided: only the located row sets are needed, so no
        Capsule of a hit group is decompressed beyond what matching
        required — much cheaper than :meth:`grep` for large result sets
        (grep -c).  Blocks are scheduled exactly like grep, including the
        ``query_parallelism`` thread pool.
        """
        plan = build_plan(
            command, OutputMode.COUNT, ignore_case,
            from_time=from_time, to_time=to_time,
        )
        return self._run(plan).count

    def _run(self, plan: QueryPlan) -> ExecutionResult:
        """One plan through the configured path: the shared-scan batch
        executor when ``config.batch_scans`` is on (a batch of one — same
        results and accounting, but it warms and consults the fragment
        cache), the sequential executor otherwise."""
        if self.config.batch_scans and plan.mode in BATCHABLE_MODES:
            results, _ = self._batch.run_batch([plan])
            return results[0]
        return self._executor.run(plan)

    # ------------------------------------------------------------------
    # multi-query shared scans
    # ------------------------------------------------------------------
    def grep_many(
        self,
        commands: List[str],
        ignore_case: bool = False,
        from_time: Optional[float] = None,
        to_time: Optional[float] = None,
        ledgered: Optional[bool] = None,
    ) -> List[GrepResult]:
        """Run many grep commands in one shared-scan pass.

        Results are positionally aligned with *commands* and identical
        to ``[self.grep(c) for c in commands]``; the archive is walked
        once — prune decisions, box opens and per-term matching are
        shared across the batch (see :mod:`repro.query.batch`).  The
        shared-cost ledger of the pass lands in ``last_batch_report``.
        """
        plans = [
            build_plan(
                command, OutputMode.LINES, ignore_case,
                from_time=from_time, to_time=to_time,
            )
            for command in commands
        ]
        results, self.last_batch_report = self._batch.run_batch(
            plans, ledgered=ledgered
        )
        return [
            GrepResult(
                [text for _, text in result.entries],
                [line_id for line_id, _ in result.entries],
                result.stats,
                result.elapsed,
                result.ledger,
            )
            for result in results
        ]

    def count_many(
        self,
        commands: List[str],
        ignore_case: bool = False,
        ledgered: Optional[bool] = None,
    ) -> List[int]:
        """Matching-entry counts for many commands, one shared pass."""
        plans = [
            build_plan(command, OutputMode.COUNT, ignore_case)
            for command in commands
        ]
        results, self.last_batch_report = self._batch.run_batch(
            plans, ledgered=ledgered
        )
        return [result.count for result in results]

    def aggregate_many(
        self,
        specs: List[Tuple[AggregateSpec, Optional[str]]],
        ignore_case: bool = False,
        ledgered: Optional[bool] = None,
    ) -> List[AggregateResult]:
        """Run many ``(spec, where)`` aggregates in one shared-scan pass.

        Equivalent to ``[self.aggregate(s, w) for s, w in specs]`` with
        the block walk, pruning and WHERE matching shared — overlapping
        WHERE filters (the dashboard pattern) resolve each term once.
        """
        plans = [
            build_aggregate_plan(
                spec, where, OutputMode.AGGREGATE, ignore_case
            )
            for spec, where in specs
        ]
        results, self.last_batch_report = self._batch.run_batch(
            plans, ledgered=ledgered
        )
        out: List[AggregateResult] = []
        for (spec, _), result in zip(specs, results):
            partial = (
                result.aggregate
                if result.aggregate is not None
                else make_partial(spec)
            )
            out.append(
                AggregateResult(
                    partial.finalize(spec),
                    result.count,
                    result.stats,
                    result.elapsed,
                    result.ledger,
                )
            )
        return out

    def admission_queue(
        self, window_s: float = 0.002, max_batch: int = 64
    ) -> AdmissionQueue:
        """A coalescing front door over this archive: plans submitted
        within *window_s* of each other run as one shared-scan batch.
        Callers own the queue (``close()`` it when done)."""
        return AdmissionQueue(
            self._batch.run_batch, window_s=window_s, max_batch=max_batch
        )

    @property
    def batch_executor(self) -> BatchExecutor:
        """The shared-scan layer (public for the cluster and tests)."""
        return self._batch

    # ------------------------------------------------------------------
    # aggregation (pushdown: executed as the Aggregate pipeline operator)
    # ------------------------------------------------------------------
    @property
    def executor(self) -> QueryExecutor:
        """The physical pipeline behind every query and aggregate.

        Public so the analytics facade (and tests) can route box loading
        and per-block execution through the shared BoxCache/lazy-I/O
        path instead of touching the store directly.
        """
        return self._executor

    def aggregate(
        self,
        spec: AggregateSpec,
        where: Optional[str] = None,
        ignore_case: bool = False,
        analyze: bool = False,
    ) -> AggregateResult:
        """Run one aggregate over the archive without reconstructing lines.

        The WHERE filter (optional) locates rows exactly like ``grep``;
        the Aggregate operator then folds them into per-block partials —
        counting nominal columns by raw dictionary index cells — which
        merge order-independently across the ``query_parallelism`` pool.
        ``analyze=True`` activates the per-query ledger and renders the
        EXPLAIN ANALYZE table into ``result.report``.
        """
        mode = OutputMode.ANALYZE if analyze else OutputMode.AGGREGATE
        plan = build_aggregate_plan(spec, where, mode, ignore_case)
        result = self._run(plan)
        partial = (
            result.aggregate
            if result.aggregate is not None
            else make_partial(spec)
        )
        report = ""
        if analyze:
            report = render_analyze(
                result.ledger,
                result.stats,
                result.elapsed,
                self._executor.describe(plan),
            )
        return AggregateResult(
            partial.finalize(spec),
            result.count,
            result.stats,
            result.elapsed,
            result.ledger,
            report,
        )

    def count_by(
        self, field: str, where: Optional[str] = None
    ) -> "Counter[str]":
        """value → number of entries: SQL ``GROUP BY field COUNT(*)``,
        answered from dictionary index cells (§2)."""
        spec = AggregateSpec(AggregateKind.COUNT_BY, field)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def top_k(
        self, field: str, k: int = 10, where: Optional[str] = None
    ) -> List[Tuple[str, int]]:
        """The *k* most frequent values of a field with their counts."""
        spec = AggregateSpec(AggregateKind.TOP_K, field, k=k)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def stats_of(
        self, field: str, where: Optional[str] = None
    ) -> NumericStats:
        """Numeric summary (count/min/max/mean/p50/p95/p99 + nulls)."""
        spec = AggregateSpec(AggregateKind.STATS, field)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def timeseries(
        self, where: Optional[str] = None, buckets: int = 20
    ) -> List[Bucket]:
        """Hit counts over logical time: (first id, last id, hits) buckets.

        Line ids are the archive's logical clock (§3's timestamp
        substitute); bucketing reads only group metadata — zero capsule
        payloads.
        """
        total = self.total_lines()
        if total == 0 or buckets <= 0:
            return []
        spec = self._timeseries_spec(total, buckets)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    @staticmethod
    def _timeseries_spec(total_lines: int, buckets: int) -> AggregateSpec:
        width = max(1, -(-total_lines // buckets))  # ceil division
        return AggregateSpec(
            AggregateKind.HISTOGRAM,
            buckets=buckets,
            bucket_width=width,
            total_lines=total_lines,
        )

    def count_by_template(
        self, where: Optional[str] = None
    ) -> "Counter[str]":
        """Entries per static pattern (``COUNT BY template``) — answered
        from row sets alone, zero capsule payloads."""
        spec = AggregateSpec(AggregateKind.COUNT_BY_TEMPLATE)
        return self.aggregate(spec, where).value  # type: ignore[return-value]

    def total_lines(self) -> int:
        """Logical-clock extent of the archive (max line id + 1).

        Answered from the prune-index summaries when loaded — zero store
        reads — falling back to box metadata (header-only under lazy I/O).
        """
        hint = getattr(self._executor.source, "total_lines_hint", None)
        if hint is not None:
            return hint()
        if self._next_line_id:
            return self._next_line_id
        best = 0
        names = self.store.names()
        if self._index is not None:
            summaries = [self._index.get(name) for name in names]
            if all(summary is not None for summary in summaries):
                for summary in summaries:
                    assert summary is not None
                    best = max(best, summary.first_line_id + summary.num_lines)
                return best
        for name in names:
            box = self._executor.load_box(name)
            best = max(best, box.first_line_id + box.num_lines)
        return best

    def _load_box(self, name: str) -> CapsuleBox:
        # Boxes are loaded per query by default (the paper reads the
        # CapsuleBox from storage for every command); an explicit opt-in
        # cache exists for interactive refining sessions.  The load goes
        # through the executor so pinning, queries and round-trip checks
        # share one path (and one BoxCache + metrics).
        return self._executor.load_box(name)

    def explain(self, command: str, ignore_case: bool = False) -> str:
        """Human-readable plan: the physical pipeline plus, per (keyword,
        vector) pair, whether the Capsules would be filtered without
        decompression, narrowed to candidate matches, or scanned — the
        §5.1 decisions made visible.

        This is a dry run of the same plan ``grep``/``count`` execute:
        the executor renders its operator pipeline instead of running it.
        """
        result = self._executor.run(command, OutputMode.EXPLAIN, ignore_case)
        return "\n\n".join(
            [self._executor.describe(result.plan), *result.renderings]
        )

    def clear_query_cache(self) -> None:
        """Drop all cached search-string results (cold-query measurements)."""
        self.cache.clear()

    def pin_blocks_in_memory(self) -> None:
        """Keep deserialized boxes across queries (refining sessions).

        The pin is bounded by ``config.box_cache_capacity`` (LRU): pinning
        an archive larger than the bound keeps the most recently touched
        blocks only.
        """
        for name in self.store.names():
            self._executor.load_box(name, pin=True)

    def unpin_blocks(self) -> None:
        self._box_cache.clear()

    def open_session(self) -> "LogGrepSession":
        """Start an interactive refining-mode session (§3).

        While the session is open, CapsuleBoxes stay deserialized and
        decompressed Capsule payloads are retained, so each refinement of
        a query only pays for the *new* work — together with the Query
        Cache this is the paper's debugging workflow."""
        return LogGrepSession(self)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        return self.store.total_bytes()

    def compression_ratio(self) -> float:
        stored = self.storage_bytes()
        return self.raw_bytes / stored if stored else 0.0

    def decompress_all(self) -> List[str]:
        """Rebuild every stored line in global order (round-trip check)."""
        entries: List[Tuple[int, str]] = []
        for name in self.store.names():
            box = self._load_box(name)
            box.prefetch()  # full rebuild touches everything: batch the reads
            reconstructor = BlockReconstructor(box, self.config.query_settings())
            for group_idx, group in enumerate(box.groups):
                rows = RowSet.full(group.num_entries)
                for row in rows:
                    entries.append(reconstructor.entry(group_idx, row))
        entries.sort(key=lambda item: item[0])
        return [text for _, text in entries]


class LogGrepSession:
    """Context manager pinning archive state for interactive querying."""

    def __init__(self, loggrep: "LogGrep"):
        self.loggrep = loggrep
        self.queries_run = 0
        loggrep.pin_blocks_in_memory()

    def grep(self, command: str, ignore_case: bool = False) -> GrepResult:
        self.queries_run += 1
        return self.loggrep.grep(command, ignore_case)

    def count(self, command: str, ignore_case: bool = False) -> int:
        self.queries_run += 1
        return self.loggrep.count(command, ignore_case)

    def explain(self, command: str, ignore_case: bool = False) -> str:
        """Dry-run rendering of the plan; does not count as a query."""
        return self.loggrep.explain(command, ignore_case)

    def close(self) -> None:
        self.loggrep.unpin_blocks()

    def __enter__(self) -> "LogGrepSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
