"""LogGrep configuration, including the §6.3 ablation switches."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Optional

from ..capsule.assembler import EncodingOptions
from ..query.matcher import SCAN_KERNELS
from ..query.vectors import QuerySettings


def _default_compress_parallelism() -> int:
    """CI exercises the parallel ingest path by exporting this variable."""
    return int(os.environ.get("LOGGREP_COMPRESS_PARALLELISM", "1"))


def _default_compress_executor() -> str:
    return os.environ.get("LOGGREP_COMPRESS_EXECUTOR", "thread")


def _default_scan_kernel() -> str:
    """CI runs the suite once with the legacy kernel via this variable."""
    return os.environ.get("LOGGREP_SCAN_KERNEL", "bytes")


def _default_lazy_io() -> bool:
    """CI runs the suite once with eager whole-blob I/O via this variable."""
    return os.environ.get("LOGGREP_LAZY_IO", "1") != "0"


def _default_slow_query_ms() -> Optional[float]:
    raw = os.environ.get("LOGGREP_SLOW_QUERY_MS")
    return float(raw) if raw else None


def _default_slow_query_log() -> Optional[str]:
    return os.environ.get("LOGGREP_SLOW_QUERY_LOG") or None


def _default_max_read_bytes() -> Optional[int]:
    raw = os.environ.get("LOGGREP_MAX_READ_BYTES")
    return int(raw) if raw else None


def _default_max_decoded_values() -> Optional[int]:
    raw = os.environ.get("LOGGREP_MAX_DECODED_VALUES")
    return int(raw) if raw else None


def _default_batch_scans() -> bool:
    """CI runs the suite once with shared-scan batching via this variable."""
    return os.environ.get("LOGGREP_BATCH_SCANS", "0") == "1"


def _default_fragment_cache_entries() -> int:
    """Small values (CI) force LRU eviction on the fragment cache."""
    return int(os.environ.get("LOGGREP_FRAGMENT_CACHE_ENTRIES", "4096"))

#: Names of the five ablated versions evaluated in Fig 9.
ABLATIONS = ("w/o real", "w/o nomi", "w/o stamp", "w/o fixed", "w/o cache")


@dataclass
class LogGrepConfig:
    """Every knob of the compression and query pipelines.

    The five ``use_*`` feature switches correspond one-to-one to the
    ablated versions of §6.3; :func:`ablated` builds them by name.
    """

    # -- compression-side ------------------------------------------------
    sample_rate: float = 0.05  # parser + extractor sampling (§3, §4.1)
    similarity: float = 0.6  # template miner merge threshold
    parser: str = "drain"  # template miner: "drain" or "slct"
    duplication_threshold: float = 0.5  # real/nominal split (§4.1)
    preset: int = 1  # LZMA preset for Capsule payloads
    block_bytes: int = 64 * 1024 * 1024  # log block size (§2)
    seed: int = 0  # determinism for sampling/probing

    # -- feature switches (Fig 9 ablations) -------------------------------
    use_real_patterns: bool = True  # tree expanding (§4.1)
    use_nominal_patterns: bool = True  # pattern merging (§4.1)
    use_stamps: bool = True  # Capsule stamp filtering (§4.3, §5.1)
    use_padding: bool = True  # fixed-length matching (§5.2)
    use_query_cache: bool = True  # refining-mode cache (§3)

    # -- extensions beyond the paper ---------------------------------------
    use_block_bloom: bool = False  # block-level trigram Bloom pruning
    bloom_bits_per_trigram: int = 10

    # -- compression scheduler (§8 "compression speed") --------------------
    # Blocks are independent once parsed, so the scheduler fans the
    # CPU-bound encode/serialize stage out to N workers while parsing
    # stays ordered on the submitting thread (archives are byte-identical
    # for any worker count).  "process" sidesteps the GIL for the
    # per-value Python encoding loops; "thread" still overlaps the LZMA
    # portions, which release the GIL.
    compress_parallelism: int = field(default_factory=_default_compress_parallelism)
    compress_executor: str = field(default_factory=_default_compress_executor)
    # Template warm-start: seed each block's parse with templates mined
    # from earlier blocks of the same stream (consecutive blocks of one
    # log share static patterns, §3.1); a block whose unmatched-line
    # fraction exceeds the drift threshold is re-mined from scratch.
    template_warm_start: bool = True
    template_drift_threshold: float = 0.3

    # -- codec tiering ----------------------------------------------------
    # Opt-in: store a Capsule with zlib instead of LZMA when LZMA's ratio
    # edge is below ZLIB_MARGIN — faster decompression on the query path
    # at a small ratio cost.  Off by default so archives stay byte-
    # identical to earlier versions.
    codec_speed_tier: bool = False
    # Emit permissive Capsule stamps instead of scanning every value's
    # character classes.  Permissive stamps admit everything — they can
    # never cause a wrong skip, only forgo stamp pruning.  The hot tail
    # turns this on: its single in-memory block is always scanned anyway,
    # and stamp computation would sit on the append→queryable latency.
    cheap_stamps: bool = False

    # -- archive I/O -------------------------------------------------------
    # Lazy I/O: load boxes through ranged reads (header + bloom + metadata)
    # and fetch capsule payloads on first access, so bytes read track query
    # selectivity.  Off (env LOGGREP_LAZY_IO=0) restores whole-blob reads —
    # the differential oracle CI runs the suite against.
    lazy_io: bool = field(default_factory=_default_lazy_io)
    # Persistent prune index: maintain/load the per-archive sidecar of
    # bloom bits + stamp summaries so block-level pruning needs zero store
    # reads.  Purely derived data; disabling only disables the fast path.
    use_prune_index: bool = True
    # Serve ranged reads from memory-mapped blobs (repeated range reads of
    # hot blocks on local disks).
    store_mmap: bool = False

    # -- query-side --------------------------------------------------------
    # The paper's fixed-length matcher is Boyer-Moore (§5.2); it is the
    # default so scan cost stays proportional to bytes scanned, which is
    # what makes the filtering techniques measurable.  "native" swaps in
    # CPython's C substring search for raw speed.
    engine: str = "boyer-moore"
    # Scan kernel for fixed-length matching: "bytes" matches fragments
    # directly on Capsule payload buffers (find hops + alignment
    # arithmetic, §5.2); "python" is the original per-position path over
    # the pluggable engines, kept as the differential-testing oracle.
    scan_kernel: str = field(default_factory=_default_scan_kernel)
    cache_capacity: int = 4096
    # Bound on decoded value columns retained across queries (counted in
    # values, not entries); entries die with their Capsule, so the cache's
    # lifetime rides the BoxCache LRU.
    value_cache_values: int = 1 << 16
    # Bound on pinned deserialized CapsuleBoxes (refining sessions); the
    # LRU keeps a pin of a huge archive from holding every block at once.
    box_cache_capacity: int = 64
    # Blocks are independent, so queries parallelize trivially (§6's
    # "both compression and query execution can easily be parallelized";
    # the paper normalizes to one CPU, hence default 1).
    query_parallelism: int = 1
    # Shared-scan batching: route grep/count/aggregate through the
    # BatchExecutor (one block pass shared across concurrent plans) even
    # for single queries, so every query warms — and benefits from — the
    # predicate-fragment cache.  grep_many/aggregate_many batch
    # regardless of this switch when asked to.
    batch_scans: bool = field(default_factory=_default_batch_scans)
    # Bound on cached predicate fragments (per-block match row sets keyed
    # by archive generation); see repro/query/fragcache.py.
    fragment_cache_entries: int = field(
        default_factory=_default_fragment_cache_entries
    )

    # -- per-query accounting (ledger, slow-query log, budgets) ------------
    # Any of these being set activates the QueryLedger for every query;
    # with all four at None (the default) queries run with the null ledger
    # and the accounting layer costs nothing.
    # Queries slower than this threshold (milliseconds) emit one JSON-lines
    # record to slow_query_log_path (or the "repro.slowlog" logger).
    slow_query_ms: Optional[float] = field(default_factory=_default_slow_query_ms)
    slow_query_log_path: Optional[str] = field(default_factory=_default_slow_query_log)
    # Soft per-query budgets: the query aborts with BudgetExceeded (carrying
    # the partial ledger) the moment its store bytes read or decoded-value
    # count crosses the limit — degrade one query, not the host.
    max_read_bytes: Optional[int] = field(default_factory=_default_max_read_bytes)
    max_decoded_values: Optional[int] = field(default_factory=_default_max_decoded_values)

    def encoding_options(self, seed: int = None) -> EncodingOptions:
        return EncodingOptions(
            use_real_patterns=self.use_real_patterns,
            use_nominal_patterns=self.use_nominal_patterns,
            use_padding=self.use_padding,
            duplication_threshold=self.duplication_threshold,
            sample_rate=self.sample_rate,
            preset=self.preset,
            seed=self.seed if seed is None else seed,
            codec_speed_tier=self.codec_speed_tier,
            cheap_stamps=self.cheap_stamps,
        )

    def query_settings(self) -> QuerySettings:
        # The paper pairs padding with Boyer-Moore and the w/o-fixed
        # ablation with KMP; when padding is disabled and the engine was
        # left at the paper's default, fall back the same way.
        engine = self.engine
        if not self.use_padding and engine == "boyer-moore":
            engine = "kmp"
        if self.scan_kernel not in SCAN_KERNELS:
            raise ValueError(
                f"unknown scan kernel {self.scan_kernel!r}; "
                f"pick one of {SCAN_KERNELS}"
            )
        return QuerySettings(
            use_stamps=self.use_stamps,
            engine=engine,
            scan_kernel=self.scan_kernel,
        )


def ablated(name: str, base: LogGrepConfig = None) -> LogGrepConfig:
    """Build one of Fig 9's ablated configurations by its paper name."""
    base = base or LogGrepConfig()
    if name == "w/o real":
        return replace(base, use_real_patterns=False)
    if name == "w/o nomi":
        return replace(base, use_nominal_patterns=False)
    if name == "w/o stamp":
        return replace(base, use_stamps=False)
    if name == "w/o fixed":
        return replace(base, use_padding=False)
    if name == "w/o cache":
        return replace(base, use_query_cache=False)
    raise ValueError(f"unknown ablation {name!r}; choose from {ABLATIONS}")


def sp_config(base: LogGrepConfig = None) -> LogGrepConfig:
    """LogGrep-SP (§2.2): static patterns only, no runtime structurization.

    The first attempt stored whole variable vectors with vector-level
    summaries and no padding, scanned with KMP.
    """
    base = base or LogGrepConfig()
    return replace(
        base,
        use_real_patterns=False,
        use_nominal_patterns=False,
        use_padding=False,
    )
