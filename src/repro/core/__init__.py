"""The paper's primary contribution: the LogGrep system (§3-§5)."""

from .compressor import compress_block, encode_parsed, parse_block
from .config import ABLATIONS, LogGrepConfig, ablated, sp_config
from .loggrep import CompressionReport, GrepResult, LogGrep, LogGrepSession
from .catalog import CatalogEntry, LogCatalog, UnknownLogError
from .lifecycle import archive_offline, offline_config, transition_analysis
from .reconstructor import BlockReconstructor
from .schedule import CompressionScheduler
from .streaming import StreamingCompressor

__all__ = [
    "LogGrep",
    "LogGrepSession",
    "LogGrepConfig",
    "GrepResult",
    "CompressionReport",
    "compress_block",
    "parse_block",
    "encode_parsed",
    "CompressionScheduler",
    "BlockReconstructor",
    "StreamingCompressor",
    "LogCatalog",
    "CatalogEntry",
    "UnknownLogError",
    "archive_offline",
    "offline_config",
    "transition_analysis",
    "ablated",
    "sp_config",
    "ABLATIONS",
]
