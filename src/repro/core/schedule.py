"""Parallel compression scheduler with cross-block template warm-start.

§8 calls compression speed what lets LogGrep "ingest raw logs at a high
speed", and §6 notes both compression and query execution parallelize
trivially across blocks.  This module is the ingest-side mirror of the
query executor's scheduler: batch and streaming compression submit blocks
here, and the scheduler pipelines them through three stages::

    parse  (ordered, submitting thread)   template warm-start cache
      │
    encode (worker pool: thread/process)  classify + encapsulate + pack
      │                                   + serialize — pure CPU
    commit (ordered, submitting thread)   store.put + metrics + hooks

The *parse* stage stays on the submitting thread in block order because
it mutates the :class:`~repro.staticparse.cache.TemplateCache`: the
snapshot block *N* parses against is exactly the templates merged by
blocks ``0..N-1``, a pure function of the input stream.  The *encode*
stage is a pure function of ``(block, parsed, config)``, so fanning it
out cannot change bytes.  Commits happen in submission order.  Together
that yields the scheduler's determinism contract: **archives are
byte-identical to serial compression regardless of worker count or
executor kind** (property-tested in ``tests/test_compress_equivalence``).

``config.compress_parallelism`` picks the worker count and
``config.compress_executor`` the pool kind — ``"thread"`` overlaps the
LZMA portions (which release the GIL), ``"process"`` sidesteps the GIL
for the per-value Python encoding loops.  With one worker and
``always_async=False`` the scheduler degrades to the exact serial path
(no pool is ever created).  Back-pressure bounds the in-flight pipeline
at twice the worker count, committing the oldest block when full, so a
producer can never outrun compression without bound.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Deque, List, NamedTuple, Optional, Tuple, Union

from ..blockstore.block import LogBlock, block_name
from ..blockstore.index import ArchiveIndex, BlockSummary, save_index
from ..blockstore.store import ArchiveStore
from ..obs.metrics import get_registry
from ..obs.trace import Span, get_tracer
from ..staticparse.cache import TemplateCache
from .compressor import encode_parsed, parse_block
from .config import LogGrepConfig

_PARSE_SECONDS = get_registry().histogram(
    "loggrep_compress_parse_seconds",
    "Per-block wall-clock of the ordered parse stage",
)
_ENCODE_SECONDS = get_registry().histogram(
    "loggrep_compress_encode_seconds",
    "Per-block wall-clock of the encode+serialize stage",
)

#: Hook invoked after each block is persisted: (name, block, data).
CommitHook = Callable[[str, LogBlock, bytes], None]

#: What the encode stage returns: serialized bytes + the block's
#: prune-index summary + its wall-clock.  The summary is computed on the
#: worker (it only walks stamps already in memory) so commit stays cheap;
#: it is picklable for the process-pool path.
EncodeResult = Tuple[bytes, BlockSummary, float]


def _encode_job(
    block: LogBlock, parsed: object, config: LogGrepConfig
) -> EncodeResult:
    """Encode + serialize one parsed block (process-pool entry point).

    Module-level and argument-pure so :class:`ProcessPoolExecutor` can
    pickle it; spans are not propagated across the process boundary.
    """
    start = time.perf_counter()
    box = encode_parsed(block, parsed, config)  # type: ignore[arg-type]
    data = box.serialize()
    summary = BlockSummary.from_box(box, lines=block.lines)
    return data, summary, time.perf_counter() - start


class _Pending(NamedTuple):
    """One submitted block waiting for its encode result."""

    name: str
    block: LogBlock
    span: Optional[Span]
    parse_seconds: float
    result: Union["Future[EncodeResult]", EncodeResult]


class CompressionScheduler:
    """Ordered-parse / fanned-encode / ordered-commit block pipeline."""

    def __init__(
        self,
        store: ArchiveStore,
        config: LogGrepConfig,
        template_cache: Optional[TemplateCache] = None,
        on_commit: Optional[CommitHook] = None,
        index: Optional[ArchiveIndex] = None,
        parallelism: Optional[int] = None,
        executor: Optional[str] = None,
        always_async: bool = False,
    ) -> None:
        workers = parallelism if parallelism is not None else config.compress_parallelism
        kind = executor if executor is not None else config.compress_executor
        if workers < 1:
            raise ValueError("compress parallelism must be positive")
        if kind not in ("thread", "process"):
            raise ValueError(
                f"unknown compress executor {kind!r}; pick 'thread' or 'process'"
            )
        self.store = store
        self.config = config
        self.template_cache = template_cache
        self.on_commit = on_commit
        # Per-archive prune index updated at commit and persisted as a
        # store sidecar on drain/close (None = maintenance disabled).
        self.index = index
        self._index_dirty = False
        # Tracked on the instance — back-pressure must not reach into
        # executor privates (the configured depth is ours to know).
        self.workers = workers
        self.executor_kind = kind
        self.max_inflight = workers * 2
        self._async = always_async or workers > 1
        self._pool: Optional[Executor] = None
        self._pending: Deque[_Pending] = deque()
        self.blocks = 0
        self.raw_bytes = 0
        self.compressed_bytes = 0
        self._closed = False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, block: LogBlock) -> None:
        """Parse *block* now (ordered) and queue its encode stage.

        Blocks when the in-flight pipeline is full (back-pressure), by
        committing the oldest outstanding block first.
        """
        if self._closed:
            raise RuntimeError("compression scheduler is closed")
        tracer = get_tracer()
        name = block_name(block.block_id)
        self.raw_bytes += block.raw_bytes
        with tracer.span(
            "compress.block", block=name, raw_bytes=block.raw_bytes
        ) as bspan:
            parse_start = time.perf_counter()
            parsed, _ = parse_block(block, self.config, self.template_cache)
            parse_seconds = time.perf_counter() - parse_start
            if not self._async:
                # Serial fallback: encode inline so spans nest exactly
                # like the historical single-threaded pipeline.
                result: Union["Future[EncodeResult]", EncodeResult]
                result = self._encode_traced(block, parsed, None)
            elif self.executor_kind == "process":
                result = self._ensure_pool().submit(
                    _encode_job, block, parsed, self.config
                )
            else:
                result = self._ensure_pool().submit(
                    self._encode_traced, block, parsed, bspan
                )
        self._pending.append(_Pending(name, block, bspan, parse_seconds, result))
        if not self._async:
            self._commit_oldest()
            return
        while len(self._pending) > self.max_inflight:
            self._commit_oldest()

    def _ensure_pool(self) -> Executor:
        if self._pool is None:
            if self.executor_kind == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
        return self._pool

    def _encode_traced(
        self, block: LogBlock, parsed: object, parent: Optional[Span]
    ) -> EncodeResult:
        """Encode stage for the serial and thread paths.

        ``parent`` attaches the worker-thread spans to the block's span;
        on the serial path it is ``None`` and spans nest via the stack.
        """
        tracer = get_tracer()
        start = time.perf_counter()
        box = encode_parsed(block, parsed, self.config, parent=parent)  # type: ignore[arg-type]
        with tracer.span("serialize", parent=parent):
            data = box.serialize()
        summary = BlockSummary.from_box(box, lines=block.lines)
        return data, summary, time.perf_counter() - start

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------
    def _commit_oldest(self) -> None:
        pending = self._pending.popleft()
        result = pending.result
        if isinstance(result, Future):
            data, summary, encode_seconds = result.result()
        else:
            data, summary, encode_seconds = result
        self.store.put(pending.name, data)
        if self.index is not None:
            self.index.add(pending.name, summary)
            self._index_dirty = True
        self.blocks += 1
        self.compressed_bytes += len(data)
        if pending.span is not None:
            pending.span.set("compressed_bytes", len(data))
        _PARSE_SECONDS.observe(pending.parse_seconds)
        _ENCODE_SECONDS.observe(encode_seconds)
        if self.on_commit is not None:
            self.on_commit(pending.name, pending.block, data)

    @property
    def backlog(self) -> int:
        """Blocks submitted but not yet committed to the store."""
        return len(self._pending)

    def pending_blocks(self) -> List[LogBlock]:
        """The raw blocks submitted but not yet committed, oldest first.

        The hot-tail query path folds these into the tail snapshot: a
        line is in exactly one of (committed store, pending block, append
        buffer) at any instant, so the union is complete and duplicate-
        free across the seal race.
        """
        return [pending.block for pending in self._pending]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Commit every outstanding block, in submission order, and
        persist the prune-index sidecar when it changed."""
        while self._pending:
            self._commit_oldest()
        if self.index is not None and self._index_dirty:
            if hasattr(self.store, "put_aux"):
                save_index(self.store, self.index)
            self._index_dirty = False

    def close(self) -> None:
        """Drain and release the worker pool.  Idempotent."""
        if self._closed:
            return
        try:
            self.drain()
        finally:
            self._closed = True
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "CompressionScheduler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
