"""Design-choice parameter sweeps.

The paper fixes several constants — the 0.5 duplication-rate threshold
(§4.1, with the claim that the bathtub distribution makes it insensitive),
the 5% sampling rate (§3), LZMA as the second-stage codec (§3) — and this
module sweeps each so the benchmarks can check the claims rather than
inherit them:

* :func:`sweep_duplication_threshold` — ratio/latency across thresholds;
* :func:`sweep_sample_rate` — parsing sample size vs speed and ratio;
* :func:`sweep_preset` — the LZMA ratio/speed trade;
* :func:`sweep_block_bytes` — block size vs everything.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence

from ..baselines.loggrep_system import LogGrepSystem
from ..core.config import LogGrepConfig
from ..workloads.spec import LogSpec
from .runner import BENCH_BLOCK_BYTES


@dataclass
class SweepPoint:
    """One configuration's measurements, averaged over the datasets."""

    value: object
    compression_ratio: float
    compression_speed_mb_s: float
    query_latency_s: float

    def row(self) -> List[str]:
        return [
            str(self.value),
            f"{self.compression_ratio:.2f}x",
            f"{self.compression_speed_mb_s:.2f}MB/s",
            f"{self.query_latency_s * 1000:.1f}ms",
        ]


def _measure(
    specs: Sequence[LogSpec], lines_per_spec: int, config: LogGrepConfig
) -> SweepPoint:
    ratios: List[float] = []
    speeds: List[float] = []
    latencies: List[float] = []
    for spec in specs:
        lines = spec.generate(lines_per_spec)
        system = LogGrepSystem(config)
        system.ingest(lines)
        system.loggrep.clear_query_cache()
        _, seconds = system.timed_query(spec.query)
        ratios.append(system.compression_ratio())
        speeds.append(system.compression_speed_mb_s())
        latencies.append(seconds)
    n = len(specs)
    return SweepPoint(
        None,
        sum(ratios) / n,
        sum(speeds) / n,
        sum(latencies) / n,
    )


def _sweep(
    specs: Sequence[LogSpec],
    lines_per_spec: int,
    values: Sequence[object],
    configure: Callable[[LogGrepConfig, object], LogGrepConfig],
) -> List[SweepPoint]:
    base = LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES)
    out: List[SweepPoint] = []
    for value in values:
        point = _measure(specs, lines_per_spec, configure(base, value))
        point.value = value
        out.append(point)
    return out


def sweep_duplication_threshold(
    specs: Sequence[LogSpec],
    lines_per_spec: int,
    thresholds: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> List[SweepPoint]:
    """§4.1's claim: anywhere 'in the middle' behaves about the same."""
    return _sweep(
        specs,
        lines_per_spec,
        thresholds,
        lambda base, value: replace(base, duplication_threshold=value),
    )


def sweep_sample_rate(
    specs: Sequence[LogSpec],
    lines_per_spec: int,
    rates: Sequence[float] = (0.01, 0.05, 0.2, 1.0),
) -> List[SweepPoint]:
    return _sweep(
        specs,
        lines_per_spec,
        rates,
        lambda base, value: replace(base, sample_rate=value),
    )


def sweep_preset(
    specs: Sequence[LogSpec],
    lines_per_spec: int,
    presets: Sequence[int] = (0, 1, 6, 9),
) -> List[SweepPoint]:
    return _sweep(
        specs,
        lines_per_spec,
        presets,
        lambda base, value: replace(base, preset=value),
    )


def sweep_block_bytes(
    specs: Sequence[LogSpec],
    lines_per_spec: int,
    sizes: Sequence[int] = (64 * 1024, 256 * 1024, 1 << 20, 4 << 20),
) -> List[SweepPoint]:
    return _sweep(
        specs,
        lines_per_spec,
        sizes,
        lambda base, value: replace(base, block_bytes=value),
    )
