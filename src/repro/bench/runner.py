"""Measurement harness driving all five systems over the dataset suite.

For every (dataset, system) pair the runner records the three quantities
Fig 7 plots — query latency (the dataset's Table 1 query, direct mode),
compression ratio and compression speed — plus the raw sizes Equation 1
needs.  ``REPRO_SCALE`` (base lines per dataset, default 2000) trades
runtime for fidelity; relative dataset sizes follow each spec's
``size_factor`` like the paper's logs do.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.base import LogStoreSystem
from ..baselines.clp import CLP
from ..baselines.elastic import MiniElastic
from ..baselines.gzip_grep import GzipGrep
from ..baselines.loggrep_sp import LogGrepSP
from ..baselines.loggrep_system import LogGrepSystem
from ..core.config import LogGrepConfig
from ..workloads.spec import LogSpec

#: Lines generated per unit of size_factor; override with REPRO_SCALE.
DEFAULT_BASE_LINES = 2000

#: Block size used for all blocked systems at laptop scale (the 64 MB
#: production value would put every test dataset in a single block).
BENCH_BLOCK_BYTES = 1 << 20

#: The five systems of Fig 7/8, in the paper's plotting order.
SYSTEM_ORDER = ("ggrep", "CLP", "ES", "LG-SP", "LG")


def base_lines() -> int:
    return int(os.environ.get("REPRO_SCALE", DEFAULT_BASE_LINES))


def compress_parallelism() -> int:
    """Worker count for the LogGrep ingest scheduler.

    The paper normalizes to one CPU, so the default stays serial; export
    ``REPRO_COMPRESS_PARALLELISM`` to let ingest throughput scale with
    cores (archives are byte-identical either way, so the ratio and
    query numbers are unaffected).
    """
    return int(os.environ.get("REPRO_COMPRESS_PARALLELISM", "1"))


def system_factories() -> Dict[str, Callable[[], LogStoreSystem]]:
    def _lg_config() -> LogGrepConfig:
        return LogGrepConfig(
            block_bytes=BENCH_BLOCK_BYTES,
            compress_parallelism=compress_parallelism(),
        )

    return {
        "ggrep": lambda: GzipGrep(block_bytes=BENCH_BLOCK_BYTES),
        "CLP": CLP,
        "ES": MiniElastic,
        "LG-SP": lambda: LogGrepSP(_lg_config()),
        "LG": lambda: LogGrepSystem(_lg_config()),
    }


@dataclass
class Measurement:
    """One (dataset, system) data point."""

    dataset: str
    system: str
    raw_bytes: int
    storage_bytes: int
    compression_ratio: float
    compression_speed_mb_s: float
    query_latency_s: float
    hits: int
    query: str
    #: Seconds per query stage (plan/block_filter/locate/reconstruct/...),
    #: recorded from one traced run for systems built on LogGrep.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def query_latency_s_per_tb(self) -> float:
        """Latency extrapolated linearly to a TB of raw logs (Eq 1 input)."""
        if self.raw_bytes == 0:
            return 0.0
        return self.query_latency_s * (1e12 / self.raw_bytes)


def measure_system(
    spec: LogSpec,
    lines: Sequence[str],
    factory: Callable[[], LogStoreSystem],
    query_repeats: int = 1,
) -> Measurement:
    """Ingest *lines* into a fresh system and run the dataset's query."""
    system = factory()
    system.ingest(list(lines))
    best = float("inf")
    hits: List[str] = []
    for _ in range(max(1, query_repeats)):
        got, elapsed = system.timed_query(spec.query)
        hits = got
        best = min(best, elapsed)
    # One extra traced run (outside the timed loop, so the latency numbers
    # stay untraced) yields the per-stage breakdown for LogGrep-backed
    # systems; the comparators have no span instrumentation.
    stage_seconds: Dict[str, float] = {}
    if getattr(system, "loggrep", None) is not None:
        from ..obs.trace import stage_totals, tracing

        with tracing() as tracer:
            system.query(spec.query)
        stage_seconds = stage_totals(tracer.last_root())
    return Measurement(
        dataset=spec.name,
        system=system.name,
        raw_bytes=system.raw_bytes,
        storage_bytes=system.storage_bytes(),
        compression_ratio=system.compression_ratio(),
        compression_speed_mb_s=system.compression_speed_mb_s(),
        query_latency_s=best,
        hits=len(hits),
        query=spec.query,
        stage_seconds=stage_seconds,
    )


def run_suite(
    specs: Sequence[LogSpec],
    systems: Optional[Sequence[str]] = None,
    lines_per_spec: Optional[int] = None,
) -> List[Measurement]:
    """Measure every (dataset, system) pair of the suite."""
    factories = system_factories()
    chosen = list(systems) if systems else list(SYSTEM_ORDER)
    base = lines_per_spec if lines_per_spec is not None else base_lines()
    out: List[Measurement] = []
    for spec in specs:
        lines = spec.generate(base)
        for name in chosen:
            out.append(measure_system(spec, lines, factories[name]))
    return out


def by_system(measurements: Sequence[Measurement]) -> Dict[str, List[Measurement]]:
    grouped: Dict[str, List[Measurement]] = {}
    for m in measurements:
        grouped.setdefault(m.system, []).append(m)
    return grouped


def geomean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for v in positives:
        product *= v
    return product ** (1.0 / len(positives))
