"""Compression-pipeline profiler.

§8 notes "there is still room to improve the compression speed of
LogGrep".  This profiler breaks one block's compression into the Fig 2
stages — Parser, classifier, Extractor+Assembler (per vector kind),
Packer/serializer — so the bench suite can show *where* the ingest time
goes and how the ablations shift it.

Since the observability layer landed, the profiler is a thin reader over
the same spans every traced compression produces (`repro.obs`): it runs
``compress_block`` under a private Tracer and aggregates the ``parse`` /
``classify`` / ``encode`` / ``serialize`` spans, so there is exactly one
timing truth shared with ``loggrep grep --trace`` and the bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..blockstore.block import LogBlock
from ..core.compressor import compress_block
from ..core.config import LogGrepConfig
from ..obs.trace import tracing


@dataclass
class CompressionProfile:
    """Wall-clock per pipeline stage for one block."""

    parse_seconds: float
    encode_real_seconds: float
    encode_nominal_seconds: float
    encode_plain_seconds: float
    serialize_seconds: float
    raw_bytes: int
    compressed_bytes: int
    vectors: Dict[str, int] = field(default_factory=dict)
    classify_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.classify_seconds
            + self.encode_real_seconds
            + self.encode_nominal_seconds
            + self.encode_plain_seconds
            + self.serialize_seconds
        )

    def breakdown(self) -> List[List[str]]:
        total = self.total_seconds or 1e-12
        rows = []
        for label, seconds in (
            ("parse (static patterns)", self.parse_seconds),
            ("classify vectors", self.classify_seconds),
            ("encode real vectors", self.encode_real_seconds),
            ("encode nominal vectors", self.encode_nominal_seconds),
            ("encode plain vectors", self.encode_plain_seconds),
            ("serialize CapsuleBox", self.serialize_seconds),
        ):
            rows.append([label, f"{seconds * 1000:.1f} ms", f"{seconds / total * 100:.0f}%"])
        return rows


def profile_compression(
    lines: Sequence[str], config: Optional[LogGrepConfig] = None
) -> CompressionProfile:
    """Compress *lines* as one block, timing each Fig 2 stage via spans."""
    config = config or LogGrepConfig()
    block = LogBlock(0, 0, list(lines))

    with tracing() as tracer:
        with tracer.span("compress.block") as root:
            box = compress_block(block, config)
            with tracer.span("serialize"):
                data = box.serialize()

    encode_seconds = {"real": 0.0, "nominal": 0.0, "plain": 0.0}
    vector_counts = {"real": 0, "nominal": 0, "plain": 0}
    for span in root.find("encode"):
        bucket = span.attrs.get("bucket", "plain")
        encode_seconds[bucket] += span.seconds
        vector_counts[bucket] += 1

    def stage(name: str) -> float:
        return sum(span.seconds for span in root.find(name))

    return CompressionProfile(
        parse_seconds=stage("parse"),
        classify_seconds=stage("classify"),
        encode_real_seconds=encode_seconds["real"],
        encode_nominal_seconds=encode_seconds["nominal"],
        encode_plain_seconds=encode_seconds["plain"],
        serialize_seconds=stage("serialize"),
        raw_bytes=block.raw_bytes,
        compressed_bytes=len(data),
        vectors=vector_counts,
    )
