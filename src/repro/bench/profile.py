"""Compression-pipeline profiler.

§8 notes "there is still room to improve the compression speed of
LogGrep".  This profiler breaks one block's compression into the Fig 2
stages — Parser, Extractor+Assembler (per vector kind), Packer/serializer
— so the bench suite can show *where* the ingest time goes and how the
ablations shift it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..blockstore.block import LogBlock
from ..capsule.assembler import encode_vector
from ..capsule.box import CapsuleBox, GroupBox
from ..core.compressor import _vector_seed
from ..core.config import LogGrepConfig
from ..runtime.classify import VectorKind, classify
from ..staticparse.parser import BlockParser


@dataclass
class CompressionProfile:
    """Wall-clock per pipeline stage for one block."""

    parse_seconds: float
    encode_real_seconds: float
    encode_nominal_seconds: float
    encode_plain_seconds: float
    serialize_seconds: float
    raw_bytes: int
    compressed_bytes: int
    vectors: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.encode_real_seconds
            + self.encode_nominal_seconds
            + self.encode_plain_seconds
            + self.serialize_seconds
        )

    def breakdown(self) -> List[List[str]]:
        total = self.total_seconds or 1e-12
        rows = []
        for label, seconds in (
            ("parse (static patterns)", self.parse_seconds),
            ("encode real vectors", self.encode_real_seconds),
            ("encode nominal vectors", self.encode_nominal_seconds),
            ("encode plain vectors", self.encode_plain_seconds),
            ("serialize CapsuleBox", self.serialize_seconds),
        ):
            rows.append([label, f"{seconds * 1000:.1f} ms", f"{seconds / total * 100:.0f}%"])
        return rows


def profile_compression(
    lines: Sequence[str], config: Optional[LogGrepConfig] = None
) -> CompressionProfile:
    """Compress *lines* as one block, timing each Fig 2 stage."""
    config = config or LogGrepConfig()
    block = LogBlock(0, 0, list(lines))

    start = time.perf_counter()
    parser = BlockParser(
        sample_rate=config.sample_rate,
        similarity=config.similarity,
        seed=config.seed,
    )
    parsed = parser.parse(block.lines)
    parse_seconds = time.perf_counter() - start

    encode_seconds = {VectorKind.REAL: 0.0, VectorKind.NOMINAL: 0.0, "plain": 0.0}
    vector_counts = {"real": 0, "nominal": 0, "plain": 0}
    groups = []
    for group_idx, group in enumerate(parsed.groups):
        vectors = []
        for var_idx, vector in enumerate(group.variable_vectors):
            seed = _vector_seed(config.seed, 0, group_idx, var_idx)
            options = config.encoding_options(seed)
            kind = classify(vector, config.duplication_threshold)
            uses_patterns = (
                kind is VectorKind.REAL and options.use_real_patterns
            ) or (kind is VectorKind.NOMINAL and options.use_nominal_patterns)
            bucket = kind if uses_patterns else "plain"
            t0 = time.perf_counter()
            vectors.append(encode_vector(vector, options))
            encode_seconds[bucket] += time.perf_counter() - t0
            vector_counts[
                kind.value if uses_patterns else "plain"
            ] += 1
        groups.append(GroupBox(group.template, group.line_ids, vectors))

    t0 = time.perf_counter()
    data = CapsuleBox(0, 0, block.num_lines, config.use_padding, groups).serialize()
    serialize_seconds = time.perf_counter() - t0

    return CompressionProfile(
        parse_seconds=parse_seconds,
        encode_real_seconds=encode_seconds[VectorKind.REAL],
        encode_nominal_seconds=encode_seconds[VectorKind.NOMINAL],
        encode_plain_seconds=encode_seconds["plain"],
        serialize_seconds=serialize_seconds,
        raw_bytes=block.raw_bytes,
        compressed_bytes=len(data),
        vectors=vector_counts,
    )
