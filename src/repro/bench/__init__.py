"""Benchmark harness: runners, figure drivers and report generation."""

from .profile import CompressionProfile, profile_compression
from .runner import (
    BENCH_BLOCK_BYTES,
    DEFAULT_BASE_LINES,
    Measurement,
    SYSTEM_ORDER,
    base_lines,
    by_system,
    geomean,
    measure_system,
    run_suite,
    system_factories,
)

__all__ = [
    "Measurement",
    "CompressionProfile",
    "profile_compression",
    "SYSTEM_ORDER",
    "BENCH_BLOCK_BYTES",
    "DEFAULT_BASE_LINES",
    "base_lines",
    "by_system",
    "geomean",
    "measure_system",
    "run_suite",
    "system_factories",
]
