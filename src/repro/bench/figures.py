"""Experiment drivers regenerating every table and figure of the paper.

Each function returns plain data structures (and can pretty-print them),
so the pytest benchmarks, the EXPERIMENTS.md report generator and ad-hoc
exploration all share one implementation:

* :func:`figure3`  — single- vs multi-pattern vectors by duplication rate
* :func:`section23_stats` — char-type/length-variance averages of §2.2/§2.3
* :func:`figure7_rows` — per-log latency / ratio / speed table (Fig 7a-c)
* :func:`figure7_summary` — the cross-system ratios quoted in §6.1/§6.2
* :func:`figure8` — Equation-1 overall cost per system (Fig 8a/b)
* :func:`figure9` — per-technique ablations, normalized latency (Fig 9)
* :func:`padding_effect` — padding's compression-ratio impact (§6.3)
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..baselines.loggrep_system import LogGrepSystem
from ..common import chartypes
from ..core.config import ABLATIONS, LogGrepConfig, ablated
from ..cost.model import CostBreakdown, CostParameters, overall_cost
from ..query.language import parse_query
from ..runtime.classify import duplication_rate
from ..runtime.treeexpand import TreeExpandConfig, extract_real_pattern
from ..staticparse.parser import BlockParser
from ..workloads.spec import LogSpec
from .runner import (
    BENCH_BLOCK_BYTES,
    Measurement,
    SYSTEM_ORDER,
    by_system,
    geomean,
)

#: A pattern is "single" when it covers ≥90% of the vector (§4.1).
SINGLE_PATTERN_COVERAGE = 0.9

#: Vectors shorter than this carry no classification signal.
MIN_VECTOR_VALUES = 20


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------
@dataclass
class Fig3Bucket:
    low: float
    high: float
    single: int
    multi: int


def harvest_vectors(
    specs: Sequence[LogSpec], lines_per_spec: int
) -> List[List[str]]:
    """Parse every dataset and collect its variable vectors."""
    vectors: List[List[str]] = []
    parser = BlockParser()
    for spec in specs:
        parsed = parser.parse(spec.generate(lines_per_spec))
        for group in parsed.groups:
            for vector in group.variable_vectors:
                if len(vector) >= MIN_VECTOR_VALUES:
                    vectors.append(vector)
    return vectors


def is_single_pattern(vector: Sequence[str]) -> bool:
    """Does one extracted pattern cover ≥90% of the vector's values?"""
    pattern = extract_real_pattern(vector, TreeExpandConfig(sample_rate=1.0))
    if pattern.is_trivial:
        # A bare <*> technically covers everything but represents "no
        # pattern found"; call it single only if the values are uniform.
        return len(set(vector)) == 1
    covered = sum(1 for value in vector if pattern.match(value) is not None)
    return covered >= SINGLE_PATTERN_COVERAGE * len(vector)


def figure3(
    specs: Sequence[LogSpec], lines_per_spec: int, buckets: int = 10
) -> List[Fig3Bucket]:
    """Distribution of single-/multi-pattern vectors vs duplication rate."""
    out = [
        Fig3Bucket(i / buckets, (i + 1) / buckets, 0, 0) for i in range(buckets)
    ]
    for vector in harvest_vectors(specs, lines_per_spec):
        rate = duplication_rate(vector)
        idx = min(int(rate * buckets), buckets - 1)
        if is_single_pattern(vector):
            out[idx].single += 1
        else:
            out[idx].multi += 1
    return out


# ----------------------------------------------------------------------
# §2.2 / §2.3 statistics
# ----------------------------------------------------------------------
@dataclass
class StructureStats:
    """The six averages quoted in §2.2 and §2.3."""

    vector_char_types: float  # paper: 3.1
    vector_length_variance: float  # paper: 66.1
    block_char_types: float  # paper: 5.8
    block_length_variance: float  # paper: 198.5
    subvar_char_types: float  # paper: 1.5
    subvar_length_variance: float  # paper: 32.5


def _classes_and_variance(values: Sequence[str]) -> Tuple[int, float]:
    mask = chartypes.type_mask_of_values(values)
    lengths = [len(v) for v in values]
    variance = statistics.pvariance(lengths) if len(lengths) > 1 else 0.0
    return chartypes.class_count(mask), variance


def section23_stats(
    specs: Sequence[LogSpec], lines_per_spec: int
) -> StructureStats:
    vec_types: List[int] = []
    vec_vars: List[float] = []
    blk_types: List[int] = []
    blk_vars: List[float] = []
    sub_types: List[int] = []
    sub_vars: List[float] = []
    parser = BlockParser()
    for spec in specs:
        parsed = parser.parse(spec.generate(lines_per_spec))
        block_values: List[str] = []
        for group in parsed.groups:
            for vector in group.variable_vectors:
                if len(vector) < MIN_VECTOR_VALUES:
                    continue
                block_values.extend(vector)
                types, variance = _classes_and_variance(vector)
                vec_types.append(types)
                vec_vars.append(variance)
                pattern = extract_real_pattern(vector)
                columns: List[List[str]] = [[] for _ in range(pattern.num_subvars)]
                for value in vector:
                    parts = pattern.match(value)
                    if parts is not None:
                        for column, part in zip(columns, parts):
                            column.append(part)
                for column in columns:
                    if len(column) >= MIN_VECTOR_VALUES:
                        types, variance = _classes_and_variance(column)
                        sub_types.append(types)
                        sub_vars.append(variance)
        if block_values:
            types, variance = _classes_and_variance(block_values)
            blk_types.append(types)
            blk_vars.append(variance)
    mean = lambda xs: statistics.fmean(xs) if xs else 0.0  # noqa: E731
    return StructureStats(
        mean(vec_types),
        mean(vec_vars),
        mean(blk_types),
        mean(blk_vars),
        mean(sub_types),
        mean(sub_vars),
    )


# ----------------------------------------------------------------------
# Figure 7
# ----------------------------------------------------------------------
def figure7_rows(measurements: Sequence[Measurement]) -> List[List[str]]:
    """Per-dataset rows: latency(s) / ratio / speed per system."""
    datasets: Dict[str, Dict[str, Measurement]] = {}
    for m in measurements:
        datasets.setdefault(m.dataset, {})[m.system] = m
    rows = []
    for dataset in datasets:
        row = [dataset]
        for system in SYSTEM_ORDER:
            m = datasets[dataset].get(system)
            if m is None:
                row.extend(["-", "-", "-"])
            else:
                row.extend(
                    [
                        f"{m.query_latency_s * 1000:.1f}ms",
                        f"{m.compression_ratio:.1f}x",
                        f"{m.compression_speed_mb_s:.2f}MB/s",
                    ]
                )
        rows.append(row)
    return rows


def figure7_summary(
    measurements: Sequence[Measurement],
) -> Dict[str, Dict[str, float]]:
    """Geomean cross-system ratios: LG latency/ratio/speed vs each system."""
    grouped = by_system(measurements)
    lg = {m.dataset: m for m in grouped.get("LG", [])}
    summary: Dict[str, Dict[str, float]] = {}
    for system, ms in grouped.items():
        if system == "LG":
            continue
        latency_ratios = []
        ratio_ratios = []
        speed_ratios = []
        for m in ms:
            base = lg.get(m.dataset)
            if base is None:
                continue
            if base.query_latency_s > 0:
                latency_ratios.append(m.query_latency_s / base.query_latency_s)
            if m.compression_ratio > 0:
                ratio_ratios.append(base.compression_ratio / m.compression_ratio)
            if m.compression_speed_mb_s > 0:
                speed_ratios.append(
                    base.compression_speed_mb_s / m.compression_speed_mb_s
                )
        summary[system] = {
            "latency_vs_lg": geomean(latency_ratios),  # >1 → LG faster
            "ratio_gain": geomean(ratio_ratios),  # >1 → LG compresses better
            "speed_gain": geomean(speed_ratios),  # <1 → LG compresses slower
        }
    return summary


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
def figure8(
    measurements: Sequence[Measurement],
    params: CostParameters = CostParameters(),
) -> Dict[str, CostBreakdown]:
    """Average Equation-1 cost ($/TB) per system across a dataset suite."""
    grouped = by_system(measurements)
    out: Dict[str, CostBreakdown] = {}
    for system, ms in grouped.items():
        costs = [
            overall_cost(
                m.compression_ratio,
                m.compression_speed_mb_s,
                m.query_latency_s_per_tb,
                params,
            )
            for m in ms
            if m.compression_ratio > 0 and m.compression_speed_mb_s > 0
        ]
        if not costs:
            continue
        n = len(costs)
        out[system] = CostBreakdown(
            sum(c.storage for c in costs) / n,
            sum(c.compression for c in costs) / n,
            sum(c.query for c in costs) / n,
        )
    return out


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------
def refining_commands(query: str) -> List[str]:
    """The refining-mode session for a query: grow it term by term."""
    parsed = parse_query(query)
    terms = parsed.disjuncts[0]
    commands: List[str] = []
    parts: List[str] = []
    for term in terms:
        parts.append(("not " if term.negated else "and " if parts else "") + term.search.text)
        commands.append(" ".join(parts))
    return commands


def _bench_config(**overrides) -> LogGrepConfig:
    return LogGrepConfig(block_bytes=BENCH_BLOCK_BYTES, **overrides)


def figure9(
    specs: Sequence[LogSpec],
    lines_per_spec: int,
    ablations: Sequence[str] = ABLATIONS,
) -> Dict[str, float]:
    """Normalized query latency of each ablated version (full = 1.0).

    Structural ablations run the dataset's query in direct mode; the cache
    ablation replays the refining-mode session with and without the Query
    Cache, as §6.3 does.
    """
    results: Dict[str, List[float]] = {name: [] for name in ablations}
    for spec in specs:
        lines = spec.generate(lines_per_spec)
        full_direct = _query_latency(lines, spec.query, _bench_config())
        for name in ablations:
            if name == "w/o cache":
                session = refining_commands(spec.query)
                with_cache = _session_latency(lines, session, _bench_config())
                without = _session_latency(
                    lines, session, ablated(name, _bench_config())
                )
                if with_cache > 0:
                    results[name].append(without / with_cache)
            else:
                lat = _query_latency(lines, spec.query, ablated(name, _bench_config()))
                if full_direct > 0:
                    results[name].append(lat / full_direct)
    return {name: geomean(vals) for name, vals in results.items()}


def _query_latency(lines: Sequence[str], query: str, config: LogGrepConfig) -> float:
    system = LogGrepSystem(config)
    system.ingest(list(lines))
    _, elapsed = system.timed_query(query)
    return elapsed


def _session_latency(
    lines: Sequence[str], commands: Sequence[str], config: LogGrepConfig
) -> float:
    system = LogGrepSystem(config)
    system.ingest(list(lines))
    # Refining mode is interactive: boxes stay pinned for the session, so
    # the with/without-cache difference isolates the Query Cache itself.
    with system.loggrep.open_session() as session:
        total = 0.0
        for command in commands:
            result = session.grep(command)
            total += result.elapsed
    return total


# ----------------------------------------------------------------------
# Padding effect (§6.3)
# ----------------------------------------------------------------------
def padding_effect(
    specs: Sequence[LogSpec], lines_per_spec: int
) -> Dict[str, float]:
    """Per-dataset compression-ratio factor of padding (padded/unpadded)."""
    out: Dict[str, float] = {}
    for spec in specs:
        lines = spec.generate(lines_per_spec)
        padded = LogGrepSystem(_bench_config())
        padded.ingest(list(lines))
        unpadded = LogGrepSystem(ablated("w/o fixed", _bench_config()))
        unpadded.ingest(list(lines))
        if unpadded.compression_ratio() > 0:
            out[spec.name] = padded.compression_ratio() / unpadded.compression_ratio()
    return out
