"""Block parser: raw lines → groups of variable vectors.

After templates are mined on a sample (:mod:`repro.staticparse.miner`), the
parser assigns *every* line of the block to a template and collects, per
template, the values of each variable slot into a **variable vector** — the
fine-grained partition the whole LogGrep design is built on (paper §2.2).
All variable vectors of the same static pattern form a **group**; a group
also remembers each entry's global line id so reconstruction can restore
the total order across groups (the paper merges on timestamps; line ids
give the identical order).

Lines that match no mined template are mined in a second pass, so parsing
always covers 100% of the block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.sampling import DEFAULT_SAMPLE_RATE, sample
from ..common.tokenizer import tokenize
from ..obs.trace import get_tracer
from .cache import TemplateCache, TemplateKey, template_key
from .miner import DEFAULT_SIMILARITY, TemplateMiner
from .template import Template

#: Default fraction of unmatched lines above which a warm-started parse
#: distrusts the cache and re-mines the whole block (drift guard).
DEFAULT_DRIFT_THRESHOLD = 0.3


@dataclass
class Group:
    """All entries of one static pattern within a block.

    ``variable_vectors[k][r]`` is the value of variable slot ``k`` in the
    group's ``r``-th entry; ``line_ids[r]`` is that entry's index within the
    block (0-based), which doubles as the logical timestamp.
    """

    template: Template
    line_ids: List[int] = field(default_factory=list)
    variable_vectors: List[List[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.variable_vectors:
            self.variable_vectors = [[] for _ in range(self.template.num_variables)]

    @property
    def num_entries(self) -> int:
        return len(self.line_ids)

    def append(self, line_id: int, values: Sequence[str]) -> None:
        self.line_ids.append(line_id)
        for vector, value in zip(self.variable_vectors, values):
            vector.append(value)

    def render_entry(self, row: int) -> str:
        """Rebuild the original text of the group's *row*-th entry."""
        values = [vector[row] for vector in self.variable_vectors]
        return self.template.render(values)


@dataclass
class ParsedBlock:
    """The result of parsing one log block."""

    templates: List[Template]
    groups: List[Group]
    num_lines: int

    def group_for(self, template_id: int) -> Group:
        for group in self.groups:
            if group.template.template_id == template_id:
                return group
        raise KeyError(f"no group for template {template_id}")

    def all_variable_vectors(self) -> List[List[str]]:
        out: List[List[str]] = []
        for group in self.groups:
            out.extend(group.variable_vectors)
        return out


@dataclass
class ParseOutcome:
    """What the template warm-start contributed to one block's parse."""

    total_lines: int
    cache_hits: int  # lines assigned to a cached template
    cache_misses: int  # lines that fell through to fallback mining
    remined: bool  # drift guard tripped: the whole block was re-mined
    new_templates: int  # templates this block added to the cache

    @property
    def hit_rate(self) -> float:
        if not self.total_lines:
            return 0.0
        return self.cache_hits / self.total_lines


class BlockParser:
    """Two-pass parser: sample-mined templates, then full assignment.

    ``miner`` selects the template-mining family: ``"drain"`` (the
    default, Drain-style similarity clustering — LogReducer's behaviour)
    or ``"slct"`` (SLCT-style frequent-token mining).  Parser choice only
    shifts compression/query performance; reconstruction stays exact.
    """

    def __init__(
        self,
        sample_rate: float = DEFAULT_SAMPLE_RATE,
        similarity: float = DEFAULT_SIMILARITY,
        seed: int = 0,
        miner: str = "drain",
    ):
        if miner not in ("drain", "slct"):
            raise ValueError(f"unknown miner {miner!r}; pick 'drain' or 'slct'")
        self.sample_rate = sample_rate
        self.similarity = similarity
        self.seed = seed
        self.miner = miner

    def _make_miner(self):
        if self.miner == "slct":
            from .slct import SlctMiner

            return SlctMiner()
        return TemplateMiner(self.similarity)

    def parse(self, lines: Sequence[str]) -> ParsedBlock:
        """Parse every line of a block into groups."""
        token_lines = [tokenize(line) for line in lines]

        miner = self._make_miner()
        for tokens in sample(token_lines, self.sample_rate, self.seed):
            miner.observe(tokens)
        templates = miner.templates()

        by_count: Dict[int, List[Template]] = {}
        for template in templates:
            by_count.setdefault(template.num_tokens, []).append(template)

        assignments: List[int] = [-1] * len(token_lines)
        unmatched: List[int] = []
        for line_id, tokens in enumerate(token_lines):
            template = _best_match(by_count.get(len(tokens), ()), tokens)
            if template is None:
                unmatched.append(line_id)
            else:
                assignments[line_id] = template.template_id

        if unmatched:
            # The sample missed these shapes entirely: mine them separately.
            extra_miner = self._make_miner()
            for line_id in unmatched:
                extra_miner.observe(token_lines[line_id])
            extras = extra_miner.templates(first_id=len(templates))
            for template in extras:
                by_count.setdefault(template.num_tokens, []).append(template)
            templates.extend(extras)
            still: List[int] = []
            for line_id in unmatched:
                tokens = token_lines[line_id]
                template = _best_match(by_count.get(len(tokens), ()), tokens)
                if template is None:
                    still.append(line_id)
                else:
                    assignments[line_id] = template.template_id
            for line_id in still:
                # Last resort: an all-variable template of the right width.
                tokens = token_lines[line_id]
                catch_all = Template(len(templates), [None] * len(tokens))
                templates.append(catch_all)
                by_count.setdefault(catch_all.num_tokens, []).append(catch_all)
                assignments[line_id] = catch_all.template_id

        groups: Dict[int, Group] = {}
        for line_id, tokens in enumerate(token_lines):
            template = templates[assignments[line_id]]
            group = groups.get(template.template_id)
            if group is None:
                group = Group(template)
                groups[template.template_id] = group
            group.append(line_id, template.extract(tokens))

        ordered = [groups[tid] for tid in sorted(groups)]
        used_templates = [group.template for group in ordered]
        return ParsedBlock(used_templates, ordered, len(lines))

    def parse_cached(
        self,
        lines: Sequence[str],
        cache: TemplateCache,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> Tuple[ParsedBlock, ParseOutcome]:
        """Warm-started parse: assign against *cache*, mine only the rest.

        Lines are first matched against the cached templates (mined from
        earlier blocks of the stream); only lines no cached template
        matches are mined, exactly like :meth:`parse`'s second pass.  A
        drift guard distrusts the cache when the unmatched fraction
        exceeds *drift_threshold* and re-mines the whole block from
        scratch (log format changed, or the cache is cold).  Newly mined
        templates are merged back into the cache either way.

        Determinism: the result depends only on *lines* and the cache
        contents — callers that mutate the cache in block order (the
        compression scheduler's ordered parse stage) get byte-identical
        archives for any worker count.
        """
        tracer = get_tracer()
        token_lines = [tokenize(line) for line in lines]
        snapshot = cache.snapshot()
        templates = [Template(i, list(key)) for i, key in enumerate(snapshot)]
        by_count: Dict[int, List[Template]] = {}
        for template in templates:
            by_count.setdefault(template.num_tokens, []).append(template)

        assignments: List[int] = [-1] * len(token_lines)
        unmatched: List[int] = []
        with tracer.span("parse_cached", cached_templates=len(templates)) as wspan:
            for line_id, tokens in enumerate(token_lines):
                template = _best_match(by_count.get(len(tokens), ()), tokens)
                if template is None:
                    unmatched.append(line_id)
                else:
                    assignments[line_id] = template.template_id
            hits = len(token_lines) - len(unmatched)
            wspan.set("hits", hits).set("misses", len(unmatched))

        if token_lines and len(unmatched) / len(token_lines) > drift_threshold:
            # Drift guard: the cache no longer describes this stream (or
            # is cold) — fall back to a full sample-mined parse.
            with tracer.span("mine_fallback", lines=len(token_lines), remine=True):
                parsed = self.parse(lines)
            added = cache.merge(template_key(t) for t in parsed.templates)
            cache.record(0, len(token_lines), True)
            return parsed, ParseOutcome(
                len(token_lines), 0, len(token_lines), True, added
            )

        new_keys: List[TemplateKey] = []
        if unmatched:
            # The cache missed these shapes: mine them separately (the
            # same second pass a cold parse runs for sample misses).
            with tracer.span("mine_fallback", lines=len(unmatched), remine=False):
                extra_miner = self._make_miner()
                for line_id in unmatched:
                    extra_miner.observe(token_lines[line_id])
                extras = extra_miner.templates(first_id=len(templates))
                for template in extras:
                    by_count.setdefault(template.num_tokens, []).append(template)
                templates.extend(extras)
                new_keys.extend(template_key(t) for t in extras)
                still: List[int] = []
                for line_id in unmatched:
                    tokens = token_lines[line_id]
                    template = _best_match(by_count.get(len(tokens), ()), tokens)
                    if template is None:
                        still.append(line_id)
                    else:
                        assignments[line_id] = template.template_id
                for line_id in still:
                    # Last resort: an all-variable template of the right
                    # width (never cached — see TemplateCache.merge).
                    tokens = token_lines[line_id]
                    catch_all = Template(len(templates), [None] * len(tokens))
                    templates.append(catch_all)
                    by_count.setdefault(catch_all.num_tokens, []).append(catch_all)
                    assignments[line_id] = catch_all.template_id

        # Renumber the used templates into block-local ids by order of
        # first appearance (cache ids are stream-global and unstable).
        local_ids: Dict[int, int] = {}
        local_templates: List[Template] = []
        groups: List[Group] = []
        for line_id, tokens in enumerate(token_lines):
            provisional = assignments[line_id]
            local_id = local_ids.get(provisional)
            if local_id is None:
                local_id = len(local_templates)
                local_ids[provisional] = local_id
                local = Template(local_id, list(templates[provisional].tokens))
                local_templates.append(local)
                groups.append(Group(local))
            groups[local_id].append(
                line_id, local_templates[local_id].extract(tokens)
            )
        added = cache.merge(new_keys)
        cache.record(hits, len(unmatched), False)
        parsed = ParsedBlock(local_templates, groups, len(lines))
        return parsed, ParseOutcome(
            len(token_lines), hits, len(unmatched), False, added
        )


def _best_match(candidates: Sequence[Template], tokens: Sequence[str]):
    """The matching template with the most constant tokens, if any."""
    best = None
    best_score = -1
    for template in candidates:
        score = template.match_score(tokens)
        if score > best_score:
            best, best_score = template, score
    return best if best_score >= 0 else None
