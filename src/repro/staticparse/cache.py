"""Cross-block template warm-start cache.

Consecutive blocks of one log stream come from the same set of logging
statements, so their static patterns are overwhelmingly shared (§3.1).
Mining them afresh for every block — the behaviour of the plain
:class:`~repro.staticparse.parser.BlockParser` — therefore repeats the
most expensive part of parsing.  CLP and LogZip both amortize template
discovery across the stream; :class:`TemplateCache` brings the same
amortization here: the parser first assigns lines against the cached
templates and only falls back to sample-mining for lines no cached
template matches (see ``BlockParser.parse_cached``).

Determinism contract: the cache is insertion-ordered and is only mutated
from the compression scheduler's ordered parse stage, so the snapshot a
block parses against is a pure function of the blocks submitted before
it — never of worker count or scheduling.  All methods are thread-safe
regardless, because readers (metrics scrapes, diagnostics) may run on
other threads.

Cache behaviour is exported through the process metrics registry:
``loggrep_template_cache_hits_total`` / ``misses_total`` count lines
assigned to a cached template vs. lines that fell through to fallback
mining; ``loggrep_template_cache_remines_total`` counts blocks fully
re-mined by the drift guard; ``loggrep_template_cache_templates`` gauges
the current cache size.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.metrics import get_registry
from .template import Template

#: Canonical form of a template: its token tuple, ``None`` marking a
#: variable slot.  Hashable, so the cache dedupes on it.
TemplateKey = Tuple[Optional[str], ...]

_HITS = get_registry().counter(
    "loggrep_template_cache_hits_total",
    "Lines assigned to a warm cached template during parsing",
)
_MISSES = get_registry().counter(
    "loggrep_template_cache_misses_total",
    "Lines no cached template matched (fallback-mined)",
)
_REMINES = get_registry().counter(
    "loggrep_template_cache_remines_total",
    "Blocks fully re-mined because the drift guard tripped",
)
_SIZE = get_registry().gauge(
    "loggrep_template_cache_templates", "Templates currently cached"
)


def template_key(template: Template) -> TemplateKey:
    """The canonical cache key of *template*."""
    return tuple(template.tokens)


def template_signature(key: TemplateKey) -> str:
    """Content hash of a template's token tuple (16 hex chars).

    The hash covers only the tokens — never the per-archive
    ``template_id`` — so the same static pattern mined by two different
    archives hashes to the same id.  This is what lets the cold tier's
    :class:`~repro.blockstore.shared.SharedTemplateStore` deduplicate
    templates globally: the signature is the content-addressed key.
    Length-prefixed encoding keeps the hash unambiguous (no token
    concatenation collisions).
    """
    digest = hashlib.sha1()
    for token in key:
        if token is None:
            digest.update(b"\x00")
        else:
            data = token.encode("utf-8")
            digest.update(b"\x01" + len(data).to_bytes(4, "little") + data)
    return digest.hexdigest()[:16]


class TemplateCache:
    """Insertion-ordered, deduplicated set of known static patterns."""

    def __init__(self) -> None:
        # dict preserves insertion order; values are unused.
        self._keys: Dict[TemplateKey, None] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def snapshot(self) -> List[TemplateKey]:
        """The cached templates, oldest first (deterministic order)."""
        with self._lock:
            return list(self._keys)

    def merge(self, keys: Iterable[TemplateKey]) -> int:
        """Add new templates; returns how many were actually new.

        All-variable (catch-all) templates are rejected: cached, they
        would absorb every same-width line of later blocks and starve
        the miner of real patterns.
        """
        added = 0
        with self._lock:
            for key in keys:
                if key in self._keys:
                    continue
                if all(token is None for token in key):
                    continue
                self._keys[key] = None
                added += 1
            _SIZE.set(len(self._keys))
        return added

    def clear(self) -> None:
        with self._lock:
            self._keys.clear()
            _SIZE.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def __contains__(self, key: TemplateKey) -> bool:
        with self._lock:
            return key in self._keys

    # ------------------------------------------------------------------
    @staticmethod
    def record(hits: int, misses: int, remined: bool) -> None:
        """Publish one block's warm-start outcome to the registry."""
        if hits:
            _HITS.inc(hits)
        if misses:
            _MISSES.inc(misses)
        if remined:
            _REMINES.inc()
