"""Static-pattern templates.

A template is the compile-time skeleton of a log statement: the constant
tokens the developer wrote plus slots for the variables (``printf("write to
file:%s", path)`` → ``["write", "to", "file:<*>"]``).  The paper calls these
*static patterns* (§1, §2.1).

Tokens are space-delimited (see :mod:`repro.common.tokenizer`); a token is
either a constant string or a variable slot.  Rendering a template with the
slot values reproduces the original line byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..common.tokenizer import join_tokens

#: Marker used in serialized/display forms for a variable slot.
VAR_MARK = "<*>"


@dataclass
class Template:
    """A static pattern: constant tokens plus variable slots.

    ``tokens[i] is None`` marks a variable slot; otherwise it is the constant
    token text.  ``var_positions`` caches the slot token indices in order, so
    ``values[k]`` fills ``tokens[var_positions[k]]``.
    """

    template_id: int
    tokens: List[Optional[str]]
    var_positions: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.var_positions:
            self.var_positions = [
                i for i, tok in enumerate(self.tokens) if tok is None
            ]

    @property
    def num_tokens(self) -> int:
        return len(self.tokens)

    @property
    def num_variables(self) -> int:
        return len(self.var_positions)

    @property
    def constant_tokens(self) -> List[str]:
        return [tok for tok in self.tokens if tok is not None]

    def display(self) -> str:
        """Human-readable form with ``<*>`` at variable slots."""
        return join_tokens(
            [tok if tok is not None else VAR_MARK for tok in self.tokens]
        )

    def matches(self, tokens: Sequence[str]) -> bool:
        """True when *tokens* fits this template (constants agree)."""
        if len(tokens) != len(self.tokens):
            return False
        for mine, theirs in zip(self.tokens, tokens):
            if mine is not None and mine != theirs:
                return False
        return True

    def extract(self, tokens: Sequence[str]) -> List[str]:
        """Return the variable values of a matching token list."""
        return [tokens[i] for i in self.var_positions]

    def render(self, values: Sequence[str]) -> str:
        """Rebuild the original line from variable *values*."""
        if len(values) != len(self.var_positions):
            raise ValueError(
                f"template {self.template_id} expects {len(self.var_positions)} "
                f"values, got {len(values)}"
            )
        out = list(self.tokens)
        for value, pos in zip(values, self.var_positions):
            out[pos] = value
        return join_tokens(out)  # type: ignore[arg-type]

    def match_score(self, tokens: Sequence[str]) -> int:
        """Number of constant tokens that agree (-1 when not a match).

        Used to pick the most specific template when several match a line.
        """
        if not self.matches(tokens):
            return -1
        return sum(1 for tok in self.tokens if tok is not None)
