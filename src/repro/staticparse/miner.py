"""Sampling template miner.

LogGrep identifies static patterns on a 5% sample of each block's entries
using the parser adopted from LogReducer (paper §3).  We implement the same
observable behaviour with a Drain-style fixed-depth clustering: lines are
bucketed by token count and greedily merged into prototypes when their
token-sequence similarity passes a threshold; positions that disagree
become variable slots.

Mining accuracy affects only how much content lands in variables (and hence
compression/query performance) — never correctness, because variable slots
store the exact token text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..common.sampling import DEFAULT_SAMPLE_RATE, sample
from ..common.tokenizer import tokenize
from .template import Template

#: Drain's default sequence-similarity threshold.
DEFAULT_SIMILARITY = 0.6


_DIGIT_MASK = str.maketrans("0123456789", "##########")


def _has_digit(token: str) -> bool:
    return any(ch.isdigit() for ch in token)


def _masked(token: str) -> str:
    """Token with every digit replaced — Drain's preprocessing prior:
    digits are almost always run-time variables."""
    return token.translate(_DIGIT_MASK)


@dataclass
class _Prototype:
    """A mutable template under construction."""

    tokens: List[Optional[str]]

    def similarity(self, tokens: Sequence[str]) -> float:
        """Fraction of positions agreeing with *tokens*.

        An already-variable position counts half (it can absorb anything
        but agreeing on actual constants should win ties).  Disagreeing
        tokens are compared digit-masked: same shape (``T134`` vs ``T176``)
        counts as a full match, and any remaining digit-bearing mismatch
        still counts half — the same prior the Drain parser encodes with
        its digit-masking preprocessing.
        """
        if not self.tokens:
            return 1.0 if not tokens else 0.0
        score = 0.0
        for mine, theirs in zip(self.tokens, tokens):
            if mine is None:
                score += 0.5
            elif mine == theirs:
                score += 1.0
            elif _has_digit(theirs) or _has_digit(mine):
                if _masked(mine) == _masked(theirs):
                    score += 1.0
                else:
                    score += 0.5
        return score / len(self.tokens)

    def absorb(self, tokens: Sequence[str]) -> None:
        """Merge *tokens* in: disagreeing constants become variables."""
        for i, (mine, theirs) in enumerate(zip(self.tokens, tokens)):
            if mine is not None and mine != theirs:
                self.tokens[i] = None


class TemplateMiner:
    """Greedy prototype clustering bucketed by token count."""

    def __init__(self, similarity: float = DEFAULT_SIMILARITY):
        if not 0.0 < similarity <= 1.0:
            raise ValueError("similarity threshold must be in (0, 1]")
        self.similarity = similarity
        self._buckets: Dict[int, List[_Prototype]] = {}

    def observe(self, tokens: Sequence[str]) -> None:
        bucket = self._buckets.setdefault(len(tokens), [])
        best: Optional[_Prototype] = None
        best_score = 0.0
        for proto in bucket:
            score = proto.similarity(tokens)
            if score > best_score:
                best, best_score = proto, score
        if best is not None and best_score >= self.similarity:
            best.absorb(tokens)
        else:
            bucket.append(_Prototype(list(tokens)))

    def templates(self, first_id: int = 0) -> List[Template]:
        """Freeze the prototypes into immutable templates."""
        out: List[Template] = []
        next_id = first_id
        for count in sorted(self._buckets):
            for proto in self._buckets[count]:
                out.append(Template(next_id, list(proto.tokens)))
                next_id += 1
        return out


def mine_templates(
    lines: Sequence[str],
    sample_rate: float = DEFAULT_SAMPLE_RATE,
    seed: int = 0,
    similarity: float = DEFAULT_SIMILARITY,
) -> List[Template]:
    """Mine static patterns from a sample of *lines* (the paper's Parser)."""
    miner = TemplateMiner(similarity)
    for line in sample(lines, sample_rate, seed):
        miner.observe(tokenize(line))
    return miner.templates()
