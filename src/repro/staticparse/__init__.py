"""Static-pattern substrate: templates, the sampling miner, the block
parser that produces groups of variable vectors, and the cross-block
template warm-start cache."""

from .cache import TemplateCache, TemplateKey, template_key
from .miner import TemplateMiner, mine_templates
from .parser import BlockParser, Group, ParsedBlock, ParseOutcome
from .template import VAR_MARK, Template

__all__ = [
    "Template",
    "VAR_MARK",
    "TemplateMiner",
    "mine_templates",
    "BlockParser",
    "Group",
    "ParsedBlock",
    "ParseOutcome",
    "TemplateCache",
    "TemplateKey",
    "template_key",
]
