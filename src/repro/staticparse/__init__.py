"""Static-pattern substrate: templates, the sampling miner and the block
parser that produces groups of variable vectors."""

from .miner import TemplateMiner, mine_templates
from .parser import BlockParser, Group, ParsedBlock
from .template import VAR_MARK, Template

__all__ = [
    "Template",
    "VAR_MARK",
    "TemplateMiner",
    "mine_templates",
    "BlockParser",
    "Group",
    "ParsedBlock",
]
