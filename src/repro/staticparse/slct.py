"""SLCT-style frequent-token template miner (alternative Parser).

The LogGrep paper's Parser comes from LogReducer; the log-parsing
literature it cites (§7) also contains frequent-pattern miners like SLCT
and LogCluster (Vaarandi): a token position belongs to the template when
its (position, token) pair is *frequent*, otherwise it is a variable.
This module implements that family as a drop-in alternative to the
Drain-style miner — `BlockParser(miner="slct")` selects it — which lets
the repo measure how parser choice shifts compression and query behaviour
(parsing accuracy only ever affects performance, never correctness).

Algorithm (two passes over the sample):

1. count (token-count, position, token) occurrences;
2. a line's template keeps tokens whose count is at least
   ``support_fraction`` of its token-count bucket's line total; the rest
   become variable slots.  Lines then dedupe into templates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .template import Template

#: A (position, token) pair is "static" when it appears in at least this
#: fraction of the bucket's lines (SLCT's support threshold).
DEFAULT_SUPPORT = 0.05


class SlctMiner:
    """Frequent-token template mining (SLCT/LogCluster family)."""

    def __init__(self, support_fraction: float = DEFAULT_SUPPORT):
        if not 0.0 < support_fraction <= 1.0:
            raise ValueError("support fraction must be in (0, 1]")
        self.support_fraction = support_fraction
        self._lines_per_bucket: Dict[int, int] = {}
        self._counts: Dict[Tuple[int, int, str], int] = {}
        self._observed: List[Sequence[str]] = []

    def observe(self, tokens: Sequence[str]) -> None:
        width = len(tokens)
        self._lines_per_bucket[width] = self._lines_per_bucket.get(width, 0) + 1
        for position, token in enumerate(tokens):
            key = (width, position, token)
            self._counts[key] = self._counts.get(key, 0) + 1
        self._observed.append(tokens)

    def templates(self, first_id: int = 0) -> List[Template]:
        seen: Dict[Tuple[Optional[str], ...], None] = {}
        for tokens in self._observed:
            width = len(tokens)
            threshold = max(2.0, self.support_fraction * self._lines_per_bucket[width])
            skeleton = tuple(
                token
                if self._counts[(width, position, token)] >= threshold
                else None
                for position, token in enumerate(tokens)
            )
            seen.setdefault(skeleton, None)
        out: List[Template] = []
        for index, skeleton in enumerate(seen):
            out.append(Template(first_id + index, list(skeleton)))
        return out
