"""LogGrep reproduction (EuroSys '23).

Fast and cheap cloud log storage by exploiting both static and runtime
patterns: logs are parsed into variable vectors via static patterns,
decomposed into fine-grained Capsules via automatically extracted runtime
patterns, stamped with character-class/length summaries, and queried with
grep-like commands that avoid decompressing irrelevant Capsules.

Public entry points::

    from repro import LogGrep, LogGrepConfig

    lg = LogGrep()
    lg.compress(lines)
    result = lg.grep("ERROR AND dst:11.8.* NOT state:503")
"""

from .core.catalog import CatalogEntry, LogCatalog, UnknownLogError
from .core.config import ABLATIONS, LogGrepConfig, ablated, sp_config
from .core.lifecycle import archive_offline, offline_config, transition_analysis
from .core.loggrep import CompressionReport, GrepResult, LogGrep, LogGrepSession
from .core.streaming import StreamingCompressor

__version__ = "1.0.0"

__all__ = [
    "LogGrep",
    "LogGrepSession",
    "LogGrepConfig",
    "GrepResult",
    "CompressionReport",
    "StreamingCompressor",
    "LogCatalog",
    "CatalogEntry",
    "UnknownLogError",
    "archive_offline",
    "offline_config",
    "transition_analysis",
    "ablated",
    "sp_config",
    "ABLATIONS",
    "__version__",
]
