"""Cross-archive shared template/dictionary store (the cold tier).

The offline rewrite (``core/lifecycle.py``) recompresses every archive in
isolation, so identical static patterns and identical nominal
dictionaries — the overwhelmingly repetitive part of production logs
(DeLog/Logzip's global pattern signatures, PAPERS.md) — are re-stored
once *per archive*.  This module stores them once *globally*:

* :class:`SharedTemplateStore` is a content-addressed blob store (its
  own :class:`~repro.blockstore.store.ArchiveStore`, usually a separate
  directory) holding two kinds of entries:

  - ``tpl-<cid>`` — one template's token list, keyed by
    :func:`~repro.staticparse.cache.template_signature` (the hash never
    covers the per-archive ``template_id``);
  - ``cap-<cid>`` — one nominal dictionary capsule's compressed payload,
    keyed by the SHA-1 of the payload bytes.

  Writes are idempotent: re-adding existing content is a dedup hit, not
  a second copy.

* :class:`TemplateResolver` is the read side: a box serialized with the
  shared flag (``capsule/box.py`` flag bit 0x01) references content ids
  instead of inline bytes, and the resolver maps them back — shared
  store first, then the archive's own **fallback bank** (the
  ``templates.lgtb`` aux blob, written by
  :func:`write_bank` for portability), with an in-memory cache shared
  across every box of the archive.

The fallback bank makes a cold archive self-contained: export it and the
archive ships with every template/dictionary it references, readable
without the shared store.  It is written only on explicit export so the
cross-archive dedup accounting stays honest.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Optional, Tuple

from ..common.binio import BinaryReader, BinaryWriter
from ..common.errors import FormatError
from ..obs.metrics import get_registry
from ..staticparse.cache import TemplateKey, template_signature
from ..staticparse.template import Template
from .store import ArchiveStore, MemoryStore

#: Auxiliary-blob name of the per-archive fallback bank.
BANK_AUX_NAME = "templates.lgtb"
BANK_MAGIC = b"LGTB"
BANK_VERSION = 1

_KIND_TEMPLATE = 0
_KIND_PAYLOAD = 1

_DEDUP_HITS = get_registry().counter(
    "loggrep_shared_dedup_hits_total",
    "Shared-store writes that found their content already stored, by kind",
)
_SHARED_ENTRIES = get_registry().gauge(
    "loggrep_shared_store_entries",
    "Entries currently in the shared template store, by kind",
)


def _tokens_blob(tokens) -> bytes:
    writer = BinaryWriter()
    writer.write_varint(len(tokens))
    for token in tokens:
        if token is None:
            writer.write_u8(1)
        else:
            writer.write_u8(0)
            writer.write_str(token)
    return writer.getvalue()


def _tokens_from_blob(data: bytes) -> TemplateKey:
    reader = BinaryReader(data)
    tokens = []
    for _ in range(reader.read_varint()):
        if reader.read_u8() == 1:
            tokens.append(None)
        else:
            tokens.append(reader.read_str())
    return tuple(tokens)


def payload_signature(payload: bytes) -> str:
    """Content id of one capsule payload (16 hex chars of SHA-1)."""
    return hashlib.sha1(payload).hexdigest()[:16]


class SharedTemplateStore:
    """Content-addressed cross-archive template/dictionary storage."""

    def __init__(self, store: Optional[ArchiveStore] = None):
        self.store = store if store is not None else MemoryStore()
        self._lock = threading.Lock()

    # -- write side ----------------------------------------------------
    def add_template(self, template: Template) -> str:
        """Store one template's tokens; returns its content id."""
        cid = template_signature(tuple(template.tokens))
        name = f"tpl-{cid}"
        with self._lock:
            if self.store.exists(name):
                _DEDUP_HITS.inc(kind="template")
            else:
                self.store.put(name, _tokens_blob(template.tokens))
                self._publish_entries()
        return cid

    def add_payload(self, payload: bytes) -> str:
        """Store one capsule payload; returns its content id."""
        cid = payload_signature(payload)
        name = f"cap-{cid}"
        with self._lock:
            if self.store.exists(name):
                _DEDUP_HITS.inc(kind="payload")
            else:
                self.store.put(name, payload)
                self._publish_entries()
        return cid

    # -- read side -----------------------------------------------------
    def template_tokens(self, cid: str) -> Optional[TemplateKey]:
        name = f"tpl-{cid}"
        if not self.store.exists(name):
            return None
        return _tokens_from_blob(self.store.get(name))

    def payload(self, cid: str) -> Optional[bytes]:
        name = f"cap-{cid}"
        if not self.store.exists(name):
            return None
        return self.store.get(name)

    # -- accounting ----------------------------------------------------
    def total_bytes(self) -> int:
        """Stored bytes of the shared store — the cross-archive cost that
        honest tier accounting amortizes over every referencing archive."""
        return self.store.total_bytes()

    def counts(self) -> Tuple[int, int]:
        """(templates, payloads) currently stored."""
        names = self.store.names()
        templates = sum(1 for n in names if n.startswith("tpl-"))
        return templates, len(names) - templates

    def _publish_entries(self) -> None:
        templates, payloads = self.counts()
        _SHARED_ENTRIES.set(templates, kind="template")
        _SHARED_ENTRIES.set(payloads, kind="payload")


class TemplateResolver:
    """Maps content ids in shared-format boxes back to bytes.

    Resolution order: in-memory cache → shared store → the archive's own
    fallback bank (``templates.lgtb``).  An id none of them know is a
    :class:`FormatError` — the archive references content that was
    neither shipped with it nor provided via ``--templates``.
    """

    def __init__(
        self,
        shared: Optional[SharedTemplateStore] = None,
        archive: Optional[object] = None,
    ):
        self.shared = shared
        self.archive = archive
        self._templates: Dict[str, TemplateKey] = {}
        self._payloads: Dict[str, bytes] = {}
        self._bank_loaded = False
        self._lock = threading.Lock()

    def resolve_template(self, cid: str) -> TemplateKey:
        with self._lock:
            tokens = self._templates.get(cid)
        if tokens is not None:
            return tokens
        if self.shared is not None:
            tokens = self.shared.template_tokens(cid)
        if tokens is None:
            tokens = self._from_bank(self._load_bank()[0], cid)
        if tokens is None:
            raise FormatError(
                f"unresolvable shared template {cid!r}: not in the shared "
                "store or the archive's fallback bank (pass --templates, or "
                "export the archive self-contained)"
            )
        with self._lock:
            self._templates[cid] = tokens
        return tokens

    def resolve_payload(self, cid: str) -> bytes:
        with self._lock:
            payload = self._payloads.get(cid)
        if payload is not None:
            return payload
        if self.shared is not None:
            payload = self.shared.payload(cid)
        if payload is None:
            payload = self._from_bank(self._load_bank()[1], cid)
        if payload is None:
            raise FormatError(
                f"unresolvable shared capsule payload {cid!r}: not in the "
                "shared store or the archive's fallback bank"
            )
        with self._lock:
            self._payloads[cid] = payload
        return payload

    @staticmethod
    def _from_bank(bank: Dict[str, object], cid: str):
        return bank.get(cid)

    def _load_bank(self) -> Tuple[Dict[str, TemplateKey], Dict[str, bytes]]:
        with self._lock:
            if self._bank_loaded:
                return self._bank_templates, self._bank_payloads
            templates: Dict[str, TemplateKey] = {}
            payloads: Dict[str, bytes] = {}
            if self.archive is not None:
                loaded = read_bank(self.archive)
                if loaded is not None:
                    templates, payloads = loaded
            self._bank_templates = templates
            self._bank_payloads = payloads
            self._bank_loaded = True
            return templates, payloads


def as_resolver(
    templates: Optional[object], archive: Optional[object] = None
) -> TemplateResolver:
    """Normalize what callers pass as ``templates`` into a resolver.

    ``None`` still yields a resolver: a self-contained archive (bank
    exported) must be readable with no shared store at hand.
    """
    if isinstance(templates, TemplateResolver):
        return templates
    if templates is None or isinstance(templates, SharedTemplateStore):
        return TemplateResolver(templates, archive)
    raise TypeError(
        f"templates must be a TemplateResolver or SharedTemplateStore, "
        f"got {type(templates).__name__}"
    )


# ----------------------------------------------------------------------
# the per-archive fallback bank (portability)
# ----------------------------------------------------------------------
def write_bank(
    archive: object,
    templates: Dict[str, TemplateKey],
    payloads: Dict[str, bytes],
) -> int:
    """Write the archive's fallback bank aux blob; returns its size.

    After this, every shared reference the archive makes resolves from
    the archive itself — it can be copied anywhere without the shared
    store.  Bank bytes are an aux blob, so they do not count toward the
    archive's stored bytes (the dedup accounting stays honest); exports
    are the explicit opt-in to pay them.
    """
    writer = BinaryWriter()
    writer.write_varint(len(templates) + len(payloads))
    for cid in sorted(templates):
        writer.write_u8(_KIND_TEMPLATE)
        writer.write_str(cid)
        writer.write_bytes(_tokens_blob(templates[cid]))
    for cid in sorted(payloads):
        writer.write_u8(_KIND_PAYLOAD)
        writer.write_str(cid)
        writer.write_bytes(payloads[cid])
    data = BANK_MAGIC + bytes([BANK_VERSION]) + writer.getvalue()
    archive.put_aux(BANK_AUX_NAME, data)  # type: ignore[attr-defined]
    return len(data)


def read_bank(
    archive: object,
) -> Optional[Tuple[Dict[str, TemplateKey], Dict[str, bytes]]]:
    """Load the archive's fallback bank, or None when absent/corrupt."""
    try:
        if not archive.aux_exists(BANK_AUX_NAME):  # type: ignore[attr-defined]
            return None
        data = archive.get_aux(BANK_AUX_NAME)  # type: ignore[attr-defined]
    except (AttributeError, OSError):
        return None
    if data[:4] != BANK_MAGIC or len(data) < 5 or data[4] != BANK_VERSION:
        return None
    try:
        reader = BinaryReader(data[5:])
        templates: Dict[str, TemplateKey] = {}
        payloads: Dict[str, bytes] = {}
        for _ in range(reader.read_varint()):
            kind = reader.read_u8()
            cid = reader.read_str()
            blob = reader.read_bytes()
            if kind == _KIND_TEMPLATE:
                templates[cid] = _tokens_from_blob(blob)
            elif kind == _KIND_PAYLOAD:
                payloads[cid] = blob
            else:
                return None
        return templates, payloads
    except Exception:
        # Derived data: a corrupt bank only degrades to "resolve from the
        # shared store", never to a wrong result.
        return None
